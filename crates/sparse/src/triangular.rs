//! Forward and back substitution for sparse triangular systems.
//!
//! Mogul obtains the approximate ranking scores by forward substitution on
//! `L' y = q'` (Equation (4)) followed by back substitution on `U x' = y`
//! (Equation (5)); both factors come from the `L D Lᵀ` factorization of `W`
//! and are stored row-wise (CSR), which is exactly the access pattern the two
//! substitutions need.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use crate::kernel::Avx2Kernel;
use crate::kernel::{self, KernelKind, LaneKernel, ScalarKernel};

/// Smallest pivot magnitude accepted before a solve is declared singular.
const PIVOT_TOL: f64 = 1e-300;

/// Reusable scratch for the composite [`ldl_solve_into`] operation.
///
/// Holding the intermediate vector of the two-phase solve in a caller-owned
/// workspace lets hot query loops (for example the concurrent serving layer
/// in `mogul-serve`) run the substitution path with zero heap allocations
/// after the first call: the buffer is resized once and then reused.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    /// Intermediate `y` of `L y = b` before the diagonal scaling.
    intermediate: Vec<f64>,
}

impl SolveWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SolveWorkspace::default()
    }

    /// A workspace pre-sized for systems of dimension `n`.
    pub fn with_capacity(n: usize) -> Self {
        SolveWorkspace {
            intermediate: Vec::with_capacity(n),
        }
    }
}

/// Reset `out` to `n` zeros, reusing its existing capacity.
fn reset(out: &mut Vec<f64>, n: usize) {
    out.clear();
    out.resize(n, 0.0);
}

fn check_square_and_rhs(m: &CsrMatrix, b: &[f64], op: &'static str) -> Result<()> {
    if m.nrows() != m.ncols() {
        return Err(SparseError::NotSquare {
            nrows: m.nrows(),
            ncols: m.ncols(),
        });
    }
    if b.len() != m.nrows() {
        return Err(SparseError::DimensionMismatch {
            op,
            left: (m.nrows(), m.ncols()),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

/// Solve `L x = b` where `L` is lower triangular with a non-zero stored
/// diagonal. Entries above the diagonal are ignored.
pub fn solve_lower_triangular(l: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_lower_triangular_into(l, b, &mut x)?;
    Ok(x)
}

/// [`solve_lower_triangular`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_lower_triangular_into(l: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(l, b, "solve_lower_triangular")?;
    let n = l.nrows();
    reset(x, n);
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let mut sum = b[i];
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                sum -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        x[i] = sum / diag;
    }
    Ok(())
}

/// Solve `L x = b` where `L` is *unit* lower triangular (implicit or explicit
/// diagonal of ones). Entries above the diagonal are ignored.
pub fn solve_unit_lower(l: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_unit_lower_into(l, b, &mut x)?;
    Ok(x)
}

/// [`solve_unit_lower`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_unit_lower_into(l: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(l, b, "solve_unit_lower")?;
    let n = l.nrows();
    reset(x, n);
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let mut sum = b[i];
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                sum -= v * x[j];
            }
        }
        x[i] = sum;
    }
    Ok(())
}

/// Solve `U x = b` where `U` is upper triangular with a non-zero stored
/// diagonal. Entries below the diagonal are ignored.
pub fn solve_upper_triangular(u: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_upper_triangular_into(u, b, &mut x)?;
    Ok(x)
}

/// [`solve_upper_triangular`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_upper_triangular_into(u: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(u, b, "solve_upper_triangular")?;
    let n = u.nrows();
    reset(x, n);
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let mut sum = b[i];
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                sum -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        x[i] = sum / diag;
    }
    Ok(())
}

/// Solve `U x = b` where `U` is *unit* upper triangular (implicit or explicit
/// diagonal of ones). Entries below the diagonal are ignored.
pub fn solve_unit_upper(u: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    let mut x = Vec::new();
    solve_unit_upper_into(u, b, &mut x)?;
    Ok(x)
}

/// [`solve_unit_upper`] writing into a caller-owned buffer (resized and
/// zeroed in place, so repeated solves never reallocate).
pub fn solve_unit_upper_into(u: &CsrMatrix, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
    check_square_and_rhs(u, b, "solve_unit_upper")?;
    let n = u.nrows();
    reset(x, n);
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let mut sum = b[i];
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                sum -= v * x[j];
            }
        }
        x[i] = sum;
    }
    Ok(())
}

/// Solve `L D Lᵀ x = b` given the unit-lower factor `L` (rows, CSR), its
/// transpose `U = Lᵀ` (rows, CSR) and the diagonal `D`.
///
/// This is the composite operation Mogul performs when it computes the
/// approximate scores of *all* nodes (the "Incomplete Cholesky" baseline of
/// Figure 5); the selective per-cluster variant lives in `mogul-core`.
pub fn ldl_solve(l: &CsrMatrix, u: &CsrMatrix, d: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    let mut ws = SolveWorkspace::new();
    let mut x = Vec::new();
    ldl_solve_into(l, u, d, b, &mut ws, &mut x)?;
    Ok(x)
}

/// [`ldl_solve`] with caller-owned scratch and output buffers: the
/// intermediate of the forward phase lives in `ws` and the solution is
/// written to `x`, so a warm loop of solves performs no heap allocation.
pub fn ldl_solve_into(
    l: &CsrMatrix,
    u: &CsrMatrix,
    d: &[f64],
    b: &[f64],
    ws: &mut SolveWorkspace,
    x: &mut Vec<f64>,
) -> Result<()> {
    if d.len() != l.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "ldl_solve diagonal",
            left: (l.nrows(), l.ncols()),
            right: (d.len(), 1),
        });
    }
    solve_unit_lower_into(l, b, &mut ws.intermediate)?;
    for (i, yi) in ws.intermediate.iter_mut().enumerate() {
        let di = d[i];
        if di.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        *yi /= di;
    }
    solve_unit_upper_into(u, &ws.intermediate, x)
}

// ---------------------------------------------------------------------------
// Blocked multi-RHS (panel) solves
// ---------------------------------------------------------------------------

/// Widest panel the blocked solves are tuned for. Callers may pass any
/// `width >= 1`; widths up to this constant keep the per-row lane loop inside
/// one or two cache lines, which is what makes it auto-vectorize well.
pub const MAX_PANEL_WIDTH: usize = 16;

/// Reusable scratch for the composite [`ldl_solve_multi_into`] operation.
///
/// The panel counterpart of [`SolveWorkspace`]: it holds the intermediate
/// `n × B` panel of the two-phase solve so a warm loop of batched solves
/// performs no heap allocation. Panels are stored with the `B` lane values of
/// each node adjacent (`panel[node * width + lane]`), i.e. a `B × n` matrix
/// in column-major order: one traversal of the factor's CSR structure applies
/// every nonzero to all `B` right-hand sides through a short contiguous
/// inner loop.
#[derive(Debug, Clone, Default)]
pub struct MultiSolveWorkspace {
    /// Intermediate panel of `L Y = B` before the diagonal scaling.
    intermediate: Vec<f64>,
}

impl MultiSolveWorkspace {
    /// An empty workspace; the panel grows on first use.
    pub fn new() -> Self {
        MultiSolveWorkspace::default()
    }

    /// A workspace pre-sized for systems of dimension `n` at panel width `w`.
    pub fn with_capacity(n: usize, w: usize) -> Self {
        MultiSolveWorkspace {
            intermediate: Vec::with_capacity(n * w),
        }
    }
}

/// The actual shape of a flat panel for error payloads: `rows × width` when
/// the length divides evenly, otherwise the raw length as a single column so
/// ragged inputs are reported verbatim instead of silently rounded.
fn panel_shape(panel_len: usize, width: usize) -> (usize, usize) {
    if width > 0 && panel_len.is_multiple_of(width) {
        (panel_len / width, width)
    } else {
        (panel_len, 1)
    }
}

fn check_square_and_panel(
    m: &CsrMatrix,
    panel_len: usize,
    width: usize,
    op: &'static str,
) -> Result<()> {
    if m.nrows() != m.ncols() {
        return Err(SparseError::NotSquare {
            nrows: m.nrows(),
            ncols: m.ncols(),
        });
    }
    if width == 0 || panel_len != m.nrows() * width {
        // The payload carries the *requested* shape: `width` verbatim (even
        // when 0) on the left, and the supplied panel re-expressed against
        // that width on the right.
        return Err(SparseError::DimensionMismatch {
            op,
            left: (m.nrows(), width),
            right: panel_shape(panel_len, width),
        });
    }
    Ok(())
}

/// Run `solve_block` over the panel in lane blocks of at most
/// [`MAX_PANEL_WIDTH`].
///
/// This is the cache-blocking of the CSR substitution traversals: a sweep
/// over a factor row reads one `width`-lane panel row per non-zero, so for
/// wide panels each block is gathered into a contiguous `n × bw` scratch
/// (`bw ≤ MAX_PANEL_WIDTH`, at most two cache lines per node) before the
/// substitution runs and scattered back after. Gather/scatter only copies
/// values — each lane's arithmetic is untouched, so bit-identity per lane is
/// preserved. Narrow panels (`width ≤ MAX_PANEL_WIDTH`) run in place.
fn run_lane_blocked(
    b: &[f64],
    width: usize,
    x: &mut [f64],
    mut solve_block: impl FnMut(&[f64], usize, &mut [f64]) -> Result<()>,
) -> Result<()> {
    if width <= MAX_PANEL_WIDTH {
        return solve_block(b, width, x);
    }
    let n = b.len() / width;
    let mut b_block = Vec::new();
    let mut x_block = Vec::new();
    let mut start = 0usize;
    while start < width {
        let bw = MAX_PANEL_WIDTH.min(width - start);
        b_block.clear();
        b_block.resize(n * bw, 0.0);
        x_block.clear();
        x_block.resize(n * bw, 0.0);
        for i in 0..n {
            let src = &b[i * width + start..i * width + start + bw];
            b_block[i * bw..(i + 1) * bw].copy_from_slice(src);
        }
        solve_block(&b_block, bw, &mut x_block)?;
        for i in 0..n {
            let dst = &mut x[i * width + start..i * width + start + bw];
            dst.copy_from_slice(&x_block[i * bw..(i + 1) * bw]);
        }
        start += bw;
    }
    Ok(())
}

// --- Kernel-generic sweep bodies -------------------------------------------
//
// Each sweep is written once, generic over the [`LaneKernel`] that executes
// its per-node lane loops, and instantiated twice: with [`ScalarKernel`]
// directly, and with [`Avx2Kernel`] inside an `#[target_feature(enable =
// "avx2")]` shell so the whole sweep (not just the primitives) is compiled
// for AVX2 and the intrinsics inline into the traversal. The shells are the
// only `unsafe` entry points; the runtime CPU check in `Avx2Kernel::try_new`
// is what discharges their safety obligation.

#[inline(always)]
fn lower_sweep<K: LaneKernel>(
    kern: K,
    l: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut [f64],
) -> Result<()> {
    let n = l.nrows();
    let mut spill = [0.0f64; MAX_PANEL_WIDTH];
    let acc = &mut spill[..width];
    for i in 0..n {
        let (cols, vals) = l.row(i);
        acc.copy_from_slice(&b[i * width..(i + 1) * width]);
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                kern.axpy_neg(acc, &x[j * width..(j + 1) * width], v);
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        kern.div_store(&mut x[i * width..(i + 1) * width], acc, diag);
    }
    Ok(())
}

#[inline(always)]
fn unit_lower_sweep<K: LaneKernel>(
    kern: K,
    l: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut [f64],
) -> Result<()> {
    let n = l.nrows();
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let (done, rest) = x.split_at_mut(i * width);
        let xi = &mut rest[..width];
        xi.copy_from_slice(&b[i * width..(i + 1) * width]);
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                kern.axpy_neg(xi, &done[j * width..(j + 1) * width], v);
            }
        }
    }
    Ok(())
}

#[inline(always)]
fn upper_sweep<K: LaneKernel>(
    kern: K,
    u: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut [f64],
) -> Result<()> {
    let n = u.nrows();
    let mut spill = [0.0f64; MAX_PANEL_WIDTH];
    let acc = &mut spill[..width];
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        acc.copy_from_slice(&b[i * width..(i + 1) * width]);
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                kern.axpy_neg(acc, &x[j * width..(j + 1) * width], v);
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        kern.div_store(&mut x[i * width..(i + 1) * width], acc, diag);
    }
    Ok(())
}

#[inline(always)]
fn unit_upper_sweep<K: LaneKernel>(
    kern: K,
    u: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut [f64],
) -> Result<()> {
    let n = u.nrows();
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let (head, tail) = x.split_at_mut((i + 1) * width);
        let xi = &mut head[i * width..];
        xi.copy_from_slice(&b[i * width..(i + 1) * width]);
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                kern.axpy_neg(xi, &tail[(j - i - 1) * width..(j - i) * width], v);
            }
        }
    }
    Ok(())
}

#[inline(always)]
fn scale_diag_sweep<K: LaneKernel>(
    kern: K,
    d: &[f64],
    width: usize,
    panel: &mut [f64],
) -> Result<()> {
    for (i, (&di, row)) in d.iter().zip(panel.chunks_exact_mut(width)).enumerate() {
        if di.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        kern.div_assign(row, di);
    }
    Ok(())
}

// --- AVX2 shells -----------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2_shells {
    use super::*;

    // SAFETY (each shell): callable only with an `Avx2Kernel`, whose
    // construction performed the runtime AVX2 check; the attribute merely
    // lets LLVM compile the monomorphized sweep body with AVX2 enabled.
    #[target_feature(enable = "avx2")]
    pub unsafe fn lower(
        k: Avx2Kernel,
        l: &CsrMatrix,
        b: &[f64],
        w: usize,
        x: &mut [f64],
    ) -> Result<()> {
        lower_sweep(k, l, b, w, x)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn unit_lower(
        k: Avx2Kernel,
        l: &CsrMatrix,
        b: &[f64],
        w: usize,
        x: &mut [f64],
    ) -> Result<()> {
        unit_lower_sweep(k, l, b, w, x)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn upper(
        k: Avx2Kernel,
        u: &CsrMatrix,
        b: &[f64],
        w: usize,
        x: &mut [f64],
    ) -> Result<()> {
        upper_sweep(k, u, b, w, x)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn unit_upper(
        k: Avx2Kernel,
        u: &CsrMatrix,
        b: &[f64],
        w: usize,
        x: &mut [f64],
    ) -> Result<()> {
        unit_upper_sweep(k, u, b, w, x)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_diag(k: Avx2Kernel, d: &[f64], w: usize, panel: &mut [f64]) -> Result<()> {
        scale_diag_sweep(k, d, w, panel)
    }
}

/// Try to resolve `kind` to a runnable AVX2 kernel.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn avx2_for(kind: KernelKind) -> Option<Avx2Kernel> {
    match kind {
        KernelKind::Simd => Avx2Kernel::try_new(),
        KernelKind::Scalar => None,
    }
}

/// Solve `L X = B` for `width` right-hand sides at once, where `L` is lower
/// triangular with a non-zero stored diagonal.
///
/// `b` and `x` are panels in the [`MultiSolveWorkspace`] layout
/// (`panel[i * width + lane]`, length `n · width`). Each lane's arithmetic
/// matches [`solve_lower_triangular_into`] operation for operation — under
/// **either** kernel (see [`crate::kernel`]) — so lane `l` of the panel
/// result is **bit-identical** to the scalar solve of lane `l`'s right-hand
/// side; the panel only amortizes the traversal of `L`'s row pointers and
/// indices across lanes. Dispatches on [`kernel::active_kernel`]; use
/// [`solve_lower_multi_into_with`] to pin a kernel explicitly.
pub fn solve_lower_multi_into(
    l: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    solve_lower_multi_into_with(kernel::active_kernel(), l, b, width, x)
}

/// [`solve_lower_multi_into`] with an explicit kernel choice (an unavailable
/// SIMD request falls back to scalar, preserving results bit for bit).
pub fn solve_lower_multi_into_with(
    kind: KernelKind,
    l: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    check_square_and_panel(l, b.len(), width, "solve_lower_multi")?;
    reset(x, l.nrows() * width);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = kind;
    run_lane_blocked(b, width, x, |bb, bw, xb| {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if let Some(k) = avx2_for(kind) {
            // SAFETY: `avx2_for` returned a kernel, so AVX2 is available.
            return unsafe { avx2_shells::lower(k, l, bb, bw, xb) };
        }
        lower_sweep(ScalarKernel, l, bb, bw, xb)
    })
}

/// Solve `L X = B` for `width` right-hand sides where `L` is *unit* lower
/// triangular. Panel layout and bit-identity guarantees as in
/// [`solve_lower_multi_into`]; each lane matches [`solve_unit_lower_into`].
pub fn solve_unit_lower_multi_into(
    l: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    solve_unit_lower_multi_into_with(kernel::active_kernel(), l, b, width, x)
}

/// [`solve_unit_lower_multi_into`] with an explicit kernel choice.
pub fn solve_unit_lower_multi_into_with(
    kind: KernelKind,
    l: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    check_square_and_panel(l, b.len(), width, "solve_unit_lower_multi")?;
    reset(x, l.nrows() * width);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = kind;
    run_lane_blocked(b, width, x, |bb, bw, xb| {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if let Some(k) = avx2_for(kind) {
            // SAFETY: `avx2_for` returned a kernel, so AVX2 is available.
            return unsafe { avx2_shells::unit_lower(k, l, bb, bw, xb) };
        }
        unit_lower_sweep(ScalarKernel, l, bb, bw, xb)
    })
}

/// Solve `U X = B` for `width` right-hand sides at once, where `U` is upper
/// triangular with a non-zero stored diagonal. Panel layout and bit-identity
/// guarantees as in [`solve_lower_multi_into`]; each lane matches
/// [`solve_upper_triangular_into`].
pub fn solve_upper_multi_into(
    u: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    solve_upper_multi_into_with(kernel::active_kernel(), u, b, width, x)
}

/// [`solve_upper_multi_into`] with an explicit kernel choice.
pub fn solve_upper_multi_into_with(
    kind: KernelKind,
    u: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    check_square_and_panel(u, b.len(), width, "solve_upper_multi")?;
    reset(x, u.nrows() * width);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = kind;
    run_lane_blocked(b, width, x, |bb, bw, xb| {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if let Some(k) = avx2_for(kind) {
            // SAFETY: `avx2_for` returned a kernel, so AVX2 is available.
            return unsafe { avx2_shells::upper(k, u, bb, bw, xb) };
        }
        upper_sweep(ScalarKernel, u, bb, bw, xb)
    })
}

/// Solve `U X = B` for `width` right-hand sides where `U` is *unit* upper
/// triangular. Panel layout and bit-identity guarantees as in
/// [`solve_lower_multi_into`]; each lane matches [`solve_unit_upper_into`].
pub fn solve_unit_upper_multi_into(
    u: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    solve_unit_upper_multi_into_with(kernel::active_kernel(), u, b, width, x)
}

/// [`solve_unit_upper_multi_into`] with an explicit kernel choice.
pub fn solve_unit_upper_multi_into_with(
    kind: KernelKind,
    u: &CsrMatrix,
    b: &[f64],
    width: usize,
    x: &mut Vec<f64>,
) -> Result<()> {
    check_square_and_panel(u, b.len(), width, "solve_unit_upper_multi")?;
    reset(x, u.nrows() * width);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = kind;
    run_lane_blocked(b, width, x, |bb, bw, xb| {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if let Some(k) = avx2_for(kind) {
            // SAFETY: `avx2_for` returned a kernel, so AVX2 is available.
            return unsafe { avx2_shells::unit_upper(k, u, bb, bw, xb) };
        }
        unit_upper_sweep(ScalarKernel, u, bb, bw, xb)
    })
}

/// Scale every row of an `n × width` panel by the inverse diagonal, in place:
/// `panel[i, lane] /= d[i]` for every lane. Each lane's arithmetic matches
/// the scalar diagonal phase of [`ldl_solve_into`] bit for bit, under either
/// kernel.
pub fn scale_diag_multi_into(d: &[f64], width: usize, panel: &mut [f64]) -> Result<()> {
    scale_diag_multi_into_with(kernel::active_kernel(), d, width, panel)
}

/// [`scale_diag_multi_into`] with an explicit kernel choice.
pub fn scale_diag_multi_into_with(
    kind: KernelKind,
    d: &[f64],
    width: usize,
    panel: &mut [f64],
) -> Result<()> {
    if width == 0 || panel.len() != d.len() * width {
        // As in `check_square_and_panel`: report the requested shape
        // verbatim, never a `.max(1)`-garbled rounding of it.
        return Err(SparseError::DimensionMismatch {
            op: "scale_diag_multi",
            left: (d.len(), width),
            right: panel_shape(panel.len(), width),
        });
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if let Some(k) = avx2_for(kind) {
        // SAFETY: `avx2_for` returned a kernel, so AVX2 is available.
        return unsafe { avx2_shells::scale_diag(k, d, width, panel) };
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = kind;
    scale_diag_sweep(ScalarKernel, d, width, panel)
}

/// Solve `L D Lᵀ X = B` for `width` right-hand sides at once — the panel
/// counterpart of [`ldl_solve_into`]: one unit-lower sweep, one diagonal
/// scaling and one unit-upper sweep, each traversing the factor structure
/// once for the whole panel. Lane `l` of the result is bit-identical to
/// [`ldl_solve_into`] on lane `l`'s right-hand side.
pub fn ldl_solve_multi_into(
    l: &CsrMatrix,
    u: &CsrMatrix,
    d: &[f64],
    b: &[f64],
    width: usize,
    ws: &mut MultiSolveWorkspace,
    x: &mut Vec<f64>,
) -> Result<()> {
    ldl_solve_multi_into_with(kernel::active_kernel(), l, u, d, b, width, ws, x)
}

/// [`ldl_solve_multi_into`] with an explicit kernel choice.
#[allow(clippy::too_many_arguments)] // composite of three kernel-dispatched phases
pub fn ldl_solve_multi_into_with(
    kind: KernelKind,
    l: &CsrMatrix,
    u: &CsrMatrix,
    d: &[f64],
    b: &[f64],
    width: usize,
    ws: &mut MultiSolveWorkspace,
    x: &mut Vec<f64>,
) -> Result<()> {
    if d.len() != l.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "ldl_solve_multi diagonal",
            left: (l.nrows(), l.ncols()),
            right: (d.len(), 1),
        });
    }
    solve_unit_lower_multi_into_with(kind, l, b, width, &mut ws.intermediate)?;
    scale_diag_multi_into_with(kind, d, width, &mut ws.intermediate)?;
    solve_unit_upper_multi_into_with(kind, u, &ws.intermediate, width, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::vector::max_abs_diff;

    fn lower_example() -> CsrMatrix {
        // [ 2 0 0 ]
        // [ 1 3 0 ]
        // [ 0 2 4 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 2.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lower_solve_matches_dense() {
        let l = lower_example();
        let b = vec![2.0, 7.0, 14.0];
        let x = solve_lower_triangular(&l, &b).unwrap();
        let lx = l.matvec(&x).unwrap();
        assert!(max_abs_diff(&lx, &b).unwrap() < 1e-12);
    }

    #[test]
    fn upper_solve_matches_dense() {
        let u = lower_example().transpose();
        let b = vec![5.0, 4.0, 8.0];
        let x = solve_upper_triangular(&u, &b).unwrap();
        let ux = u.matvec(&x).unwrap();
        assert!(max_abs_diff(&ux, &b).unwrap() < 1e-12);
    }

    #[test]
    fn unit_solves_ignore_missing_diagonal() {
        // Strictly lower part only; diagonal treated as 1.
        let l = CsrMatrix::from_triplets(3, 3, &[(1, 0, 0.5), (2, 1, 0.25)]).unwrap();
        let b = vec![1.0, 1.0, 1.0];
        let x = solve_unit_lower(&l, &b).unwrap();
        assert_eq!(x, vec![1.0, 0.5, 0.875]);

        let u = l.transpose();
        let xu = solve_unit_upper(&u, &b).unwrap();
        assert_eq!(xu, vec![0.625, 0.75, 1.0]);
    }

    #[test]
    fn singular_diagonals_are_reported() {
        let l = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            solve_lower_triangular(&l, &[1.0, 1.0]),
            Err(SparseError::SingularMatrix { pivot: 1 })
        ));
        let u = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            solve_upper_triangular(&u, &[1.0, 1.0]),
            Err(SparseError::SingularMatrix { pivot: 0 })
        ));
    }

    #[test]
    fn shape_validation() {
        let l = lower_example();
        assert!(solve_lower_triangular(&l, &[1.0]).is_err());
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(solve_unit_lower(&rect, &[1.0, 1.0]).is_err());
        assert!(solve_unit_upper(&rect, &[1.0, 1.0]).is_err());
        assert!(solve_upper_triangular(&rect, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn into_variants_are_bit_identical_and_reusable() {
        let l = lower_example();
        let u = l.transpose();
        let unit_l = CsrMatrix::from_triplets(3, 3, &[(1, 0, 0.5), (2, 1, 0.25)]).unwrap();
        let unit_u = unit_l.transpose();
        let d = vec![2.0, 3.0, 4.0];

        // One shared output buffer reused across every solve kind and several
        // right-hand sides: results must equal the allocating API bit for bit.
        let mut out = Vec::new();
        let mut ws = SolveWorkspace::with_capacity(3);
        for b in [vec![2.0, 7.0, 14.0], vec![-1.0, 0.5, 3.25], vec![0.0; 3]] {
            solve_lower_triangular_into(&l, &b, &mut out).unwrap();
            assert_eq!(out, solve_lower_triangular(&l, &b).unwrap());
            solve_upper_triangular_into(&u, &b, &mut out).unwrap();
            assert_eq!(out, solve_upper_triangular(&u, &b).unwrap());
            solve_unit_lower_into(&unit_l, &b, &mut out).unwrap();
            assert_eq!(out, solve_unit_lower(&unit_l, &b).unwrap());
            solve_unit_upper_into(&unit_u, &b, &mut out).unwrap();
            assert_eq!(out, solve_unit_upper(&unit_u, &b).unwrap());
            ldl_solve_into(&unit_l, &unit_u, &d, &b, &mut ws, &mut out).unwrap();
            assert_eq!(out, ldl_solve(&unit_l, &unit_u, &d, &b).unwrap());
        }

        // Shape errors are reported through the `_into` path as well.
        assert!(solve_lower_triangular_into(&l, &[1.0], &mut out).is_err());
        assert!(ldl_solve_into(&unit_l, &unit_u, &[1.0], &[1.0; 3], &mut ws, &mut out).is_err());
    }

    #[test]
    fn multi_solves_are_bit_identical_to_scalar_lanes() {
        // Every panel width (including ragged widths and widths past the
        // tuned maximum) must reproduce the scalar solves lane for lane,
        // bit for bit.
        let l = lower_example();
        let u = l.transpose();
        let unit_l = CsrMatrix::from_triplets(3, 3, &[(1, 0, 0.5), (2, 1, 0.25)]).unwrap();
        let unit_u = unit_l.transpose();
        let d = vec![2.0, 3.0, 4.0];
        let n = 3usize;

        for width in [1usize, 2, 3, 5, 8, MAX_PANEL_WIDTH + 1] {
            // Deterministic, lane-distinct right-hand sides.
            let lanes: Vec<Vec<f64>> = (0..width)
                .map(|lane| {
                    (0..n)
                        .map(|i| ((i + 1) as f64) * 0.7 - (lane as f64) * 1.3)
                        .collect()
                })
                .collect();
            let mut panel = vec![0.0; n * width];
            for (lane, b) in lanes.iter().enumerate() {
                for i in 0..n {
                    panel[i * width + lane] = b[i];
                }
            }

            let mut out = Vec::new();
            let mut ws = MultiSolveWorkspace::with_capacity(n, width);
            let mut scalar = Vec::new();
            let mut scalar_ws = SolveWorkspace::new();

            solve_lower_multi_into(&l, &panel, width, &mut out).unwrap();
            for (lane, b) in lanes.iter().enumerate() {
                solve_lower_triangular_into(&l, b, &mut scalar).unwrap();
                for i in 0..n {
                    assert_eq!(out[i * width + lane], scalar[i], "lower w={width} l={lane}");
                }
            }
            solve_upper_multi_into(&u, &panel, width, &mut out).unwrap();
            for (lane, b) in lanes.iter().enumerate() {
                solve_upper_triangular_into(&u, b, &mut scalar).unwrap();
                for i in 0..n {
                    assert_eq!(out[i * width + lane], scalar[i], "upper w={width} l={lane}");
                }
            }
            solve_unit_lower_multi_into(&unit_l, &panel, width, &mut out).unwrap();
            for (lane, b) in lanes.iter().enumerate() {
                solve_unit_lower_into(&unit_l, b, &mut scalar).unwrap();
                for i in 0..n {
                    assert_eq!(out[i * width + lane], scalar[i], "ul w={width} l={lane}");
                }
            }
            solve_unit_upper_multi_into(&unit_u, &panel, width, &mut out).unwrap();
            for (lane, b) in lanes.iter().enumerate() {
                solve_unit_upper_into(&unit_u, b, &mut scalar).unwrap();
                for i in 0..n {
                    assert_eq!(out[i * width + lane], scalar[i], "uu w={width} l={lane}");
                }
            }
            ldl_solve_multi_into(&unit_l, &unit_u, &d, &panel, width, &mut ws, &mut out).unwrap();
            for (lane, b) in lanes.iter().enumerate() {
                ldl_solve_into(&unit_l, &unit_u, &d, b, &mut scalar_ws, &mut scalar).unwrap();
                for i in 0..n {
                    assert_eq!(out[i * width + lane], scalar[i], "ldl w={width} l={lane}");
                }
            }

            // The in-place diagonal scaling matches the scalar phase too.
            let mut scaled = panel.clone();
            scale_diag_multi_into(&d, width, &mut scaled).unwrap();
            for (lane, b) in lanes.iter().enumerate() {
                for i in 0..n {
                    assert_eq!(scaled[i * width + lane], b[i] / d[i]);
                }
            }
        }
    }

    #[test]
    fn multi_solve_validation() {
        let l = lower_example();
        let mut out = Vec::new();
        // Panel length must be n * width; width must be positive.
        assert!(solve_lower_multi_into(&l, &[1.0; 5], 2, &mut out).is_err());
        assert!(solve_lower_multi_into(&l, &[], 0, &mut out).is_err());
        assert!(solve_unit_lower_multi_into(&l, &[1.0; 4], 2, &mut out).is_err());
        assert!(solve_upper_multi_into(&l, &[1.0; 4], 3, &mut out).is_err());
        assert!(solve_unit_upper_multi_into(&l, &[1.0; 7], 2, &mut out).is_err());
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(solve_lower_multi_into(&rect, &[1.0; 4], 2, &mut out).is_err());
        // Singular pivots are still reported per row.
        let sing = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            solve_lower_multi_into(&sing, &[1.0; 4], 2, &mut out),
            Err(SparseError::SingularMatrix { pivot: 1 })
        ));
        assert!(scale_diag_multi_into(&[1.0, 0.0], 2, &mut [1.0; 4]).is_err());
        assert!(scale_diag_multi_into(&[1.0], 2, &mut [1.0; 3]).is_err());
        let mut ws = MultiSolveWorkspace::new();
        assert!(ldl_solve_multi_into(&l, &l, &[1.0], &[1.0; 6], 2, &mut ws, &mut out).is_err());
    }

    #[test]
    fn multi_solve_mismatch_payload_carries_requested_shape() {
        let l = lower_example(); // 3 × 3
        let mut out = Vec::new();
        // width == 0: the left side reports the requested width verbatim, the
        // right side reports the supplied panel as a single column — not the
        // shape divided by `width.max(1)` the payload used to fabricate.
        assert!(matches!(
            solve_lower_multi_into(&l, &[1.0; 4], 0, &mut out),
            Err(SparseError::DimensionMismatch {
                left: (3, 0),
                right: (4, 1),
                ..
            })
        ));
        // Ragged panel (length not a multiple of width): reported verbatim as
        // a column, never rounded down to a fake row count.
        assert!(matches!(
            solve_unit_upper_multi_into(&l, &[1.0; 7], 2, &mut out),
            Err(SparseError::DimensionMismatch {
                left: (3, 2),
                right: (7, 1),
                ..
            })
        ));
        // Evenly divisible but wrong row count: re-expressed against the
        // requested width.
        assert!(matches!(
            solve_upper_multi_into(&l, &[1.0; 8], 2, &mut out),
            Err(SparseError::DimensionMismatch {
                left: (3, 2),
                right: (4, 2),
                ..
            })
        ));
        // The diagonal scaling entry point shares the same payload contract.
        assert!(matches!(
            scale_diag_multi_into(&[1.0, 2.0, 3.0], 0, &mut [1.0; 4]),
            Err(SparseError::DimensionMismatch {
                left: (3, 0),
                right: (4, 1),
                ..
            })
        ));
        assert!(matches!(
            scale_diag_multi_into(&[1.0, 2.0, 3.0], 2, &mut [1.0; 7]),
            Err(SparseError::DimensionMismatch {
                left: (3, 2),
                right: (7, 1),
                ..
            })
        ));
    }

    #[test]
    fn ldl_solve_reconstructs_spd_solution() {
        // Build an SPD matrix A = L D L^T and verify ldl_solve(A factors) inverts it.
        let l = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (1, 0, 0.5),
                (1, 1, 1.0),
                (2, 1, -0.25),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let d = vec![4.0, 2.0, 1.0];
        let u = l.transpose();

        // Dense A = L * D * L^T for reference.
        let ld = l
            .to_dense()
            .matmul(&DenseMatrix::from_diagonal(&d))
            .unwrap();
        let a = ld.matmul(&l.to_dense().transpose()).unwrap();

        let b = vec![1.0, -2.0, 3.0];
        let x = ldl_solve(&l, &u, &d, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(max_abs_diff(&ax, &b).unwrap() < 1e-12);

        assert!(ldl_solve(&l, &u, &[1.0], &b).is_err());
        assert!(ldl_solve(&l, &u, &[1.0, 0.0, 1.0], &b).is_err());
    }
}
