//! Forward and back substitution for sparse triangular systems.
//!
//! Mogul obtains the approximate ranking scores by forward substitution on
//! `L' y = q'` (Equation (4)) followed by back substitution on `U x' = y`
//! (Equation (5)); both factors come from the `L D Lᵀ` factorization of `W`
//! and are stored row-wise (CSR), which is exactly the access pattern the two
//! substitutions need.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// Smallest pivot magnitude accepted before a solve is declared singular.
const PIVOT_TOL: f64 = 1e-300;

fn check_square_and_rhs(m: &CsrMatrix, b: &[f64], op: &'static str) -> Result<()> {
    if m.nrows() != m.ncols() {
        return Err(SparseError::NotSquare {
            nrows: m.nrows(),
            ncols: m.ncols(),
        });
    }
    if b.len() != m.nrows() {
        return Err(SparseError::DimensionMismatch {
            op,
            left: (m.nrows(), m.ncols()),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

/// Solve `L x = b` where `L` is lower triangular with a non-zero stored
/// diagonal. Entries above the diagonal are ignored.
pub fn solve_lower_triangular(l: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_and_rhs(l, b, "solve_lower_triangular")?;
    let n = l.nrows();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let mut sum = b[i];
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                sum -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        x[i] = sum / diag;
    }
    Ok(x)
}

/// Solve `L x = b` where `L` is *unit* lower triangular (implicit or explicit
/// diagonal of ones). Entries above the diagonal are ignored.
pub fn solve_unit_lower(l: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_and_rhs(l, b, "solve_unit_lower")?;
    let n = l.nrows();
    let mut x = vec![0.0; n];
    for i in 0..n {
        let (cols, vals) = l.row(i);
        let mut sum = b[i];
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                sum -= v * x[j];
            }
        }
        x[i] = sum;
    }
    Ok(x)
}

/// Solve `U x = b` where `U` is upper triangular with a non-zero stored
/// diagonal. Entries below the diagonal are ignored.
pub fn solve_upper_triangular(u: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_and_rhs(u, b, "solve_upper_triangular")?;
    let n = u.nrows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let mut sum = b[i];
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                sum -= v * x[j];
            } else if j == i {
                diag = v;
            }
        }
        if diag.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        x[i] = sum / diag;
    }
    Ok(x)
}

/// Solve `U x = b` where `U` is *unit* upper triangular (implicit or explicit
/// diagonal of ones). Entries below the diagonal are ignored.
pub fn solve_unit_upper(u: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    check_square_and_rhs(u, b, "solve_unit_upper")?;
    let n = u.nrows();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let (cols, vals) = u.row(i);
        let mut sum = b[i];
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                sum -= v * x[j];
            }
        }
        x[i] = sum;
    }
    Ok(x)
}

/// Solve `L D Lᵀ x = b` given the unit-lower factor `L` (rows, CSR), its
/// transpose `U = Lᵀ` (rows, CSR) and the diagonal `D`.
///
/// This is the composite operation Mogul performs when it computes the
/// approximate scores of *all* nodes (the "Incomplete Cholesky" baseline of
/// Figure 5); the selective per-cluster variant lives in `mogul-core`.
pub fn ldl_solve(l: &CsrMatrix, u: &CsrMatrix, d: &[f64], b: &[f64]) -> Result<Vec<f64>> {
    if d.len() != l.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "ldl_solve diagonal",
            left: (l.nrows(), l.ncols()),
            right: (d.len(), 1),
        });
    }
    let mut y = solve_unit_lower(l, b)?;
    for (i, yi) in y.iter_mut().enumerate() {
        let di = d[i];
        if di.abs() < PIVOT_TOL {
            return Err(SparseError::SingularMatrix { pivot: i });
        }
        *yi /= di;
    }
    solve_unit_upper(u, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::vector::max_abs_diff;

    fn lower_example() -> CsrMatrix {
        // [ 2 0 0 ]
        // [ 1 3 0 ]
        // [ 0 2 4 ]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (1, 0, 1.0),
                (1, 1, 3.0),
                (2, 1, 2.0),
                (2, 2, 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lower_solve_matches_dense() {
        let l = lower_example();
        let b = vec![2.0, 7.0, 14.0];
        let x = solve_lower_triangular(&l, &b).unwrap();
        let lx = l.matvec(&x).unwrap();
        assert!(max_abs_diff(&lx, &b).unwrap() < 1e-12);
    }

    #[test]
    fn upper_solve_matches_dense() {
        let u = lower_example().transpose();
        let b = vec![5.0, 4.0, 8.0];
        let x = solve_upper_triangular(&u, &b).unwrap();
        let ux = u.matvec(&x).unwrap();
        assert!(max_abs_diff(&ux, &b).unwrap() < 1e-12);
    }

    #[test]
    fn unit_solves_ignore_missing_diagonal() {
        // Strictly lower part only; diagonal treated as 1.
        let l = CsrMatrix::from_triplets(3, 3, &[(1, 0, 0.5), (2, 1, 0.25)]).unwrap();
        let b = vec![1.0, 1.0, 1.0];
        let x = solve_unit_lower(&l, &b).unwrap();
        assert_eq!(x, vec![1.0, 0.5, 0.875]);

        let u = l.transpose();
        let xu = solve_unit_upper(&u, &b).unwrap();
        assert_eq!(xu, vec![0.625, 0.75, 1.0]);
    }

    #[test]
    fn singular_diagonals_are_reported() {
        let l = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            solve_lower_triangular(&l, &[1.0, 1.0]),
            Err(SparseError::SingularMatrix { pivot: 1 })
        ));
        let u = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 1, 1.0)]).unwrap();
        assert!(matches!(
            solve_upper_triangular(&u, &[1.0, 1.0]),
            Err(SparseError::SingularMatrix { pivot: 0 })
        ));
    }

    #[test]
    fn shape_validation() {
        let l = lower_example();
        assert!(solve_lower_triangular(&l, &[1.0]).is_err());
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(solve_unit_lower(&rect, &[1.0, 1.0]).is_err());
        assert!(solve_unit_upper(&rect, &[1.0, 1.0]).is_err());
        assert!(solve_upper_triangular(&rect, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn ldl_solve_reconstructs_spd_solution() {
        // Build an SPD matrix A = L D L^T and verify ldl_solve(A factors) inverts it.
        let l = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (1, 0, 0.5),
                (1, 1, 1.0),
                (2, 1, -0.25),
                (2, 2, 1.0),
            ],
        )
        .unwrap();
        let d = vec![4.0, 2.0, 1.0];
        let u = l.transpose();

        // Dense A = L * D * L^T for reference.
        let ld = l
            .to_dense()
            .matmul(&DenseMatrix::from_diagonal(&d))
            .unwrap();
        let a = ld.matmul(&l.to_dense().transpose()).unwrap();

        let b = vec![1.0, -2.0, 3.0];
        let x = ldl_solve(&l, &u, &d, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        assert!(max_abs_diff(&ax, &b).unwrap() < 1e-12);

        assert!(ldl_solve(&l, &u, &[1.0], &b).is_err());
        assert!(ldl_solve(&l, &u, &[1.0, 0.0, 1.0], &b).is_err());
    }
}
