//! Dense vector helpers.
//!
//! Ranking-score vectors (`x`, `y`, `q` in the paper) are plain `Vec<f64>`;
//! this module provides the handful of BLAS-1 style operations the rest of
//! the workspace needs, with explicit, allocation-conscious signatures.

use crate::error::{Result, SparseError};

/// Dot product of two equal-length slices.
///
/// Returns an error if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(SparseError::DimensionMismatch {
            op: "dot",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(dot_unchecked(a, b))
}

/// Dot product without the length check; callers guarantee equal lengths.
#[inline]
pub fn dot_unchecked(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot_unchecked(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// Maximum absolute entry; `0.0` for an empty slice.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, x| m.max(x.abs()))
}

/// `y ← y + alpha * x` (classic AXPY).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(SparseError::DimensionMismatch {
            op: "axpy",
            left: (x.len(), 1),
            right: (y.len(), 1),
        });
    }
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
    Ok(())
}

/// Scale a vector in place: `x ← alpha * x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(SparseError::DimensionMismatch {
            op: "euclidean_distance",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(squared_euclidean_unchecked(a, b).sqrt())
}

/// Squared Euclidean distance without the length check.
#[inline]
pub fn squared_euclidean_unchecked(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Normalize a vector to unit L2 norm in place.
///
/// Vectors with norm below `1e-300` are left untouched (they would otherwise
/// become non-finite).
pub fn normalize(x: &mut [f64]) {
    let n = norm2(x);
    if n > 1e-300 {
        scale(1.0 / n, x);
    }
}

/// Indices of the `k` largest entries, in descending order of value.
///
/// Ties are broken by ascending index so that the result is deterministic.
/// If `k >= x.len()` all indices are returned.
pub fn top_k_indices(x: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k.min(x.len()));
    idx
}

/// Return `true` when every entry is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Maximum absolute difference between two equal-length slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(SparseError::DimensionMismatch {
            op: "max_abs_diff",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(a.iter()
        .zip(b.iter())
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap(), 32.0);
    }

    #[test]
    fn dot_length_mismatch() {
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn norms() {
        let v = [3.0, -4.0];
        assert!((norm2(&v) - 5.0).abs() < 1e-12);
        assert!((norm1(&v) - 7.0).abs() < 1e-12);
        assert!((norm_inf(&v) - 4.0).abs() < 1e-12);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y).unwrap();
        assert_eq!(y, vec![7.0, 9.0]);
        assert!(axpy(1.0, &[1.0], &mut y).is_err());
    }

    #[test]
    fn scale_and_normalize() {
        let mut v = vec![3.0, 4.0];
        scale(2.0, &mut v);
        assert_eq!(v, vec![6.0, 8.0]);
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);

        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn distances() {
        let d = euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap();
        assert!((d - 5.0).abs() < 1e-12);
        assert!(euclidean_distance(&[0.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn top_k_orders_and_breaks_ties() {
        let x = [0.5, 2.0, 2.0, -1.0, 3.0];
        assert_eq!(top_k_indices(&x, 3), vec![4, 1, 2]);
        assert_eq!(top_k_indices(&x, 10).len(), 5);
        assert_eq!(top_k_indices(&x, 0), Vec::<usize>::new());
    }

    #[test]
    fn finite_and_diff() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!((max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]).unwrap() - 0.5).abs() < 1e-12);
        assert!(max_abs_diff(&[1.0], &[1.0, 2.0]).is_err());
    }
}
