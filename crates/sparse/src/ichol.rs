//! Incomplete Cholesky (`L D Lᵀ`) factorization with a fixed sparsity pattern.
//!
//! This is the factorization at the heart of Mogul (Section 4.2.1). Given the
//! symmetric matrix `W = I − α (C')^{-1/2} A' (C')^{-1/2}`, the factors are
//! restricted to the non-zero pattern of `W` itself — that restriction is what
//! makes the factorization *incomplete* (Equations (6) and (7)) and what keeps
//! `L`, `D`, `U = Lᵀ` at `O(n)` non-zeros (Lemma 1 and Lemma 2).
//!
//! The factorization can break down (a pivot can become zero or negative)
//! because the incomplete factors need not inherit positive definiteness.
//! Following standard practice the pivot is then boosted to a small positive
//! value; the number of boosted pivots is reported in [`LdlFactors`] so
//! callers can monitor approximation quality.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// Relative floor applied to non-positive pivots during the factorization.
const PIVOT_BOOST: f64 = 1e-10;

/// Result of an (incomplete or complete) `L D Lᵀ` factorization.
#[derive(Debug, Clone)]
pub struct LdlFactors {
    /// Unit lower-triangular factor with an explicit diagonal of ones (CSR).
    pub l: CsrMatrix,
    /// Upper-triangular factor `U = Lᵀ` with an explicit diagonal of ones (CSR).
    pub u: CsrMatrix,
    /// Diagonal factor `D`.
    pub d: Vec<f64>,
    /// Number of pivots that had to be boosted to keep the factorization
    /// well defined (0 for a positive-definite input and exact arithmetic).
    pub boosted_pivots: usize,
}

impl LdlFactors {
    /// Size of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Number of stored non-zeros in `L` (including the unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Reconstruct the dense product `L D Lᵀ` (tests / small inputs only).
    pub fn reconstruct_dense(&self) -> crate::dense::DenseMatrix {
        let ld = self
            .l
            .to_dense()
            .matmul(&crate::dense::DenseMatrix::from_diagonal(&self.d))
            .expect("shape mismatch in LDL reconstruction");
        ld.matmul(&self.l.to_dense().transpose())
            .expect("shape mismatch in LDL reconstruction")
    }

    /// Solve `L D Lᵀ x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        crate::triangular::ldl_solve(&self.l, &self.u, &self.d, b)
    }
}

/// Incomplete `L D Lᵀ` factorization of a symmetric matrix `w`, with the
/// factor pattern fixed to the lower triangle of `w` (plus the diagonal).
///
/// Implements Equations (6) and (7) of the paper:
///
/// ```text
/// L_ij = (W_ij − Σ_{k<j} L_ik L_jk D_kk) / D_jj    for stored (i, j), i > j
/// D_ii = W_ii − Σ_{k<i} L_ik² D_kk
/// ```
///
/// Runs in `O(Σ_i nnz(row i)²)` time, which is `O(n)` for bounded-degree k-NN
/// graphs (Lemma 2).
pub fn incomplete_ldl(w: &CsrMatrix) -> Result<LdlFactors> {
    if w.nrows() != w.ncols() {
        return Err(SparseError::NotSquare {
            nrows: w.nrows(),
            ncols: w.ncols(),
        });
    }
    let n = w.nrows();

    // Fixed pattern: strictly-lower part of W plus an explicit unit diagonal.
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices: Vec<usize> = Vec::with_capacity(w.nnz() / 2 + n);
    indptr.push(0);
    for i in 0..n {
        let (cols, _) = w.row(i);
        for &j in cols {
            if j < i {
                indices.push(j);
            }
        }
        indices.push(i); // unit diagonal
        indptr.push(indices.len());
    }
    let mut values = vec![0.0; indices.len()];

    let mut d = vec![0.0; n];
    let mut boosted = 0usize;

    for i in 0..n {
        let row_start = indptr[i];
        let row_end = indptr[i + 1];
        let (w_cols, w_vals) = w.row(i);
        let w_ii = match w_cols.binary_search(&i) {
            Ok(pos) => w_vals[pos],
            Err(_) => 0.0,
        };

        // Off-diagonal entries of row i, ascending in j.
        for pos in row_start..row_end - 1 {
            let j = indices[pos];
            // W_ij is guaranteed stored (the pattern came from W).
            let w_ij = match w_cols.binary_search(&j) {
                Ok(p) => w_vals[p],
                Err(_) => 0.0,
            };
            // Σ_{k<j} L_ik L_jk D_k over the intersection of the two row patterns.
            let mut sum = 0.0;
            let (ri_cols, ri_vals) = (&indices[row_start..pos], &values[row_start..pos]);
            let (rj_start, rj_end) = (indptr[j], indptr[j + 1] - 1); // exclude diag of row j
            let rj_cols = &indices[rj_start..rj_end];
            let rj_vals = &values[rj_start..rj_end];
            let (mut a, mut b) = (0usize, 0usize);
            while a < ri_cols.len() && b < rj_cols.len() {
                let (ka, kb) = (ri_cols[a], rj_cols[b]);
                if ka == kb {
                    sum += ri_vals[a] * rj_vals[b] * d[ka];
                    a += 1;
                    b += 1;
                } else if ka < kb {
                    a += 1;
                } else {
                    b += 1;
                }
            }
            values[pos] = (w_ij - sum) / d[j];
        }

        // Diagonal D_ii.
        let mut diag = w_ii;
        for pos in row_start..row_end - 1 {
            let k = indices[pos];
            diag -= values[pos] * values[pos] * d[k];
        }
        if !diag.is_finite() {
            return Err(SparseError::Breakdown {
                index: i,
                value: diag,
            });
        }
        let floor = PIVOT_BOOST * w_ii.abs().max(1.0);
        if diag <= floor {
            diag = floor;
            boosted += 1;
        }
        d[i] = diag;
        values[row_end - 1] = 1.0; // unit diagonal of L
    }

    let l = CsrMatrix::from_raw_parts(n, n, indptr, indices, values)?;
    let u = l.transpose();
    Ok(LdlFactors {
        l,
        u,
        d,
        boosted_pivots: boosted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::DenseMatrix;
    use crate::vector::max_abs_diff;

    /// Tridiagonal SPD matrix: factorization is exact because there is no fill-in.
    fn tridiagonal(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.5).unwrap();
            if i + 1 < n {
                coo.push_symmetric(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn exact_on_tridiagonal() {
        let w = tridiagonal(8);
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.boosted_pivots, 0);
        let diff = f.reconstruct_dense().max_abs_diff(&w.to_dense()).unwrap();
        assert!(diff < 1e-12, "reconstruction error {diff}");
        // Solve matches dense solve.
        let b = vec![1.0; 8];
        let x = f.solve(&b).unwrap();
        let x_dense = w.to_dense().solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_dense).unwrap() < 1e-10);
    }

    #[test]
    fn unit_diagonal_and_pattern() {
        let w = tridiagonal(5);
        let f = incomplete_ldl(&w).unwrap();
        for i in 0..5 {
            assert_eq!(f.l.get(i, i), 1.0);
            assert_eq!(f.u.get(i, i), 1.0);
        }
        // Pattern of strictly-lower L is contained in the pattern of W.
        for (i, j, v) in f.l.iter() {
            if i != j && v != 0.0 {
                assert!(w.get(i, j) != 0.0, "fill-in at ({i},{j}) not allowed");
            }
        }
        assert_eq!(f.dim(), 5);
        assert!(f.l_nnz() >= 5);
    }

    #[test]
    fn incomplete_factor_ignores_fill_positions() {
        // Arrow matrix: complete factorization of the reversed ordering would
        // fill in; with the pattern fixed to W the factor stays sparse.
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 1..n {
            coo.push_symmetric(0, i, -1.0).unwrap();
        }
        let w = coo.to_csr();
        let f = incomplete_ldl(&w).unwrap();
        // No entry outside the arrow pattern.
        for (i, j, v) in f.l.iter() {
            if i != j && v != 0.0 {
                assert!(j == 0 || i == 0, "unexpected entry at ({i},{j})");
            }
        }
        // The product L D Lᵀ matches W exactly on the pattern of W …
        let recon = f.reconstruct_dense();
        for (i, j, v) in w.iter() {
            assert!(
                (recon.get(i, j) - v).abs() < 1e-12,
                "pattern entry ({i},{j}) not reproduced"
            );
        }
        // … and differs only by the dropped fill-in (bounded, off-pattern).
        let diff = recon.max_abs_diff(&w.to_dense()).unwrap();
        assert!(diff > 0.0, "hub-first arrow must drop some fill-in");
        assert!(
            diff <= 0.25 + 1e-12,
            "dropped fill-in larger than expected: {diff}"
        );
    }

    #[test]
    fn diagonally_dominant_random_like_matrix() {
        // A small "two cluster + border" matrix mimicking the paper's setting.
        let edges = [
            (0usize, 1usize),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (2, 3), // cross-cluster edge
        ];
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for &(a, b) in &edges {
            coo.push_symmetric(a, b, -0.2).unwrap();
        }
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
        }
        let w = coo.to_csr();
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.boosted_pivots, 0);
        // The approximation is close even where not exact.
        let diff = f.reconstruct_dense().max_abs_diff(&w.to_dense()).unwrap();
        assert!(diff < 0.1, "approximation error too large: {diff}");
        // Solving with the incomplete factors approximates the true solution.
        let b = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let approx = f.solve(&b).unwrap();
        let exact = w.to_dense().solve(&b).unwrap();
        assert!(max_abs_diff(&approx, &exact).unwrap() < 0.05);
    }

    #[test]
    fn rejects_rectangular_input() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            incomplete_ldl(&rect),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn boosts_indefinite_pivots_instead_of_failing() {
        // Indefinite matrix: off-diagonal dominates.
        let w =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0), (1, 1, 1.0)])
                .unwrap();
        let f = incomplete_ldl(&w).unwrap();
        assert!(f.boosted_pivots >= 1);
        assert!(f.d.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn empty_matrix() {
        let w = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.dim(), 0);
        assert_eq!(f.l.nnz(), 0);
    }

    #[test]
    fn identity_input_gives_identity_factors() {
        let w = CsrMatrix::identity(4);
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.d, vec![1.0; 4]);
        let diff = f
            .reconstruct_dense()
            .max_abs_diff(&DenseMatrix::identity(4))
            .unwrap();
        assert!(diff < 1e-15);
    }
}
