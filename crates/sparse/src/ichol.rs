//! Incomplete Cholesky (`L D Lᵀ`) factorization with a fixed sparsity pattern.
//!
//! This is the factorization at the heart of Mogul (Section 4.2.1). Given the
//! symmetric matrix `W = I − α (C')^{-1/2} A' (C')^{-1/2}`, the factors are
//! restricted to the non-zero pattern of `W` itself — that restriction is what
//! makes the factorization *incomplete* (Equations (6) and (7)) and what keeps
//! `L`, `D`, `U = Lᵀ` at `O(n)` non-zeros (Lemma 1 and Lemma 2).
//!
//! The factorization can break down (a pivot can become zero or negative)
//! because the incomplete factors need not inherit positive definiteness.
//! Following standard practice the pivot is then boosted to a small positive
//! value; the number of boosted pivots is reported in [`LdlFactors`] so
//! callers can monitor approximation quality.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};
use crate::parallel::{
    chunk_range, effective_threads, SharedSlice, WaveSchedule, PAR_MIN_DIM, PAR_MIN_WAVE_WIDTH,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Relative floor applied to non-positive pivots during the factorization.
const PIVOT_BOOST: f64 = 1e-10;

/// Result of an (incomplete or complete) `L D Lᵀ` factorization.
#[derive(Debug, Clone)]
pub struct LdlFactors {
    /// Unit lower-triangular factor with an explicit diagonal of ones (CSR).
    pub l: CsrMatrix,
    /// Upper-triangular factor `U = Lᵀ` with an explicit diagonal of ones (CSR).
    pub u: CsrMatrix,
    /// Diagonal factor `D`.
    pub d: Vec<f64>,
    /// Number of pivots that had to be boosted to keep the factorization
    /// well defined (0 for a positive-definite input and exact arithmetic).
    pub boosted_pivots: usize,
}

impl LdlFactors {
    /// Size of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.d.len()
    }

    /// Number of stored non-zeros in `L` (including the unit diagonal).
    pub fn l_nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Reconstruct the dense product `L D Lᵀ` (tests / small inputs only).
    pub fn reconstruct_dense(&self) -> crate::dense::DenseMatrix {
        let ld = self
            .l
            .to_dense()
            .matmul(&crate::dense::DenseMatrix::from_diagonal(&self.d))
            .expect("shape mismatch in LDL reconstruction");
        ld.matmul(&self.l.to_dense().transpose())
            .expect("shape mismatch in LDL reconstruction")
    }

    /// Solve `L D Lᵀ x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        crate::triangular::ldl_solve(&self.l, &self.u, &self.d, b)
    }
}

/// Incomplete `L D Lᵀ` factorization of a symmetric matrix `w`, with the
/// factor pattern fixed to the lower triangle of `w` (plus the diagonal).
///
/// Implements Equations (6) and (7) of the paper:
///
/// ```text
/// L_ij = (W_ij − Σ_{k<j} L_ik L_jk D_kk) / D_jj    for stored (i, j), i > j
/// D_ii = W_ii − Σ_{k<i} L_ik² D_kk
/// ```
///
/// Runs in `O(Σ_i nnz(row i)²)` time, which is `O(n)` for bounded-degree k-NN
/// graphs (Lemma 2). Delegates to [`incomplete_ldl_threaded`] with automatic
/// worker selection — the parallel schedule is **bit-identical** to the
/// serial sweep (see there), so the thread count never changes the factors.
pub fn incomplete_ldl(w: &CsrMatrix) -> Result<LdlFactors> {
    incomplete_ldl_threaded(w, 0)
}

/// Compute row `i` of the incomplete factor.
///
/// Fills `values[indptr[i] .. indptr[i+1]]` and returns `(d_i, boosted)`.
/// The arithmetic is the paper's Equations (6)/(7) verbatim — every caller
/// (serial or parallel) runs the exact same operation sequence per row, which
/// is what makes the parallel schedule bit-identical.
///
/// # Safety
///
/// Every row `j` in row `i`'s strictly-lower pattern — and its `d[j]` entry —
/// must be fully written and no longer under mutation, and no other thread
/// may access row `i`'s own value slice concurrently. The wave schedule plus
/// its barrier provide exactly this (rows of one wave have pairwise-disjoint
/// value slices, dependencies sit in earlier waves).
unsafe fn ichol_row(
    w: &CsrMatrix,
    indptr: &[usize],
    indices: &[usize],
    vals: &SharedSlice<'_, f64>,
    d: &SharedSlice<'_, f64>,
    i: usize,
) -> Result<(f64, bool)> {
    let row_start = indptr[i];
    let row_end = indptr[i + 1];
    // SAFETY: row `i`'s slice is this caller's exclusively (contract above).
    let row_vals = unsafe { vals.slice_mut(row_start, row_end - row_start) };
    let (w_cols, w_vals) = w.row(i);
    let w_ii = match w_cols.binary_search(&i) {
        Ok(pos) => w_vals[pos],
        Err(_) => 0.0,
    };

    // Off-diagonal entries of row i, ascending in j.
    for pos in 0..row_end - row_start - 1 {
        let j = indices[row_start + pos];
        // W_ij is guaranteed stored (the pattern came from W).
        let w_ij = match w_cols.binary_search(&j) {
            Ok(p) => w_vals[p],
            Err(_) => 0.0,
        };
        // Σ_{k<j} L_ik L_jk D_k over the intersection of the two row patterns.
        let mut sum = 0.0;
        let ri_cols = &indices[row_start..row_start + pos];
        let ri_vals = &row_vals[..pos];
        let (rj_start, rj_end) = (indptr[j], indptr[j + 1] - 1); // exclude diag of row j
        let rj_cols = &indices[rj_start..rj_end];
        // SAFETY: row `j` is in row `i`'s pattern, hence fully computed and
        // immutable for the rest of this wave (contract above).
        let rj_vals = unsafe { vals.slice(rj_start, rj_end - rj_start) };
        let (mut a, mut b) = (0usize, 0usize);
        while a < ri_cols.len() && b < rj_cols.len() {
            let (ka, kb) = (ri_cols[a], rj_cols[b]);
            if ka == kb {
                // SAFETY: ka < j is in row i's pattern — computed earlier.
                sum += ri_vals[a] * rj_vals[b] * unsafe { d.get(ka) };
                a += 1;
                b += 1;
            } else if ka < kb {
                a += 1;
            } else {
                b += 1;
            }
        }
        // SAFETY: d[j] computed in an earlier wave (contract above).
        row_vals[pos] = (w_ij - sum) / unsafe { d.get(j) };
    }

    // Diagonal D_ii.
    let mut diag = w_ii;
    for pos in 0..row_end - row_start - 1 {
        let k = indices[row_start + pos];
        // SAFETY: k is in row i's pattern — d[k] computed earlier.
        diag -= row_vals[pos] * row_vals[pos] * unsafe { d.get(k) };
    }
    if !diag.is_finite() {
        return Err(SparseError::Breakdown {
            index: i,
            value: diag,
        });
    }
    let floor = PIVOT_BOOST * w_ii.abs().max(1.0);
    let boosted = diag <= floor;
    if boosted {
        diag = floor;
    }
    row_vals[row_end - row_start - 1] = 1.0; // unit diagonal of L
    Ok((diag, boosted))
}

/// [`incomplete_ldl`] with an explicit worker count (`0` = one per core, via
/// [`effective_threads`]).
///
/// Rows are levelized over the fixed factor pattern (row `i`'s level is one
/// past the deepest level in its strictly-lower pattern) and executed wave by
/// wave under a barrier. Because row `i` reads only rows in its pattern —
/// all in strictly earlier waves — and each row runs the identical operation
/// sequence as the serial loop, the result is **bit-identical for every
/// worker count**, including factor values, `boosted_pivots`, and the error
/// returned on breakdown. Small or chain-shaped problems (where waves are
/// narrow) fall back to the serial sweep automatically.
pub fn incomplete_ldl_threaded(w: &CsrMatrix, threads: usize) -> Result<LdlFactors> {
    if w.nrows() != w.ncols() {
        return Err(SparseError::NotSquare {
            nrows: w.nrows(),
            ncols: w.ncols(),
        });
    }
    let n = w.nrows();

    // Fixed pattern: strictly-lower part of W plus an explicit unit diagonal.
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices: Vec<usize> = Vec::with_capacity(w.nnz() / 2 + n);
    indptr.push(0);
    for i in 0..n {
        let (cols, _) = w.row(i);
        for &j in cols {
            if j < i {
                indices.push(j);
            }
        }
        indices.push(i); // unit diagonal
        indptr.push(indices.len());
    }
    let mut values = vec![0.0; indices.len()];
    let mut d = vec![0.0; n];
    let mut boosted = 0usize;

    let workers = effective_threads(threads).min(n.max(1));
    let schedule = if workers > 1 && n >= PAR_MIN_DIM {
        // Dependency levels over the fixed pattern.
        let mut levels = vec![0usize; n];
        for i in 0..n {
            let mut level = 0usize;
            for &j in &indices[indptr[i]..indptr[i + 1] - 1] {
                level = level.max(levels[j] + 1);
            }
            levels[i] = level;
        }
        let s = WaveSchedule::from_levels(&levels);
        (s.mean_wave_width() >= PAR_MIN_WAVE_WIDTH).then_some(s)
    } else {
        None
    };

    match schedule {
        None => {
            // Serial sweep: rows in index order.
            let vals = SharedSlice::new(&mut values);
            let d_cell = SharedSlice::new(&mut d);
            for i in 0..n {
                // SAFETY: single-threaded — rows < i are complete, row i is
                // touched by nobody else.
                let (di, b) = unsafe { ichol_row(w, &indptr, &indices, &vals, &d_cell, i)? };
                // SAFETY: single-threaded.
                unsafe { d_cell.set(i, di) };
                boosted += usize::from(b);
            }
        }
        Some(schedule) => {
            let vals = SharedSlice::new(&mut values);
            let d_cell = SharedSlice::new(&mut d);
            let boosted_total = AtomicUsize::new(0);
            // On breakdown every wave still runs to completion (failed rows
            // poison `d` with NaN, which only dependents of the failed row
            // can observe); the recorded minimum failing row is then exactly
            // the row where the serial sweep would have stopped, so the
            // returned error is bit-identical to the serial one.
            let first_error: Mutex<Option<(usize, SparseError)>> = Mutex::new(None);
            let barrier = Barrier::new(workers);
            std::thread::scope(|scope| {
                for tid in 0..workers {
                    let (vals, d_cell) = (&vals, &d_cell);
                    let (schedule, barrier) = (&schedule, &barrier);
                    let (boosted_total, first_error) = (&boosted_total, &first_error);
                    let (indptr, indices) = (&indptr, &indices);
                    scope.spawn(move || {
                        let mut local_boost = 0usize;
                        for wave in 0..schedule.num_waves() {
                            let rows = schedule.wave(wave);
                            let (lo, hi) = chunk_range(rows.len(), workers, tid);
                            for &i in &rows[lo..hi] {
                                // SAFETY: dependencies of row i live in
                                // earlier waves (levelization) and the
                                // barrier below sequences waves; within a
                                // wave, row slices are disjoint.
                                match unsafe { ichol_row(w, indptr, indices, vals, d_cell, i) } {
                                    Ok((di, b)) => {
                                        // SAFETY: only this worker owns row i.
                                        unsafe { d_cell.set(i, di) };
                                        local_boost += usize::from(b);
                                    }
                                    Err(e) => {
                                        // SAFETY: only this worker owns row i.
                                        unsafe { d_cell.set(i, f64::NAN) };
                                        let mut slot = first_error.lock().unwrap();
                                        if slot.as_ref().is_none_or(|(row, _)| i < *row) {
                                            *slot = Some((i, e));
                                        }
                                    }
                                }
                            }
                            barrier.wait();
                        }
                        boosted_total.fetch_add(local_boost, Ordering::Relaxed);
                    });
                }
            });
            if let Some((_, e)) = first_error.into_inner().unwrap() {
                return Err(e);
            }
            boosted = boosted_total.into_inner();
        }
    }

    let l = CsrMatrix::from_raw_parts(n, n, indptr, indices, values)?;
    let u = l.transpose();
    Ok(LdlFactors {
        l,
        u,
        d,
        boosted_pivots: boosted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::dense::DenseMatrix;
    use crate::vector::max_abs_diff;

    /// Tridiagonal SPD matrix: factorization is exact because there is no fill-in.
    fn tridiagonal(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.5).unwrap();
            if i + 1 < n {
                coo.push_symmetric(i, i + 1, -1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn exact_on_tridiagonal() {
        let w = tridiagonal(8);
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.boosted_pivots, 0);
        let diff = f.reconstruct_dense().max_abs_diff(&w.to_dense()).unwrap();
        assert!(diff < 1e-12, "reconstruction error {diff}");
        // Solve matches dense solve.
        let b = vec![1.0; 8];
        let x = f.solve(&b).unwrap();
        let x_dense = w.to_dense().solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_dense).unwrap() < 1e-10);
    }

    #[test]
    fn unit_diagonal_and_pattern() {
        let w = tridiagonal(5);
        let f = incomplete_ldl(&w).unwrap();
        for i in 0..5 {
            assert_eq!(f.l.get(i, i), 1.0);
            assert_eq!(f.u.get(i, i), 1.0);
        }
        // Pattern of strictly-lower L is contained in the pattern of W.
        for (i, j, v) in f.l.iter() {
            if i != j && v != 0.0 {
                assert!(w.get(i, j) != 0.0, "fill-in at ({i},{j}) not allowed");
            }
        }
        assert_eq!(f.dim(), 5);
        assert!(f.l_nnz() >= 5);
    }

    #[test]
    fn incomplete_factor_ignores_fill_positions() {
        // Arrow matrix: complete factorization of the reversed ordering would
        // fill in; with the pattern fixed to W the factor stays sparse.
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 1..n {
            coo.push_symmetric(0, i, -1.0).unwrap();
        }
        let w = coo.to_csr();
        let f = incomplete_ldl(&w).unwrap();
        // No entry outside the arrow pattern.
        for (i, j, v) in f.l.iter() {
            if i != j && v != 0.0 {
                assert!(j == 0 || i == 0, "unexpected entry at ({i},{j})");
            }
        }
        // The product L D Lᵀ matches W exactly on the pattern of W …
        let recon = f.reconstruct_dense();
        for (i, j, v) in w.iter() {
            assert!(
                (recon.get(i, j) - v).abs() < 1e-12,
                "pattern entry ({i},{j}) not reproduced"
            );
        }
        // … and differs only by the dropped fill-in (bounded, off-pattern).
        let diff = recon.max_abs_diff(&w.to_dense()).unwrap();
        assert!(diff > 0.0, "hub-first arrow must drop some fill-in");
        assert!(
            diff <= 0.25 + 1e-12,
            "dropped fill-in larger than expected: {diff}"
        );
    }

    #[test]
    fn diagonally_dominant_random_like_matrix() {
        // A small "two cluster + border" matrix mimicking the paper's setting.
        let edges = [
            (0usize, 1usize),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (2, 3), // cross-cluster edge
        ];
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for &(a, b) in &edges {
            coo.push_symmetric(a, b, -0.2).unwrap();
        }
        for i in 0..n {
            coo.push(i, i, 1.0).unwrap();
        }
        let w = coo.to_csr();
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.boosted_pivots, 0);
        // The approximation is close even where not exact.
        let diff = f.reconstruct_dense().max_abs_diff(&w.to_dense()).unwrap();
        assert!(diff < 0.1, "approximation error too large: {diff}");
        // Solving with the incomplete factors approximates the true solution.
        let b = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let approx = f.solve(&b).unwrap();
        let exact = w.to_dense().solve(&b).unwrap();
        assert!(max_abs_diff(&approx, &exact).unwrap() < 0.05);
    }

    #[test]
    fn rejects_rectangular_input() {
        let rect = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            incomplete_ldl(&rect),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn boosts_indefinite_pivots_instead_of_failing() {
        // Indefinite matrix: off-diagonal dominates.
        let w =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 5.0), (1, 1, 1.0)])
                .unwrap();
        let f = incomplete_ldl(&w).unwrap();
        assert!(f.boosted_pivots >= 1);
        assert!(f.d.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn empty_matrix() {
        let w = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.dim(), 0);
        assert_eq!(f.l.nnz(), 0);
    }

    #[test]
    fn identity_input_gives_identity_factors() {
        let w = CsrMatrix::identity(4);
        let f = incomplete_ldl(&w).unwrap();
        assert_eq!(f.d, vec![1.0; 4]);
        let diff = f
            .reconstruct_dense()
            .max_abs_diff(&DenseMatrix::identity(4))
            .unwrap();
        assert!(diff < 1e-15);
    }
}
