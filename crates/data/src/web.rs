//! NUS-WIDE-like dataset: noisy web-image colour features.
//!
//! NUS-WIDE consists of 267,465 Flickr photographs represented by 150-D
//! colour moments. Compared to COIL, the structure is much noisier: images of
//! a "topic" form elongated, curved regions in colour space and a large
//! fraction of images are essentially background clutter. The generator
//! reproduces that regime with noisy 1-D manifold segments (one per topic)
//! plus uniformly scattered background points.

use crate::dataset::Dataset;
use crate::synth::{random_unit_vector, segment_point};
use crate::{DataError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the NUS-WIDE-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebLikeConfig {
    /// Total number of points.
    pub num_points: usize,
    /// Number of topic manifolds.
    pub num_topics: usize,
    /// Feature dimensionality (NUS-WIDE uses 150-D colour moments).
    pub dim: usize,
    /// Length of each topic segment in feature space.
    pub segment_length: f64,
    /// Gaussian noise around each segment.
    pub noise: f64,
    /// Fraction of points that are unstructured background clutter
    /// (labelled with their own class id `num_topics`).
    pub background_fraction: f64,
    /// Spread of the segment start points and the background clutter.
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebLikeConfig {
    fn default() -> Self {
        WebLikeConfig {
            num_points: 2000,
            num_topics: 25,
            dim: 150,
            segment_length: 4.0,
            noise: 0.05,
            background_fraction: 0.1,
            spread: 3.0,
            seed: 267465,
        }
    }
}

/// Generate a NUS-WIDE-like dataset. Labels `0..num_topics` are topics; label
/// `num_topics` marks background clutter.
pub fn web_like(config: &WebLikeConfig) -> Result<Dataset> {
    if config.num_points == 0 || config.num_topics == 0 {
        return Err(DataError::InvalidInput(
            "web-like generator needs at least one point and one topic".into(),
        ));
    }
    if config.dim == 0 {
        return Err(DataError::InvalidInput("dim must be positive".into()));
    }
    if !(0.0..1.0).contains(&config.background_fraction) {
        return Err(DataError::InvalidInput(format!(
            "background_fraction must lie in [0, 1), got {}",
            config.background_fraction
        )));
    }
    if config.segment_length <= 0.0 || config.noise < 0.0 || config.spread < 0.0 {
        return Err(DataError::InvalidInput(
            "segment_length must be positive; noise and spread non-negative".into(),
        ));
    }

    let background_points = (config.num_points as f64 * config.background_fraction) as usize;
    let topic_points = config.num_points - background_points;
    if topic_points < config.num_topics {
        return Err(DataError::InvalidInput(format!(
            "only {topic_points} structured points for {} topics",
            config.num_topics
        )));
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut features = Vec::with_capacity(config.num_points);
    let mut labels = Vec::with_capacity(config.num_points);

    // Topic segments.
    let per_topic = topic_points / config.num_topics;
    let mut remainder = topic_points % config.num_topics;
    for topic in 0..config.num_topics {
        let count = per_topic + usize::from(remainder > 0);
        remainder = remainder.saturating_sub(1);
        let start: Vec<f64> = (0..config.dim)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * config.spread)
            .collect();
        let direction = random_unit_vector(&mut rng, config.dim);
        for i in 0..count {
            let t = config.segment_length * (i as f64 + rng.gen::<f64>()) / count.max(1) as f64;
            features.push(segment_point(&mut rng, &start, &direction, t, config.noise));
            labels.push(topic);
        }
    }
    // Background clutter.
    for _ in 0..background_points {
        let point: Vec<f64> = (0..config.dim)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * config.spread)
            .collect();
        features.push(point);
        labels.push(config.num_topics);
    }

    Dataset::new(
        format!("web-like({} topics)", config.num_topics),
        features,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_labels() {
        let config = WebLikeConfig {
            num_points: 500,
            num_topics: 10,
            dim: 20,
            ..Default::default()
        };
        let d = web_like(&config).unwrap();
        assert_eq!(d.len(), 500);
        assert_eq!(d.dim(), 20);
        // Topics plus the background class.
        assert_eq!(d.num_classes(), 11);
        let background = d.labels().iter().filter(|&&l| l == 10).count();
        assert_eq!(background, 50);
    }

    #[test]
    fn zero_background_fraction() {
        let config = WebLikeConfig {
            num_points: 300,
            num_topics: 5,
            dim: 10,
            background_fraction: 0.0,
            ..Default::default()
        };
        let d = web_like(&config).unwrap();
        assert_eq!(d.num_classes(), 5);
        assert_eq!(d.len(), 300);
    }

    #[test]
    fn topic_points_are_spread_along_a_segment() {
        let config = WebLikeConfig {
            num_points: 200,
            num_topics: 2,
            dim: 8,
            noise: 0.0,
            background_fraction: 0.0,
            ..Default::default()
        };
        let d = web_like(&config).unwrap();
        // Points of topic 0 span a distance comparable to segment_length.
        let topic0: Vec<&Vec<f64>> = d
            .features()
            .iter()
            .zip(d.labels())
            .filter(|&(_, &l)| l == 0)
            .map(|(f, _)| f)
            .collect();
        let mut max_dist: f64 = 0.0;
        for a in &topic0 {
            for b in &topic0 {
                let dist = crate::distance::euclidean(a, b).unwrap();
                max_dist = max_dist.max(dist);
            }
        }
        assert!(max_dist > 0.5 * config.segment_length);
        assert!(max_dist <= config.segment_length + 1e-9);
    }

    #[test]
    fn validation_and_determinism() {
        assert!(web_like(&WebLikeConfig {
            num_points: 0,
            ..Default::default()
        })
        .is_err());
        assert!(web_like(&WebLikeConfig {
            background_fraction: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(web_like(&WebLikeConfig {
            num_points: 10,
            num_topics: 20,
            ..Default::default()
        })
        .is_err());
        let config = WebLikeConfig {
            num_points: 100,
            num_topics: 4,
            dim: 6,
            ..Default::default()
        };
        assert_eq!(web_like(&config).unwrap(), web_like(&config).unwrap());
    }
}
