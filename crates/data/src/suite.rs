//! The standard four-dataset evaluation suite.
//!
//! The paper's experiments always sweep the same four datasets in increasing
//! size order: COIL-100 (7.2k) → PubFig (58.8k) → NUS-WIDE (267k) → INRIA
//! (1M). This module reproduces that sweep with the synthetic generators at a
//! configurable scale so the same *relative* size progression (roughly one
//! order of magnitude overall) is retained while staying laptop-friendly.

use crate::coil::{coil_like, CoilLikeConfig};
use crate::dataset::Dataset;
use crate::faces::{attribute_like, AttributeLikeConfig};
use crate::sift::{sift_like, SiftLikeConfig};
use crate::web::{web_like, WebLikeConfig};
use crate::Result;

/// How large the synthetic stand-ins for the paper's datasets should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// Tiny datasets for unit/integration tests (hundreds of points).
    Tiny,
    /// Small datasets for quick experiments (≈0.5k–3k points).
    Small,
    /// Medium datasets for the benchmark runs reported in EXPERIMENTS.md
    /// (≈1k–12k points).
    Medium,
    /// Larger datasets for scalability measurements (≈2k–40k points).
    Large,
}

impl SuiteScale {
    /// Multiplier applied to the base sizes of each dataset.
    fn factor(self) -> f64 {
        match self {
            SuiteScale::Tiny => 0.25,
            SuiteScale::Small => 1.0,
            SuiteScale::Medium => 4.0,
            SuiteScale::Large => 12.0,
        }
    }
}

/// A named dataset specification of the standard suite.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Display name matching the paper's dataset (with a `-like` suffix).
    pub name: &'static str,
    /// Name of the real dataset it substitutes.
    pub substitutes_for: &'static str,
    /// The generated dataset.
    pub dataset: Dataset,
}

fn scaled(base: usize, factor: f64, min: usize) -> usize {
    ((base as f64 * factor).round() as usize).max(min)
}

/// Build the four standard datasets in the paper's size order.
pub fn standard_suite(scale: SuiteScale) -> Result<Vec<DatasetSpec>> {
    let f = scale.factor();

    let coil = coil_like(&CoilLikeConfig {
        num_objects: scaled(20, f, 5),
        poses_per_object: 24,
        dim: 32,
        ring_radius: 1.0,
        center_spread: 2.0,
        noise: 0.02,
        seed: 7_200,
    })?;

    let pubfig = attribute_like(&AttributeLikeConfig {
        num_people: scaled(30, f, 8),
        num_points: scaled(800, f, 160),
        dim: 73,
        within_spread: 0.3,
        between_spread: 1.0,
        imbalance: 0.8,
        seed: 58_797,
    })?;

    let nuswide = web_like(&WebLikeConfig {
        num_points: scaled(1500, f, 300),
        num_topics: scaled(25, f, 8),
        dim: 50,
        segment_length: 4.0,
        noise: 0.05,
        background_fraction: 0.1,
        spread: 3.0,
        seed: 267_465,
    })?;

    let inria = sift_like(&SiftLikeConfig {
        num_points: scaled(3000, f, 600),
        dim: 64,
        num_words: scaled(40, f, 10),
        cells_per_word: 4,
        cell_spread: 6.0,
        word_spread: 20.0,
        max_value: 255.0,
        seed: 1_000_000,
    })?;

    Ok(vec![
        DatasetSpec {
            name: "COIL-100-like",
            substitutes_for: "COIL-100 (7,200 images, 100 objects x 72 poses)",
            dataset: coil,
        },
        DatasetSpec {
            name: "PubFig-like",
            substitutes_for: "PubFig (58,797 images, 200 people, 73-D attributes)",
            dataset: pubfig,
        },
        DatasetSpec {
            name: "NUS-WIDE-like",
            substitutes_for: "NUS-WIDE (267,465 images, 150-D color moments)",
            dataset: nuswide,
        },
        DatasetSpec {
            name: "INRIA-like",
            substitutes_for: "INRIA/BIGANN (1,000,000 128-D SIFT descriptors)",
            dataset: inria,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_increase_like_the_paper() {
        let suite = standard_suite(SuiteScale::Tiny).unwrap();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].name, "COIL-100-like");
        assert_eq!(suite[3].name, "INRIA-like");
        // Sizes are non-decreasing across the sweep (the paper's property
        // "graph sizes increase in the order ...").
        for w in suite.windows(2) {
            assert!(
                w[0].dataset.len() <= w[1].dataset.len(),
                "{} ({}) should not exceed {} ({})",
                w[0].name,
                w[0].dataset.len(),
                w[1].name,
                w[1].dataset.len()
            );
        }
    }

    #[test]
    fn scales_are_monotone() {
        let tiny = standard_suite(SuiteScale::Tiny).unwrap();
        let small = standard_suite(SuiteScale::Small).unwrap();
        for (t, s) in tiny.iter().zip(small.iter()) {
            assert!(t.dataset.len() <= s.dataset.len());
        }
    }

    #[test]
    fn every_dataset_has_labels_and_features() {
        for spec in standard_suite(SuiteScale::Tiny).unwrap() {
            assert!(!spec.dataset.is_empty());
            assert!(spec.dataset.dim() >= 32);
            assert!(spec.dataset.num_classes() >= 2);
            assert!(!spec.substitutes_for.is_empty());
        }
    }
}
