//! Distance metrics over dense feature vectors.
//!
//! The paper's k-NN graphs use the Euclidean distance in the image feature
//! space (Section 3); the cosine distance and general Minkowski (`Lp`)
//! distances are provided because they are common alternatives for the same
//! feature types (colour moments, attribute vectors, SIFT descriptors).

use crate::{DataError, Result};

/// Squared Euclidean distance.
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    check(a, b)?;
    Ok(mogul_sparse::vector::squared_euclidean_unchecked(a, b))
}

/// Euclidean (`L2`) distance.
pub fn euclidean(a: &[f64], b: &[f64]) -> Result<f64> {
    Ok(squared_euclidean(a, b)?.sqrt())
}

/// Manhattan (`L1`) distance.
pub fn manhattan(a: &[f64], b: &[f64]) -> Result<f64> {
    check(a, b)?;
    Ok(a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum())
}

/// Chebyshev (`L∞`) distance.
pub fn chebyshev(a: &[f64], b: &[f64]) -> Result<f64> {
    check(a, b)?;
    Ok(a.iter()
        .zip(b.iter())
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs())))
}

/// Minkowski (`Lp`) distance for `p ≥ 1`.
pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> Result<f64> {
    check(a, b)?;
    if p < 1.0 || !p.is_finite() {
        return Err(DataError::InvalidInput(format!(
            "Minkowski order must be a finite value ≥ 1, got {p}"
        )));
    }
    let sum: f64 = a
        .iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs().powf(p))
        .sum();
    Ok(sum.powf(1.0 / p))
}

/// Cosine distance `1 − cos(a, b)`; zero vectors are treated as maximally
/// distant from everything (distance 1).
pub fn cosine(a: &[f64], b: &[f64]) -> Result<f64> {
    check(a, b)?;
    let dot = mogul_sparse::vector::dot_unchecked(a, b);
    let na = mogul_sparse::vector::norm2(a);
    let nb = mogul_sparse::vector::norm2(b);
    if na < 1e-300 || nb < 1e-300 {
        return Ok(1.0);
    }
    Ok((1.0 - dot / (na * nb)).clamp(0.0, 2.0))
}

fn check(a: &[f64], b: &[f64]) -> Result<()> {
    if a.len() != b.len() {
        return Err(DataError::DimensionMismatch {
            op: "distance",
            left: (a.len(), 1),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_family() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((euclidean(&a, &b).unwrap() - 5.0).abs() < 1e-12);
        assert!((squared_euclidean(&a, &b).unwrap() - 25.0).abs() < 1e-12);
        assert!((manhattan(&a, &b).unwrap() - 7.0).abs() < 1e-12);
        assert!((chebyshev(&a, &b).unwrap() - 4.0).abs() < 1e-12);
        assert!((minkowski(&a, &b, 2.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((minkowski(&a, &b, 1.0).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn minkowski_validates_order() {
        assert!(minkowski(&[0.0], &[1.0], 0.5).is_err());
        assert!(minkowski(&[0.0], &[1.0], f64::NAN).is_err());
    }

    #[test]
    fn cosine_distance_cases() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!(cosine(&[1.0, 1.0], &[2.0, 2.0]).unwrap() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]).unwrap(), 1.0);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(euclidean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(cosine(&[1.0], &[1.0, 2.0]).is_err());
        assert!(manhattan(&[1.0], &[1.0, 2.0]).is_err());
        assert!(chebyshev(&[1.0], &[1.0, 2.0]).is_err());
    }
}
