//! # mogul-data
//!
//! Synthetic datasets and feature-space utilities for the Mogul workspace.
//!
//! The paper evaluates on four real image datasets (COIL-100, PubFig,
//! NUS-WIDE, INRIA/BIGANN) that are not available offline. Each generator in
//! this crate produces a synthetic stand-in that preserves the structural
//! property Manifold Ranking exploits — points lying on low-dimensional
//! manifolds whose clusters carry the ground-truth semantics — at a
//! configurable scale:
//!
//! * [`coil`] — objects × poses on closed 1-D manifolds (rings), like the
//!   COIL-100 turntable images.
//! * [`faces`] — many moderately overlapping, unbalanced Gaussian clusters in
//!   a low-dimensional attribute space, like the PubFig attribute vectors.
//! * [`web`] — noisy elongated manifold segments plus background clutter,
//!   like NUS-WIDE colour moments of web images.
//! * [`sift`] — hierarchically generated, quantized descriptor-like vectors,
//!   like the INRIA/BIGANN SIFT features.
//!
//! All generators are deterministic given a seed and return a [`Dataset`]
//! with ground-truth labels used for the retrieval-precision metric.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod coil;
pub mod dataset;
pub mod distance;
pub mod faces;
pub mod sift;
pub mod suite;
pub mod synth;
pub mod web;

pub use coil::{coil_like, CoilLikeConfig};
pub use dataset::Dataset;
pub use faces::{attribute_like, AttributeLikeConfig};
pub use sift::{sift_like, SiftLikeConfig};
pub use suite::{standard_suite, DatasetSpec, SuiteScale};
pub use web::{web_like, WebLikeConfig};

/// Errors produced by this crate (shared with the sparse substrate).
pub use mogul_sparse::error::{Result, SparseError as DataError};
