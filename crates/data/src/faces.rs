//! PubFig-like dataset: semantic attribute vectors of many people.
//!
//! PubFig represents 58,797 face images of 200 people with 73 semantic
//! attribute scores. The structural properties that matter for the paper's
//! experiments are (1) many classes, (2) heavily *unbalanced* class sizes
//! (images were scraped from the web), and (3) moderate-dimensional dense
//! features where classes overlap. The generator reproduces these with
//! Gaussian clusters whose sizes follow a Zipf-like distribution.

use crate::dataset::Dataset;
use crate::synth::normal_vector;
use crate::{DataError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the PubFig-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributeLikeConfig {
    /// Number of people (classes). PubFig has 200.
    pub num_people: usize,
    /// Total number of images across all people.
    pub num_points: usize,
    /// Attribute dimensionality. PubFig uses 73.
    pub dim: usize,
    /// Standard deviation of each person's attribute cluster.
    pub within_spread: f64,
    /// Spread of the cluster centres.
    pub between_spread: f64,
    /// Zipf exponent controlling how unbalanced the class sizes are
    /// (0 → balanced, 1 → strongly unbalanced).
    pub imbalance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AttributeLikeConfig {
    fn default() -> Self {
        AttributeLikeConfig {
            num_people: 40,
            num_points: 1200,
            dim: 73,
            within_spread: 0.35,
            between_spread: 1.0,
            imbalance: 0.8,
            seed: 58797,
        }
    }
}

/// Generate a PubFig-like attribute dataset. The label of each point is the
/// person id.
pub fn attribute_like(config: &AttributeLikeConfig) -> Result<Dataset> {
    if config.num_people == 0 || config.num_points == 0 {
        return Err(DataError::InvalidInput(
            "attribute-like generator needs at least one person and one point".into(),
        ));
    }
    if config.num_points < config.num_people {
        return Err(DataError::InvalidInput(format!(
            "cannot spread {} points over {} people (need at least one each)",
            config.num_points, config.num_people
        )));
    }
    if config.dim == 0 {
        return Err(DataError::InvalidInput("dim must be positive".into()));
    }
    if config.within_spread < 0.0 || config.between_spread < 0.0 || config.imbalance < 0.0 {
        return Err(DataError::InvalidInput(
            "spreads and imbalance must be non-negative".into(),
        ));
    }

    // Zipf-like class sizes: weight of class c ∝ 1 / (c+1)^imbalance.
    let weights: Vec<f64> = (0..config.num_people)
        .map(|c| 1.0 / ((c + 1) as f64).powf(config.imbalance))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total_weight) * config.num_points as f64).floor() as usize)
        .collect();
    // Everyone gets at least one image; distribute the remainder round-robin.
    for s in sizes.iter_mut() {
        if *s == 0 {
            *s = 1;
        }
    }
    let mut assigned: usize = sizes.iter().sum();
    let mut c = 0usize;
    while assigned < config.num_points {
        sizes[c % config.num_people] += 1;
        assigned += 1;
        c += 1;
    }
    while assigned > config.num_points {
        // Trim from the largest classes (never below one image).
        let (idx, _) = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .expect("at least one class");
        if sizes[idx] > 1 {
            sizes[idx] -= 1;
            assigned -= 1;
        } else {
            break;
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut features = Vec::with_capacity(config.num_points);
    let mut labels = Vec::with_capacity(config.num_points);
    for (person, &size) in sizes.iter().enumerate() {
        // Attribute profile of this person: values roughly in [-1, 1].
        let center: Vec<f64> = (0..config.dim)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * config.between_spread)
            .collect();
        for _ in 0..size {
            let noise = normal_vector(&mut rng, config.dim, config.within_spread);
            let point: Vec<f64> = center
                .iter()
                .zip(noise.iter())
                .map(|(c, n)| c + n)
                .collect();
            features.push(point);
            labels.push(person);
        }
    }
    Dataset::new(
        format!("attribute-like({} people)", config.num_people),
        features,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_class_coverage() {
        let config = AttributeLikeConfig {
            num_people: 10,
            num_points: 200,
            ..Default::default()
        };
        let d = attribute_like(&config).unwrap();
        assert_eq!(d.len(), 200);
        assert_eq!(d.dim(), 73);
        assert_eq!(d.num_classes(), 10);
        assert!(d.class_sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn class_sizes_are_unbalanced() {
        let config = AttributeLikeConfig {
            num_people: 10,
            num_points: 500,
            imbalance: 1.0,
            ..Default::default()
        };
        let d = attribute_like(&config).unwrap();
        let sizes = d.class_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max >= 3 * min, "expected unbalanced sizes, got {sizes:?}");
    }

    #[test]
    fn balanced_when_imbalance_is_zero() {
        let config = AttributeLikeConfig {
            num_people: 8,
            num_points: 160,
            imbalance: 0.0,
            ..Default::default()
        };
        let d = attribute_like(&config).unwrap();
        let sizes = d.class_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "expected balanced sizes, got {sizes:?}");
    }

    #[test]
    fn deterministic_and_validated() {
        let config = AttributeLikeConfig::default();
        assert_eq!(
            attribute_like(&config).unwrap(),
            attribute_like(&config).unwrap()
        );
        assert!(attribute_like(&AttributeLikeConfig {
            num_people: 0,
            ..Default::default()
        })
        .is_err());
        assert!(attribute_like(&AttributeLikeConfig {
            num_points: 5,
            num_people: 10,
            ..Default::default()
        })
        .is_err());
        assert!(attribute_like(&AttributeLikeConfig {
            dim: 0,
            ..Default::default()
        })
        .is_err());
    }
}
