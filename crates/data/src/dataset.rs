//! The labelled feature-vector dataset type shared by all generators.

use crate::{DataError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Held-out query points returned by [`Dataset::split_out_queries`], each as
/// a `(feature vector, ground-truth label)` pair.
pub type HeldOutQueries = Vec<(Vec<f64>, usize)>;

/// A labelled dataset of dense feature vectors.
///
/// `labels[i]` is the ground-truth class of point `i` (e.g. the COIL object
/// id); it is what the paper's *retrieval precision* metric is measured
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Create a dataset, validating shape consistency and finiteness.
    pub fn new(
        name: impl Into<String>,
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
    ) -> Result<Self> {
        if features.len() != labels.len() {
            return Err(DataError::InvalidInput(format!(
                "{} features but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let dim = features.first().map_or(0, |f| f.len());
        for (i, f) in features.iter().enumerate() {
            if f.len() != dim {
                return Err(DataError::InvalidInput(format!(
                    "feature {i} has dimension {} but expected {dim}",
                    f.len()
                )));
            }
            if !f.iter().all(|v| v.is_finite()) {
                return Err(DataError::InvalidInput(format!(
                    "feature {i} contains non-finite values"
                )));
            }
        }
        Ok(Dataset {
            name: name.into(),
            features,
            labels,
        })
    }

    /// Dataset name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` when the dataset holds no points.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, |f| f.len())
    }

    /// All feature vectors.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// All ground-truth labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature vector of point `i`.
    pub fn feature(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Ground-truth label of point `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Number of distinct labels.
    pub fn num_classes(&self) -> usize {
        let mut labels: Vec<usize> = self.labels.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    /// Number of points carrying each label (indexed by label value).
    pub fn class_sizes(&self) -> Vec<usize> {
        let max = self.labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut sizes = vec![0usize; max];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Split the dataset into an in-database part and `num_queries` held-out
    /// points used as out-of-sample queries (Section 4.6.2 of the paper).
    ///
    /// The held-out points are sampled uniformly at random (deterministically
    /// from `seed`) and returned together with their ground-truth labels.
    pub fn split_out_queries(
        &self,
        num_queries: usize,
        seed: u64,
    ) -> Result<(Dataset, HeldOutQueries)> {
        if num_queries >= self.len() {
            return Err(DataError::InvalidInput(format!(
                "cannot hold out {num_queries} queries from {} points",
                self.len()
            )));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(&mut rng);
        let held: std::collections::HashSet<usize> =
            indices[..num_queries].iter().copied().collect();

        let mut db_features = Vec::with_capacity(self.len() - num_queries);
        let mut db_labels = Vec::with_capacity(self.len() - num_queries);
        let mut queries = Vec::with_capacity(num_queries);
        for i in 0..self.len() {
            if held.contains(&i) {
                queries.push((self.features[i].clone(), self.labels[i]));
            } else {
                db_features.push(self.features[i].clone());
                db_labels.push(self.labels[i]);
            }
        }
        let db = Dataset::new(format!("{}-db", self.name), db_features, db_labels)?;
        Ok((db, queries))
    }

    /// Indices of all points sharing the label of point `query`.
    pub fn same_class_indices(&self, query: usize) -> Vec<usize> {
        let target = self.labels[query];
        (0..self.len())
            .filter(|&i| self.labels[i] == target)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                vec![0.0, 0.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![5.0, 5.0],
            ],
            vec![0, 0, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.name(), "toy");
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.class_sizes(), vec![2, 2]);
        assert_eq!(d.same_class_indices(0), vec![0, 1]);
        assert_eq!(d.feature(3), &[5.0, 5.0]);
    }

    #[test]
    fn validation() {
        assert!(Dataset::new("bad", vec![vec![1.0]], vec![0, 1]).is_err());
        assert!(Dataset::new("bad", vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]).is_err());
        assert!(Dataset::new("bad", vec![vec![f64::INFINITY]], vec![0]).is_err());
        assert!(Dataset::new("empty", vec![], vec![]).is_ok());
    }

    #[test]
    fn out_of_sample_split() {
        let d = toy();
        let (db, queries) = d.split_out_queries(1, 3).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].0.len(), 2);
        // Deterministic for a fixed seed.
        let (db2, queries2) = d.split_out_queries(1, 3).unwrap();
        assert_eq!(db, db2);
        assert_eq!(queries, queries2);
        // Too many queries rejected.
        assert!(d.split_out_queries(4, 0).is_err());
    }
}
