//! Low-level synthetic-geometry helpers shared by the dataset generators.
//!
//! All generators are deterministic given their seed; randomness comes from
//! `rand`'s `StdRng`, and Gaussian samples are produced with the Box–Muller
//! transform so no extra distribution crate is needed.

use rand::Rng;

/// Draw one standard-normal sample using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid log(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a vector with i.i.d. normal samples of the given standard deviation.
pub fn normal_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize, std_dev: f64) -> Vec<f64> {
    (0..dim).map(|_| standard_normal(rng) * std_dev).collect()
}

/// A random unit vector in `dim` dimensions.
pub fn random_unit_vector<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> Vec<f64> {
    loop {
        let mut v = normal_vector(rng, dim, 1.0);
        let norm = mogul_sparse::vector::norm2(&v);
        if norm > 1e-9 {
            for x in v.iter_mut() {
                *x /= norm;
            }
            return v;
        }
    }
}

/// A pair of orthonormal vectors spanning a random 2-D plane in `dim`
/// dimensions (`dim ≥ 2`).
pub fn random_orthonormal_pair<R: Rng + ?Sized>(rng: &mut R, dim: usize) -> (Vec<f64>, Vec<f64>) {
    let u = random_unit_vector(rng, dim);
    loop {
        let mut v = random_unit_vector(rng, dim);
        // Gram-Schmidt against u.
        let proj = mogul_sparse::vector::dot_unchecked(&u, &v);
        for (vi, ui) in v.iter_mut().zip(u.iter()) {
            *vi -= proj * ui;
        }
        let norm = mogul_sparse::vector::norm2(&v);
        if norm > 1e-6 {
            for x in v.iter_mut() {
                *x /= norm;
            }
            return (u, v);
        }
    }
}

/// `a + b` elementwise (panics on length mismatch; internal helper).
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// A point on a circle of radius `radius` in the plane spanned by `(u, v)`
/// centred at `center`, at angle `theta`, with additive Gaussian noise.
pub fn ring_point<R: Rng + ?Sized>(
    rng: &mut R,
    center: &[f64],
    u: &[f64],
    v: &[f64],
    radius: f64,
    theta: f64,
    noise: f64,
) -> Vec<f64> {
    let mut point = Vec::with_capacity(center.len());
    let (sin, cos) = theta.sin_cos();
    for i in 0..center.len() {
        let coord = center[i] + radius * (cos * u[i] + sin * v[i]) + standard_normal(rng) * noise;
        point.push(coord);
    }
    point
}

/// A point on a straight 1-D segment from `start` along `direction`
/// (unit vector) at arclength position `t`, with additive Gaussian noise.
pub fn segment_point<R: Rng + ?Sized>(
    rng: &mut R,
    start: &[f64],
    direction: &[f64],
    t: f64,
    noise: f64,
) -> Vec<f64> {
    start
        .iter()
        .zip(direction.iter())
        .map(|(s, d)| s + t * d + standard_normal(rng) * noise)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_samples_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn unit_vectors_are_unit_and_orthogonal() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = random_unit_vector(&mut rng, 10);
        assert!((mogul_sparse::vector::norm2(&u) - 1.0).abs() < 1e-9);
        let (a, b) = random_orthonormal_pair(&mut rng, 10);
        assert!((mogul_sparse::vector::norm2(&a) - 1.0).abs() < 1e-9);
        assert!((mogul_sparse::vector::norm2(&b) - 1.0).abs() < 1e-9);
        assert!(mogul_sparse::vector::dot_unchecked(&a, &b).abs() < 1e-9);
    }

    #[test]
    fn ring_points_lie_near_the_circle() {
        let mut rng = StdRng::seed_from_u64(3);
        let center = vec![0.0; 6];
        let (u, v) = random_orthonormal_pair(&mut rng, 6);
        let p = ring_point(&mut rng, &center, &u, &v, 2.0, 1.3, 0.0);
        let radius = mogul_sparse::vector::norm2(&p);
        assert!((radius - 2.0).abs() < 1e-9);
    }

    #[test]
    fn segment_points_advance_along_direction() {
        let mut rng = StdRng::seed_from_u64(4);
        let start = vec![1.0, 1.0, 1.0];
        let dir = vec![1.0, 0.0, 0.0];
        let p = segment_point(&mut rng, &start, &dir, 5.0, 0.0);
        assert!((p[0] - 6.0).abs() < 1e-12);
        assert!((p[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn add_helper() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
    }
}
