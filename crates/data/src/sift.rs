//! INRIA/BIGANN-like dataset: quantized local-descriptor vectors.
//!
//! The INRIA dataset used in the paper holds 1,000,000 128-D SIFT
//! descriptors. SIFT features are non-negative, quantized (integer bin
//! counts), sparse-ish, and organized hierarchically: descriptors extracted
//! from visually similar patches form tight cells inside coarser visual-word
//! regions. The generator reproduces that regime: coarse "visual word"
//! centres, finer cells inside each word, and integer-quantized non-negative
//! features. Labels correspond to the coarse visual word — the level at which
//! a retrieval system would consider two patches semantically equivalent.

use crate::dataset::Dataset;
use crate::synth::normal_vector;
use crate::{DataError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the SIFT-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftLikeConfig {
    /// Total number of descriptors.
    pub num_points: usize,
    /// Descriptor dimensionality (SIFT uses 128).
    pub dim: usize,
    /// Number of coarse visual words (ground-truth classes).
    pub num_words: usize,
    /// Number of finer cells inside each word.
    pub cells_per_word: usize,
    /// Standard deviation of descriptors around their cell centre (before
    /// quantization).
    pub cell_spread: f64,
    /// Standard deviation of cell centres around their word centre.
    pub word_spread: f64,
    /// Maximum feature magnitude used for quantization (SIFT uses 255).
    pub max_value: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SiftLikeConfig {
    fn default() -> Self {
        SiftLikeConfig {
            num_points: 4000,
            dim: 128,
            num_words: 40,
            cells_per_word: 4,
            cell_spread: 6.0,
            word_spread: 20.0,
            max_value: 255.0,
            seed: 1_000_000,
        }
    }
}

/// Generate an INRIA-like SIFT descriptor dataset. Labels are coarse visual
/// word ids.
pub fn sift_like(config: &SiftLikeConfig) -> Result<Dataset> {
    if config.num_points == 0 || config.num_words == 0 || config.cells_per_word == 0 {
        return Err(DataError::InvalidInput(
            "sift-like generator needs points, words and cells".into(),
        ));
    }
    if config.dim == 0 {
        return Err(DataError::InvalidInput("dim must be positive".into()));
    }
    if config.num_points < config.num_words {
        return Err(DataError::InvalidInput(format!(
            "cannot spread {} points over {} visual words",
            config.num_points, config.num_words
        )));
    }
    if config.cell_spread < 0.0 || config.word_spread < 0.0 || config.max_value <= 0.0 {
        return Err(DataError::InvalidInput(
            "spreads must be non-negative and max_value positive".into(),
        ));
    }

    let mut rng = StdRng::seed_from_u64(config.seed);

    // Word centres spread across the non-negative orthant.
    let word_centers: Vec<Vec<f64>> = (0..config.num_words)
        .map(|_| {
            (0..config.dim)
                .map(|_| rng.gen::<f64>() * config.max_value * 0.5)
                .collect()
        })
        .collect();
    // Cell centres around each word centre.
    let cell_centers: Vec<Vec<Vec<f64>>> = word_centers
        .iter()
        .map(|wc| {
            (0..config.cells_per_word)
                .map(|_| {
                    let offset = normal_vector(&mut rng, config.dim, config.word_spread);
                    wc.iter().zip(offset.iter()).map(|(c, o)| c + o).collect()
                })
                .collect()
        })
        .collect();

    let per_word = config.num_points / config.num_words;
    let mut remainder = config.num_points % config.num_words;
    let mut features = Vec::with_capacity(config.num_points);
    let mut labels = Vec::with_capacity(config.num_points);
    for word in 0..config.num_words {
        let count = per_word + usize::from(remainder > 0);
        remainder = remainder.saturating_sub(1);
        for i in 0..count {
            let cell = i % config.cells_per_word;
            let noise = normal_vector(&mut rng, config.dim, config.cell_spread);
            let point: Vec<f64> = cell_centers[word][cell]
                .iter()
                .zip(noise.iter())
                // Quantize to integers in [0, max_value] like real SIFT bins.
                .map(|(c, n)| (c + n).clamp(0.0, config.max_value).round())
                .collect();
            features.push(point);
            labels.push(word);
        }
    }
    Dataset::new(
        format!("sift-like({} words)", config.num_words),
        features,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_quantization_and_labels() {
        let config = SiftLikeConfig {
            num_points: 500,
            num_words: 10,
            dim: 32,
            ..Default::default()
        };
        let d = sift_like(&config).unwrap();
        assert_eq!(d.len(), 500);
        assert_eq!(d.dim(), 32);
        assert_eq!(d.num_classes(), 10);
        // All coordinates are quantized non-negative integers within range.
        for f in d.features() {
            for &v in f {
                assert!(v >= 0.0 && v <= config.max_value);
                assert_eq!(v, v.round());
            }
        }
    }

    #[test]
    fn points_cluster_by_visual_word() {
        let config = SiftLikeConfig {
            num_points: 200,
            num_words: 4,
            dim: 16,
            cell_spread: 1.0,
            word_spread: 2.0,
            ..Default::default()
        };
        let d = sift_like(&config).unwrap();
        // Average within-word distance must be smaller than cross-word distance.
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in (0..d.len()).step_by(7) {
            for j in (0..d.len()).step_by(11) {
                if i == j {
                    continue;
                }
                let dist = crate::distance::euclidean(d.feature(i), d.feature(j)).unwrap();
                if d.label(i) == d.label(j) {
                    within.0 += dist;
                    within.1 += 1;
                } else {
                    across.0 += dist;
                    across.1 += 1;
                }
            }
        }
        let within_avg = within.0 / within.1.max(1) as f64;
        let across_avg = across.0 / across.1.max(1) as f64;
        assert!(within_avg < across_avg);
    }

    #[test]
    fn validation_and_determinism() {
        assert!(sift_like(&SiftLikeConfig {
            num_points: 0,
            ..Default::default()
        })
        .is_err());
        assert!(sift_like(&SiftLikeConfig {
            num_points: 5,
            num_words: 10,
            ..Default::default()
        })
        .is_err());
        assert!(sift_like(&SiftLikeConfig {
            max_value: 0.0,
            ..Default::default()
        })
        .is_err());
        let config = SiftLikeConfig {
            num_points: 100,
            num_words: 5,
            dim: 8,
            ..Default::default()
        };
        assert_eq!(sift_like(&config).unwrap(), sift_like(&config).unwrap());
    }
}
