//! COIL-100-like dataset: objects photographed across a full turntable
//! rotation.
//!
//! COIL-100 contains 100 objects × 72 poses (5° apart); the pose sweep of
//! each object traces a closed one-dimensional manifold in feature space.
//! The generator reproduces that structure: each object is a ring (a circle
//! embedded in a random 2-D plane of the feature space) sampled at uniform
//! pose angles with additive noise, and different objects get different ring
//! centres. Nearby poses of the same object are nearest neighbours; rings of
//! different objects may pass close to each other in the ambient space —
//! exactly the "blue triangle vs. blue square" situation that makes Manifold
//! Ranking outperform plain k-NN retrieval.

use crate::dataset::Dataset;
use crate::synth::{random_orthonormal_pair, ring_point};
use crate::{DataError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the COIL-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoilLikeConfig {
    /// Number of objects (COIL-100 has 100).
    pub num_objects: usize,
    /// Poses per object (COIL-100 has 72).
    pub poses_per_object: usize,
    /// Feature dimensionality (COIL-100 RGB pixels give 3,048; any value ≥ 2
    /// preserves the manifold structure).
    pub dim: usize,
    /// Ring radius (pose-manifold extent).
    pub ring_radius: f64,
    /// Spread of the ring centres; small values make objects overlap more in
    /// the ambient space.
    pub center_spread: f64,
    /// Additive Gaussian noise on every coordinate.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoilLikeConfig {
    fn default() -> Self {
        CoilLikeConfig {
            num_objects: 20,
            poses_per_object: 36,
            dim: 32,
            ring_radius: 1.0,
            center_spread: 2.0,
            noise: 0.02,
            seed: 20141231,
        }
    }
}

impl CoilLikeConfig {
    /// Total number of points the configuration generates.
    pub fn num_points(&self) -> usize {
        self.num_objects * self.poses_per_object
    }
}

/// Generate a COIL-100-like dataset. The label of each point is its object id.
pub fn coil_like(config: &CoilLikeConfig) -> Result<Dataset> {
    if config.num_objects == 0 || config.poses_per_object == 0 {
        return Err(DataError::InvalidInput(
            "COIL-like generator needs at least one object and one pose".into(),
        ));
    }
    if config.dim < 2 {
        return Err(DataError::InvalidInput(
            "COIL-like generator needs at least two feature dimensions".into(),
        ));
    }
    if config.ring_radius <= 0.0 || config.noise < 0.0 || config.center_spread < 0.0 {
        return Err(DataError::InvalidInput(
            "ring_radius must be positive; noise and center_spread must be non-negative".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut features = Vec::with_capacity(config.num_points());
    let mut labels = Vec::with_capacity(config.num_points());

    for object in 0..config.num_objects {
        // Random centre and a random 2-D pose plane for this object.
        let center: Vec<f64> = (0..config.dim)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * config.center_spread)
            .collect();
        let (u, v) = random_orthonormal_pair(&mut rng, config.dim);
        for pose in 0..config.poses_per_object {
            let theta = 2.0 * std::f64::consts::PI * pose as f64 / config.poses_per_object as f64;
            let point = ring_point(
                &mut rng,
                &center,
                &u,
                &v,
                config.ring_radius,
                theta,
                config.noise,
            );
            features.push(point);
            labels.push(object);
        }
    }
    Dataset::new(
        format!(
            "coil-like({}x{})",
            config.num_objects, config.poses_per_object
        ),
        features,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::euclidean;

    #[test]
    fn shape_and_labels() {
        let config = CoilLikeConfig {
            num_objects: 5,
            poses_per_object: 12,
            ..Default::default()
        };
        let d = coil_like(&config).unwrap();
        assert_eq!(d.len(), 60);
        assert_eq!(d.dim(), config.dim);
        assert_eq!(d.num_classes(), 5);
        assert_eq!(d.class_sizes(), vec![12; 5]);
    }

    #[test]
    fn adjacent_poses_are_closer_than_opposite_poses() {
        let config = CoilLikeConfig {
            num_objects: 3,
            poses_per_object: 24,
            noise: 0.0,
            ..Default::default()
        };
        let d = coil_like(&config).unwrap();
        // Points 0 and 1 are adjacent poses of object 0; 0 and 12 are opposite.
        let near = euclidean(d.feature(0), d.feature(1)).unwrap();
        let far = euclidean(d.feature(0), d.feature(12)).unwrap();
        assert!(near < far);
        assert!((far - 2.0 * config.ring_radius).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let config = CoilLikeConfig::default();
        assert_eq!(coil_like(&config).unwrap(), coil_like(&config).unwrap());
        let other = CoilLikeConfig { seed: 1, ..config };
        assert_ne!(coil_like(&config).unwrap(), coil_like(&other).unwrap());
    }

    #[test]
    fn validation() {
        let bad = CoilLikeConfig {
            num_objects: 0,
            ..Default::default()
        };
        assert!(coil_like(&bad).is_err());
        let bad = CoilLikeConfig {
            dim: 1,
            ..Default::default()
        };
        assert!(coil_like(&bad).is_err());
        let bad = CoilLikeConfig {
            ring_radius: 0.0,
            ..Default::default()
        };
        assert!(coil_like(&bad).is_err());
    }
}
