//! Property-based tests of the synthetic dataset generators: every generated
//! dataset must be structurally valid (finite features, consistent labels)
//! and must exhibit the manifold/cluster structure the substitution argument
//! in DESIGN.md relies on (same-class points are closer on average than
//! different-class points).

use mogul_data::coil::{coil_like, CoilLikeConfig};
use mogul_data::distance::euclidean;
use mogul_data::faces::{attribute_like, AttributeLikeConfig};
use mogul_data::sift::{sift_like, SiftLikeConfig};
use mogul_data::web::{web_like, WebLikeConfig};
use mogul_data::Dataset;
use proptest::prelude::*;

/// Average within-class and across-class pairwise distances over a subsample.
fn class_distance_ratio(data: &Dataset) -> (f64, f64) {
    let mut within = (0.0, 0usize);
    let mut across = (0.0, 0usize);
    let step = (data.len() / 40).max(1);
    for i in (0..data.len()).step_by(step) {
        for j in (0..data.len()).step_by(step) {
            if i == j {
                continue;
            }
            let d = euclidean(data.feature(i), data.feature(j)).unwrap();
            if data.label(i) == data.label(j) {
                within.0 += d;
                within.1 += 1;
            } else {
                across.0 += d;
                across.1 += 1;
            }
        }
    }
    (
        within.0 / within.1.max(1) as f64,
        across.0 / across.1.max(1) as f64,
    )
}

fn check_validity(data: &Dataset, expected_len: usize) {
    assert_eq!(data.len(), expected_len);
    assert!(data
        .features()
        .iter()
        .all(|f| f.iter().all(|v| v.is_finite())));
    assert_eq!(data.labels().len(), data.len());
    assert!(data.num_classes() >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn coil_like_generates_valid_manifolds(
        objects in 2usize..10,
        poses in 6usize..30,
        dim in 2usize..24,
        seed in 0u64..1000,
    ) {
        let data = coil_like(&CoilLikeConfig {
            num_objects: objects,
            poses_per_object: poses,
            dim,
            seed,
            ..Default::default()
        }).unwrap();
        check_validity(&data, objects * poses);
        prop_assert_eq!(data.num_classes(), objects);
        prop_assert_eq!(data.dim(), dim);
        if objects >= 3 {
            let (within, across) = class_distance_ratio(&data);
            prop_assert!(within < across, "within {within} should be < across {across}");
        }
    }

    #[test]
    fn attribute_like_generates_valid_clusters(
        people in 2usize..12,
        points in 40usize..200,
        seed in 0u64..1000,
    ) {
        let data = attribute_like(&AttributeLikeConfig {
            num_people: people,
            num_points: points.max(people),
            dim: 16,
            seed,
            ..Default::default()
        }).unwrap();
        check_validity(&data, points.max(people));
        prop_assert_eq!(data.num_classes(), people);
        prop_assert!(data.class_sizes().iter().all(|&s| s >= 1));
        let (within, across) = class_distance_ratio(&data);
        prop_assert!(within < across);
    }

    #[test]
    fn web_like_generates_valid_topics(
        points in 60usize..300,
        topics in 2usize..8,
        background in 0u32..30,
        seed in 0u64..1000,
    ) {
        let data = web_like(&WebLikeConfig {
            num_points: points,
            num_topics: topics,
            dim: 12,
            background_fraction: f64::from(background) / 100.0,
            seed,
            ..Default::default()
        }).unwrap();
        check_validity(&data, points);
        // Topics plus possibly one background class.
        prop_assert!(data.num_classes() >= topics);
        prop_assert!(data.num_classes() <= topics + 1);
    }

    #[test]
    fn sift_like_generates_valid_descriptors(
        points in 50usize..300,
        words in 2usize..10,
        seed in 0u64..1000,
    ) {
        let config = SiftLikeConfig {
            num_points: points.max(words),
            num_words: words,
            dim: 16,
            seed,
            ..Default::default()
        };
        let data = sift_like(&config).unwrap();
        check_validity(&data, points.max(words));
        prop_assert_eq!(data.num_classes(), words);
        for f in data.features() {
            for &v in f {
                prop_assert!(v >= 0.0 && v <= config.max_value);
                prop_assert_eq!(v, v.round());
            }
        }
    }

    /// Held-out splits partition the dataset: sizes add up and every held-out
    /// feature/label pair comes from the original dataset.
    #[test]
    fn split_out_queries_partitions_the_dataset(
        objects in 2usize..6,
        poses in 8usize..20,
        holdout in 1usize..10,
        seed in 0u64..1000,
    ) {
        let data = coil_like(&CoilLikeConfig {
            num_objects: objects,
            poses_per_object: poses,
            dim: 8,
            seed,
            ..Default::default()
        }).unwrap();
        let holdout = holdout.min(data.len() - 1);
        let (db, queries) = data.split_out_queries(holdout, seed).unwrap();
        prop_assert_eq!(db.len() + queries.len(), data.len());
        prop_assert_eq!(queries.len(), holdout);
        for (feature, label) in &queries {
            prop_assert!(*label < objects);
            prop_assert_eq!(feature.len(), data.dim());
        }
    }
}
