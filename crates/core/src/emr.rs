//! The EMR baseline (Xu et al. \[21\]): anchor-graph Manifold Ranking.
//!
//! EMR represents every data point as a convex combination of `d ≪ n` anchor
//! points (selected by k-means) with Nadaraya–Watson weights under the
//! Epanechnikov kernel. The anchor graph yields a rank-`d` factorization of
//! the normalized adjacency, `S ≈ H Hᵀ`, so the ranking scores follow from
//! the Woodbury identity in `O(n d + d³)` time. The number of anchors trades
//! speed against accuracy — the tension Figures 2–4 of the paper explore.
//!
//! With row-normalized weights the anchor-graph degree matrix is the
//! identity, so `H = Z Λ^{-1/2}` with `Λ = diag(Zᵀ 1)`.

use crate::params::MrParams;
use crate::ranking::{check_k, check_query, Ranker, TopKResult};
use crate::topk::{f64_sort_key, BoundedTopK, Entry};
use crate::{CoreError, Result};
use mogul_graph::clustering::kmeans::{kmeans, KmeansConfig};
use mogul_sparse::woodbury::woodbury_solve_csr;
use mogul_sparse::{CooMatrix, CsrMatrix};

/// Configuration of the EMR baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmrConfig {
    /// Number of anchor points `d` (the paper sweeps 10–1000).
    pub num_anchors: usize,
    /// Number of nearest anchors each point is attached to (`s`, usually 5).
    pub anchor_neighbors: usize,
    /// Seed for the k-means anchor selection.
    pub seed: u64,
    /// Maximum k-means iterations for anchor selection.
    pub kmeans_max_iter: usize,
}

impl Default for EmrConfig {
    fn default() -> Self {
        EmrConfig {
            num_anchors: 10,
            anchor_neighbors: 5,
            seed: 42,
            kmeans_max_iter: 30,
        }
    }
}

impl EmrConfig {
    /// Convenience constructor fixing only the anchor count.
    pub fn with_anchors(num_anchors: usize) -> Self {
        EmrConfig {
            num_anchors,
            ..EmrConfig::default()
        }
    }
}

/// Anchor-graph Manifold Ranking solver.
#[derive(Debug, Clone)]
pub struct EmrSolver {
    params: MrParams,
    /// Anchor coordinates (`d × dim`).
    anchors: Vec<Vec<f64>>,
    /// Column sums of the weight matrix `Z` (anchor "degrees").
    lambda: Vec<f64>,
    /// The factor `H = Z Λ^{-1/2}` with `S ≈ H Hᵀ`.
    h: CsrMatrix,
    /// Number of nearest anchors each point (and each out-of-sample query)
    /// is attached to.
    anchor_neighbors: usize,
    n: usize,
}

/// Epanechnikov kernel `K(t) = ¾ (1 − t²)` for `|t| < 1`, else 0.
fn epanechnikov(t: f64) -> f64 {
    if t.abs() < 1.0 {
        0.75 * (1.0 - t * t)
    } else {
        0.0
    }
}

/// Nadaraya–Watson weights of one point to its `s` nearest anchors.
/// Returns `(anchor index, weight)` pairs with weights summing to 1.
///
/// Only the `s + 1` nearest anchors are ever needed (the extra one sets the
/// kernel bandwidth), so the scan runs through the shared bounded top-k
/// collector — `O(d log s)` instead of a full `O(d log d)` sort, with ties
/// pinned to the lower anchor index as before.
fn anchor_weights(feature: &[f64], anchors: &[Vec<f64>], s: usize) -> Vec<(usize, f64)> {
    let s = s.min(anchors.len()).max(1);
    let mut nearest = BoundedTopK::new((s + 1).min(anchors.len()));
    for (a, anchor) in anchors.iter().enumerate() {
        let d = mogul_sparse::vector::squared_euclidean_unchecked(feature, anchor).sqrt();
        nearest.offer(Entry {
            key: (f64_sort_key(d), a),
            value: d,
        });
    }
    let dists = nearest.into_sorted_vec();
    // Bandwidth: distance to the (s+1)-th nearest anchor (or slightly beyond
    // the s-th when there is no further anchor), so the s kept anchors all
    // fall inside the kernel support.
    let bandwidth = if dists.len() > s {
        dists[s].value
    } else {
        dists[s - 1].value * 1.0001 + 1e-12
    }
    .max(1e-12);
    let mut weights: Vec<(usize, f64)> = dists[..s]
        .iter()
        .map(|e| (e.key.1, epanechnikov(e.value / bandwidth)))
        .collect();
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    if total <= 1e-300 {
        // Degenerate case (all anchors at the same spot): uniform weights.
        let uniform = 1.0 / s as f64;
        for w in weights.iter_mut() {
            w.1 = uniform;
        }
    } else {
        for w in weights.iter_mut() {
            w.1 /= total;
        }
    }
    weights.retain(|&(_, w)| w > 0.0);
    weights.sort_by_key(|&(a, _)| a);
    weights
}

impl EmrSolver {
    /// Build the anchor graph from the raw feature vectors.
    pub fn new(features: &[Vec<f64>], params: MrParams, config: EmrConfig) -> Result<Self> {
        if features.is_empty() {
            return Err(CoreError::InvalidInput(
                "EMR requires at least one data point".into(),
            ));
        }
        if config.num_anchors == 0 {
            return Err(CoreError::InvalidInput(
                "EMR requires at least one anchor point".into(),
            ));
        }
        let n = features.len();
        // Anchor selection by k-means, as in the EMR paper.
        let km = kmeans(
            features,
            &KmeansConfig {
                k: config.num_anchors.min(n),
                max_iter: config.kmeans_max_iter,
                tol: 1e-5,
                seed: config.seed,
            },
        )?;
        let anchors = km.centroids;

        // Weight matrix Z (n × d), each row sums to 1.
        let d = anchors.len();
        let mut z_coo = CooMatrix::with_capacity(n, d, n * config.anchor_neighbors.max(1));
        let mut lambda = vec![0.0; d];
        for (i, feature) in features.iter().enumerate() {
            for (a, w) in anchor_weights(feature, &anchors, config.anchor_neighbors) {
                z_coo.push(i, a, w)?;
                lambda[a] += w;
            }
        }
        let z = z_coo.to_csr();
        // H = Z Λ^{-1/2}; unused anchors (λ = 0) simply keep empty columns.
        let lambda_inv_sqrt: Vec<f64> = lambda
            .iter()
            .map(|&l| if l > 1e-300 { 1.0 / l.sqrt() } else { 0.0 })
            .collect();
        let ones = vec![1.0; n];
        let h = z.scale_rows_cols(&ones, &lambda_inv_sqrt)?;

        Ok(EmrSolver {
            params,
            anchors,
            lambda,
            h,
            anchor_neighbors: config.anchor_neighbors.max(1),
            n,
        })
    }

    /// Number of anchors actually in use.
    pub fn num_anchors(&self) -> usize {
        self.anchors.len()
    }

    /// Borrow the full solver state for the persistence writer (see
    /// `crate::persist`): `(params, anchors, lambda, h, anchor_neighbors, n)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn persist_parts(
        &self,
    ) -> (MrParams, &[Vec<f64>], &[f64], &CsrMatrix, usize, usize) {
        (
            self.params,
            &self.anchors,
            &self.lambda,
            &self.h,
            self.anchor_neighbors,
            self.n,
        )
    }

    /// Reassemble a solver from persisted parts (the loader of
    /// `crate::persist`), re-validating the shape invariants `EmrSolver::new`
    /// guarantees.
    pub(crate) fn from_persist_parts(
        params: MrParams,
        anchors: Vec<Vec<f64>>,
        lambda: Vec<f64>,
        h: CsrMatrix,
        anchor_neighbors: usize,
        n: usize,
    ) -> Result<Self> {
        if anchors.is_empty() {
            return Err(CoreError::InvalidInput(
                "persisted EMR state has no anchors".into(),
            ));
        }
        let dim = anchors[0].len();
        if anchors.iter().any(|a| a.len() != dim) {
            return Err(CoreError::InvalidInput(
                "persisted EMR anchors have inconsistent dimensions".into(),
            ));
        }
        if lambda.len() != anchors.len() || h.ncols() != anchors.len() || h.nrows() != n {
            return Err(CoreError::InvalidInput(format!(
                "persisted EMR shapes disagree: {} anchors, {} degrees, H is {}x{}, n = {n}",
                anchors.len(),
                lambda.len(),
                h.nrows(),
                h.ncols()
            )));
        }
        if anchor_neighbors == 0 {
            return Err(CoreError::InvalidInput(
                "persisted EMR anchor-neighbour count must be at least 1".into(),
            ));
        }
        Ok(EmrSolver {
            params,
            anchors,
            lambda,
            h,
            anchor_neighbors,
            n,
        })
    }

    /// The anchor coordinates.
    pub fn anchors(&self) -> &[Vec<f64>] {
        &self.anchors
    }

    /// Ranking scores for a query that is **not** part of the database
    /// (out-of-sample query, Section 5.2.3 of the paper).
    ///
    /// EMR handles out-of-sample queries by dynamically extending the anchor
    /// graph with the query point and re-running the `O(n d + d³)` solve.
    /// The returned vector holds the scores of the `n` database points.
    pub fn scores_for_feature(&self, feature: &[f64]) -> Result<Vec<f64>> {
        if self.anchors.is_empty() {
            return Err(CoreError::InvalidInput("EMR has no anchors".into()));
        }
        if feature.len() != self.anchors[0].len() {
            return Err(CoreError::DimensionMismatch {
                op: "EMR out-of-sample query",
                left: (1, self.anchors[0].len()),
                right: (1, feature.len()),
            });
        }
        // Weights of the new point and the updated anchor degrees.
        let new_weights = anchor_weights(feature, &self.anchors, self.anchor_neighbors);
        let mut lambda = self.lambda.clone();
        for &(a, w) in &new_weights {
            lambda[a] += w;
        }
        let lambda_inv_sqrt: Vec<f64> = lambda
            .iter()
            .map(|&l| if l > 1e-300 { 1.0 / l.sqrt() } else { 0.0 })
            .collect();
        // Rebuild H' over n + 1 rows: existing rows carry Z (recovered from H
        // by undoing the old scaling), plus the new query row.
        let d = self.anchors.len();
        let old_lambda_sqrt: Vec<f64> = self
            .lambda
            .iter()
            .map(|&l| if l > 1e-300 { l.sqrt() } else { 0.0 })
            .collect();
        let mut coo = CooMatrix::with_capacity(self.n + 1, d, self.h.nnz() + new_weights.len());
        for (i, j, v) in self.h.iter() {
            // v = Z_ij / sqrt(old λ_j)  →  Z_ij = v * sqrt(old λ_j)
            let z_ij = v * old_lambda_sqrt[j];
            coo.push(i, j, z_ij * lambda_inv_sqrt[j])?;
        }
        for &(a, w) in &new_weights {
            coo.push(self.n, a, w * lambda_inv_sqrt[a])?;
        }
        let h_ext = coo.to_csr();

        let mut q = vec![0.0; self.n + 1];
        q[self.n] = self.params.query_scale();
        let mut scores = woodbury_solve_csr(&h_ext, self.params.alpha, &q)?;
        scores.truncate(self.n);
        Ok(scores)
    }

    /// Top-k database points for an out-of-sample query feature.
    pub fn top_k_for_feature(&self, feature: &[f64], k: usize) -> Result<TopKResult> {
        check_k(k)?;
        let scores = self.scores_for_feature(feature)?;
        Ok(TopKResult::from_scores(&scores, k, None))
    }
}

impl Ranker for EmrSolver {
    fn name(&self) -> &'static str {
        "EMR"
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn top_k(&self, query: usize, k: usize) -> Result<TopKResult> {
        check_k(k)?;
        let scores = self.scores(query)?;
        Ok(TopKResult::from_scores(&scores, k, Some(query)))
    }

    fn scores(&self, query: usize) -> Result<Vec<f64>> {
        check_query(query, self.n)?;
        let mut q = vec![0.0; self.n];
        q[query] = self.params.query_scale();
        woodbury_solve_csr(&self.h, self.params.alpha, &q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_data::coil::{coil_like, CoilLikeConfig};

    fn small_coil() -> mogul_data::Dataset {
        coil_like(&CoilLikeConfig {
            num_objects: 4,
            poses_per_object: 15,
            dim: 8,
            noise: 0.02,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn epanechnikov_kernel_shape() {
        assert_eq!(epanechnikov(0.0), 0.75);
        assert!(epanechnikov(0.5) > 0.0);
        assert_eq!(epanechnikov(1.0), 0.0);
        assert_eq!(epanechnikov(2.0), 0.0);
    }

    #[test]
    fn anchor_weights_sum_to_one() {
        let anchors = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ];
        let w = anchor_weights(&[0.2, 0.1], &anchors, 3);
        let total: f64 = w.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(w.len() <= 3);
        // The far anchor is never selected.
        assert!(w.iter().all(|&(a, _)| a != 3));
    }

    #[test]
    fn scores_favor_same_object_points() {
        let data = small_coil();
        let solver = EmrSolver::new(
            data.features(),
            MrParams::default(),
            EmrConfig::with_anchors(12),
        )
        .unwrap();
        assert_eq!(solver.num_anchors(), 12);
        let query = 0usize;
        let top = solver.top_k(query, 5).unwrap();
        assert_eq!(top.len(), 5);
        let same_object = top
            .nodes()
            .iter()
            .filter(|&&n| data.label(n) == data.label(query))
            .count();
        assert!(
            same_object >= 3,
            "expected most of the top-5 to share the query object, got {same_object}"
        );
    }

    #[test]
    fn more_anchors_do_not_hurt_self_consistency() {
        let data = small_coil();
        for anchors in [5usize, 20] {
            let solver = EmrSolver::new(
                data.features(),
                MrParams::default(),
                EmrConfig::with_anchors(anchors),
            )
            .unwrap();
            let scores = solver.scores(3).unwrap();
            assert_eq!(scores.len(), data.len());
            assert!(scores.iter().all(|s| s.is_finite()));
            // The query itself should be among the highest scores.
            let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(scores[3] > 0.5 * max);
        }
    }

    #[test]
    fn out_of_sample_matches_in_sample_for_identical_feature() {
        let data = small_coil();
        let solver = EmrSolver::new(
            data.features(),
            MrParams::default(),
            EmrConfig::with_anchors(10),
        )
        .unwrap();
        // Querying with the feature of database point 7 should rank point 7
        // (or at least its object) at the top.
        let top = solver.top_k_for_feature(data.feature(7), 5).unwrap();
        let same_object = top
            .nodes()
            .iter()
            .filter(|&&n| data.label(n) == data.label(7))
            .count();
        assert!(
            same_object >= 3,
            "out-of-sample retrieval should find the object"
        );
    }

    #[test]
    fn validation() {
        let data = small_coil();
        assert!(EmrSolver::new(&[], MrParams::default(), EmrConfig::default()).is_err());
        assert!(EmrSolver::new(
            data.features(),
            MrParams::default(),
            EmrConfig::with_anchors(0)
        )
        .is_err());
        let solver = EmrSolver::new(
            data.features(),
            MrParams::default(),
            EmrConfig::with_anchors(8),
        )
        .unwrap();
        assert!(solver.scores(data.len()).is_err());
        assert!(solver.top_k(0, 0).is_err());
        assert!(solver.scores_for_feature(&[1.0]).is_err());
        assert_eq!(solver.name(), "EMR");
        assert_eq!(solver.num_nodes(), data.len());
        assert_eq!(solver.anchors().len(), 8);
    }

    #[test]
    fn anchors_clamped_to_dataset_size() {
        let feats = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let solver =
            EmrSolver::new(&feats, MrParams::default(), EmrConfig::with_anchors(50)).unwrap();
        assert!(solver.num_anchors() <= 3);
        let scores = solver.scores(0).unwrap();
        assert_eq!(scores.len(), 3);
    }
}
