//! Out-of-sample queries (Section 4.6.2 of the paper).
//!
//! When the query image is not part of the database, Mogul does **not**
//! rebuild the k-NN graph or the factorization. Instead the query vector `q`
//! is populated with the query's nearest database neighbours: the nearest
//! cluster is found through per-cluster average features (centroids), the
//! neighbours are drawn from that cluster, and their heat-kernel similarities
//! become the weights of a multi-node query vector processed by the ordinary
//! Algorithm 2 search. Both phases are `O(n)`; Table 2 of the paper breaks
//! the total time into exactly these two parts.

use crate::mogul::{
    BatchWorkspace, MogulIndex, SearchMode, SearchStats, SearchWorkspace, PANEL_WIDTH,
};
use crate::ranking::{check_k, TopKResult};
use crate::topk::{f64_sort_key, BoundedTopK, Entry};
use crate::{CoreError, Result};
use std::time::Instant;

/// Reusable scratch for [`OutOfSampleIndex::query_in`].
///
/// An out-of-sample query has two phases (Section 4.6.2): the nearest-cluster
/// / nearest-neighbour scan that builds the weighted query vector, and the
/// ordinary Algorithm 2 search over it. Both touch `O(n)` scratch; keeping it
/// in a caller-owned workspace lets a serving loop (see `mogul-serve`) answer
/// repeated queries with zero heap allocations on the substitution/pruning
/// path after warm-up. Like [`SearchWorkspace`], the workspace carries no
/// index state: any workspace works with any index and results are
/// bit-identical to the allocating [`OutOfSampleIndex::query`].
#[derive(Debug, Clone, Default)]
pub struct OosWorkspace {
    /// Scratch of the Algorithm 2 search phase.
    search: SearchWorkspace,
    /// Recycled buffer of the bounded nearest-cluster selection
    /// (`(centroid distance² key, cluster)` pairs).
    cluster_order: Vec<(u64, usize)>,
    /// Recycled buffer of the bounded nearest-neighbour selection.
    candidates: Vec<Entry<(u64, usize), (usize, f64)>>,
    /// `(node, euclidean distance)` pairs of the selected neighbours,
    /// nearest first.
    scored: Vec<(usize, f64)>,
    /// Normalized heat-kernel weighted multi-node query vector.
    weights: Vec<(usize, f64)>,
}

impl OosWorkspace {
    /// An empty workspace; buffers grow to the index size on first use.
    pub fn new() -> Self {
        OosWorkspace::default()
    }

    /// A workspace whose search scratch is pre-sized for an index over `n`
    /// nodes (the phase-1 buffers grow on first use either way).
    pub fn with_capacity(n: usize) -> Self {
        OosWorkspace {
            search: SearchWorkspace::with_capacity(n),
            ..OosWorkspace::default()
        }
    }

    /// The embedded Algorithm 2 search scratch, for callers that interleave
    /// in-database and out-of-sample queries over a single workspace (the
    /// `mogul-serve` workers do exactly that).
    pub fn search_mut(&mut self) -> &mut SearchWorkspace {
        &mut self.search
    }
}

/// Configuration of the out-of-sample query path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutOfSampleConfig {
    /// How many database neighbours form the query vector.
    pub num_neighbors: usize,
    /// How many nearest clusters (by centroid distance) are scanned when
    /// collecting neighbours. 1 reproduces the paper exactly; larger values
    /// trade a little speed for robustness on fragmented clusterings.
    pub cluster_probes: usize,
}

impl Default for OutOfSampleConfig {
    fn default() -> Self {
        OutOfSampleConfig {
            num_neighbors: 5,
            cluster_probes: 1,
        }
    }
}

/// Result of one out-of-sample query, including the timing breakdown that
/// Table 2 of the paper reports.
#[derive(Debug, Clone)]
pub struct OutOfSampleResult {
    /// Top-k database nodes.
    pub top_k: TopKResult,
    /// Database nodes used to form the query vector (nearest first).
    pub neighbors: Vec<usize>,
    /// Seconds spent finding the nearest cluster and neighbours.
    pub nearest_neighbor_secs: f64,
    /// Seconds spent in the top-k search itself.
    pub top_k_secs: f64,
    /// Work counters of the top-k search.
    pub stats: SearchStats,
}

impl OutOfSampleResult {
    /// Total query time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.nearest_neighbor_secs + self.top_k_secs
    }
}

/// An out-of-sample query index: a [`MogulIndex`] plus the database features
/// and per-cluster centroids.
#[derive(Debug, Clone)]
pub struct OutOfSampleIndex {
    index: MogulIndex,
    features: Vec<Vec<f64>>,
    /// Centroid of each ordering cluster (empty clusters get an empty vector).
    centroids: Vec<Vec<f64>>,
    /// Members (original node ids) of each ordering cluster.
    members: Vec<Vec<usize>>,
    config: OutOfSampleConfig,
}

impl OutOfSampleIndex {
    /// Attach database features to a prebuilt [`MogulIndex`].
    pub fn new(
        index: MogulIndex,
        features: Vec<Vec<f64>>,
        config: OutOfSampleConfig,
    ) -> Result<Self> {
        if features.len() != index.num_nodes() {
            return Err(CoreError::InvalidInput(format!(
                "index covers {} nodes but {} feature vectors were supplied",
                index.num_nodes(),
                features.len()
            )));
        }
        if config.num_neighbors == 0 {
            return Err(CoreError::InvalidInput(
                "out-of-sample queries need at least one neighbour".into(),
            ));
        }
        let dim = features.first().map_or(0, |f| f.len());
        for (i, f) in features.iter().enumerate() {
            if f.len() != dim {
                return Err(CoreError::InvalidInput(format!(
                    "feature {i} has dimension {} but expected {dim}",
                    f.len()
                )));
            }
        }

        // Cluster membership and centroids in the original node id space.
        let ordering = index.ordering();
        let num_clusters = ordering.num_clusters();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
        for permuted in 0..ordering.len() {
            let cluster = ordering.cluster_of_permuted(permuted);
            members[cluster].push(ordering.permutation.old_index(permuted));
        }
        let mut centroids = Vec::with_capacity(num_clusters);
        for cluster_members in &members {
            if cluster_members.is_empty() || dim == 0 {
                centroids.push(Vec::new());
                continue;
            }
            let mut centroid = vec![0.0; dim];
            for &node in cluster_members {
                for (c, v) in centroid.iter_mut().zip(features[node].iter()) {
                    *c += v;
                }
            }
            for c in centroid.iter_mut() {
                *c /= cluster_members.len() as f64;
            }
            centroids.push(centroid);
        }

        Ok(OutOfSampleIndex {
            index,
            features,
            centroids,
            members,
            config,
        })
    }

    /// The wrapped Mogul index.
    pub fn index(&self) -> &MogulIndex {
        &self.index
    }

    /// The database feature vectors, indexed by original node id.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Dimensionality of the database feature vectors.
    pub fn feature_dim(&self) -> usize {
        self.features.first().map_or(0, |f| f.len())
    }

    /// The out-of-sample query configuration.
    pub fn config(&self) -> OutOfSampleConfig {
        self.config
    }

    /// Answer an out-of-sample query given its raw feature vector.
    ///
    /// Allocates fresh scratch per call; loops that answer many queries
    /// should reuse an [`OosWorkspace`] via [`OutOfSampleIndex::query_in`].
    pub fn query(&self, feature: &[f64], k: usize) -> Result<OutOfSampleResult> {
        self.query_in(&mut OosWorkspace::new(), feature, k)
    }

    /// [`OutOfSampleIndex::query`] with caller-owned scratch: bit-identical
    /// results, with the `O(n)` substitution/pruning buffers reused across
    /// calls instead of reallocated.
    pub fn query_in(
        &self,
        ws: &mut OosWorkspace,
        feature: &[f64],
        k: usize,
    ) -> Result<OutOfSampleResult> {
        check_k(k)?;

        // Phase 1: nearest cluster(s) by centroid, then nearest neighbours
        // inside them, turned into a normalized weighted query vector.
        let nn_start = Instant::now();
        self.collect_query_weights(ws, feature)?;
        let nearest_neighbor_secs = nn_start.elapsed().as_secs_f64();

        // Phase 2: ordinary Mogul search with the weighted query vector.
        let search_start = Instant::now();
        let OosWorkspace {
            search, weights, ..
        } = ws;
        let (top_k, stats) =
            self.index
                .search_weighted_in(search, weights, k, SearchMode::Pruned)?;
        let top_k_secs = search_start.elapsed().as_secs_f64();

        Ok(OutOfSampleResult {
            top_k,
            neighbors: ws.scored.iter().map(|&(node, _)| node).collect(),
            nearest_neighbor_secs,
            top_k_secs,
            stats,
        })
    }

    /// Batched [`OutOfSampleIndex::query`] over many feature vectors.
    ///
    /// Phase 1 (nearest cluster / nearest neighbours / weight construction)
    /// runs per query exactly as in the scalar path; phase 2 packs the
    /// weighted query vectors into [`PANEL_WIDTH`]-wide panels and runs the
    /// batched Algorithm 2 engine, so the factor structure is traversed once
    /// per panel instead of once per query. Rankings, neighbours and work
    /// counters are bit-identical to [`OutOfSampleIndex::query_in`] per
    /// query; only the timing split differs — `top_k_secs` reports each
    /// lane's even share of its panel's phase-2 wall clock.
    ///
    /// One invalid feature fails the whole call (callers needing per-query
    /// error isolation, like `mogul-serve`, fall back to scalar queries for
    /// the affected batch).
    pub fn query_batch_in(
        &self,
        ws: &mut BatchWorkspace,
        features: &[&[f64]],
        k: usize,
    ) -> Result<Vec<OutOfSampleResult>> {
        check_k(k)?;
        let mut out = Vec::with_capacity(features.len());
        let mut panel_results: Vec<(TopKResult, SearchStats)> = Vec::new();
        let mut phase1: Vec<(f64, Vec<usize>)> = Vec::with_capacity(PANEL_WIDTH);
        for chunk in features.chunks(PANEL_WIDTH) {
            self.index.batch_begin(ws);
            phase1.clear();
            for &feature in chunk {
                let nn_start = Instant::now();
                self.collect_query_weights(&mut ws.oos, feature)?;
                let nn_secs = nn_start.elapsed().as_secs_f64();
                let neighbors = ws.oos.scored.iter().map(|&(node, _)| node).collect();
                let weights = std::mem::take(&mut ws.oos.weights);
                let pushed = self.index.batch_push_lane(ws, &weights, None);
                ws.oos.weights = weights;
                pushed?;
                phase1.push((nn_secs, neighbors));
            }
            let search_start = Instant::now();
            panel_results.clear();
            self.index
                .search_panel_staged(ws, k, SearchMode::Pruned, &mut panel_results)?;
            let per_lane_secs = search_start.elapsed().as_secs_f64() / chunk.len() as f64;
            for ((top_k, stats), (nearest_neighbor_secs, neighbors)) in
                panel_results.drain(..).zip(phase1.drain(..))
            {
                out.push(OutOfSampleResult {
                    top_k,
                    neighbors,
                    nearest_neighbor_secs,
                    top_k_secs: per_lane_secs,
                    stats,
                });
            }
        }
        Ok(out)
    }

    /// Smallest squared Euclidean distance from `feature` to any non-empty
    /// cluster centroid of this index, or `None` when the index holds no
    /// non-empty cluster or `feature` has the wrong dimension.
    ///
    /// This is the routing signal of the sharded index: a query or insert is
    /// sent to the shard whose nearest centroid is nearest overall — the same
    /// centroids phase 1 of the out-of-sample search probes, so routing and
    /// in-shard cluster selection agree with each other.
    pub fn min_centroid_distance2(&self, feature: &[f64]) -> Option<f64> {
        let dim = self.features.first().map_or(0, |f| f.len());
        if feature.len() != dim || !feature.iter().all(|v| v.is_finite()) {
            return None;
        }
        self.centroids
            .iter()
            .filter(|c| !c.is_empty())
            .map(|c| mogul_sparse::vector::squared_euclidean_unchecked(feature, c))
            .min_by(f64::total_cmp)
    }

    /// Phase 1 of Section 4.6.2 (shared by the scalar and batched paths):
    /// validate `feature`, find the nearest non-empty cluster(s), select the
    /// `num_neighbors` nearest members, and leave the selected `(node,
    /// distance)` pairs in `ws.scored` (nearest first) and the normalized
    /// heat-kernel query vector in `ws.weights`.
    ///
    /// Both selections run through the shared bounded top-k collector
    /// (`O(n log k)`, no full sort); ties are pinned to the earlier
    /// candidate, matching the stable sort this replaced.
    pub(crate) fn collect_query_weights(
        &self,
        ws: &mut OosWorkspace,
        feature: &[f64],
    ) -> Result<()> {
        let dim = self.features.first().map_or(0, |f| f.len());
        if feature.len() != dim {
            return Err(CoreError::DimensionMismatch {
                op: "out-of-sample query feature",
                left: (1, dim),
                right: (1, feature.len()),
            });
        }
        if !feature.iter().all(|v| v.is_finite()) {
            return Err(CoreError::InvalidInput(
                "query feature contains non-finite values".into(),
            ));
        }

        let non_empty = self.centroids.iter().filter(|c| !c.is_empty()).count();
        if non_empty == 0 {
            return Err(CoreError::InvalidInput(
                "the database holds no non-empty clusters".into(),
            ));
        }
        let probes = self.config.cluster_probes.max(1).min(non_empty);
        let mut nearest_clusters =
            BoundedTopK::with_buffer(probes, std::mem::take(&mut ws.cluster_order));
        for (idx, c) in self.centroids.iter().enumerate() {
            if c.is_empty() {
                continue;
            }
            let d2 = mogul_sparse::vector::squared_euclidean_unchecked(feature, c);
            nearest_clusters.offer((f64_sort_key(d2), idx));
        }
        let cluster_order = nearest_clusters.into_sorted_vec();

        // Nearest neighbours across the probed clusters; the tie-break
        // position follows the probe order (nearest cluster first), exactly
        // like the concatenate-then-stable-sort this replaces.
        let mut nearest = BoundedTopK::with_buffer(
            self.config.num_neighbors,
            std::mem::take(&mut ws.candidates),
        );
        let mut position = 0usize;
        for &(_, cluster) in &cluster_order {
            for &node in &self.members[cluster] {
                let d = mogul_sparse::vector::squared_euclidean_unchecked(
                    feature,
                    &self.features[node],
                )
                .sqrt();
                nearest.offer(Entry {
                    key: (f64_sort_key(d), position),
                    value: (node, d),
                });
                position += 1;
            }
        }
        ws.cluster_order = cluster_order;
        let mut picked = nearest.into_sorted_vec();
        ws.scored.clear();
        ws.scored.extend(picked.iter().map(|e| e.value));
        picked.clear();
        ws.candidates = picked;

        // Heat-kernel weights over the neighbours, normalized to sum 1.
        let sigma = {
            let mean: f64 =
                ws.scored.iter().map(|&(_, d)| d).sum::<f64>() / ws.scored.len().max(1) as f64;
            mean.max(1e-12)
        };
        ws.weights.clear();
        ws.weights.extend(
            ws.scored
                .iter()
                .map(|&(node, d)| (node, (-d * d / (2.0 * sigma * sigma)).exp())),
        );
        let total: f64 = ws.weights.iter().map(|&(_, w)| w).sum();
        if total > 1e-300 {
            for w in ws.weights.iter_mut() {
                w.1 /= total;
            }
        } else {
            let uniform = 1.0 / ws.weights.len().max(1) as f64;
            for w in ws.weights.iter_mut() {
                w.1 = uniform;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mogul::MogulConfig;
    use mogul_data::coil::{coil_like, CoilLikeConfig};
    use mogul_graph::knn::{knn_graph, KnnConfig};

    fn build_index() -> (
        mogul_data::Dataset,
        Vec<(Vec<f64>, usize)>,
        OutOfSampleIndex,
    ) {
        let data = coil_like(&CoilLikeConfig {
            num_objects: 6,
            poses_per_object: 16,
            dim: 12,
            noise: 0.02,
            ..Default::default()
        })
        .unwrap();
        let (db, queries) = data.split_out_queries(6, 11).unwrap();
        let graph = knn_graph(db.features(), KnnConfig::with_k(5)).unwrap();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        let oos =
            OutOfSampleIndex::new(index, db.features().to_vec(), OutOfSampleConfig::default())
                .unwrap();
        (db, queries, oos)
    }

    #[test]
    fn out_of_sample_retrieval_finds_the_right_object() {
        let (db, queries, oos) = build_index();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (feature, label) in &queries {
            let result = oos.query(feature, 5).unwrap();
            assert_eq!(result.top_k.len(), 5);
            assert!(!result.neighbors.is_empty());
            assert!(result.total_secs() >= 0.0);
            for node in result.top_k.nodes() {
                total += 1;
                if db.label(node) == *label {
                    correct += 1;
                }
            }
        }
        let precision = correct as f64 / total as f64;
        assert!(
            precision > 0.7,
            "out-of-sample retrieval precision too low: {precision}"
        );
    }

    #[test]
    fn workspace_reuse_matches_allocating_query() {
        // One workspace reused across every query must reproduce the
        // allocating API bit for bit (ranking, neighbours and work counters;
        // wall-clock timings naturally differ).
        let (_, queries, oos) = build_index();
        let mut ws = OosWorkspace::new();
        for (feature, _) in &queries {
            let fresh = oos.query(feature, 5).unwrap();
            let reused = oos.query_in(&mut ws, feature, 5).unwrap();
            assert_eq!(fresh.top_k, reused.top_k);
            assert_eq!(fresh.neighbors, reused.neighbors);
            assert_eq!(fresh.stats, reused.stats);
        }
        // A presized workspace behaves identically too.
        let mut big = OosWorkspace::with_capacity(10_000);
        let fresh = oos.query(&queries[0].0, 3).unwrap();
        let reused = oos.query_in(&mut big, &queries[0].0, 3).unwrap();
        assert_eq!(fresh.top_k, reused.top_k);
    }

    #[test]
    fn timing_breakdown_is_reported() {
        let (_, queries, oos) = build_index();
        let result = oos.query(&queries[0].0, 3).unwrap();
        assert!(result.nearest_neighbor_secs >= 0.0);
        assert!(result.top_k_secs >= 0.0);
        assert!(result.total_secs() >= result.top_k_secs);
    }

    #[test]
    fn neighbors_come_from_one_or_few_clusters() {
        let (_, queries, oos) = build_index();
        let result = oos.query(&queries[1].0, 4).unwrap();
        assert!(result.neighbors.len() <= OutOfSampleConfig::default().num_neighbors);
        // All neighbours are valid database nodes.
        for &n in &result.neighbors {
            assert!(n < oos.index().num_nodes());
        }
    }

    #[test]
    fn validation() {
        let (db, queries, oos) = build_index();
        // Wrong feature dimension.
        assert!(oos.query(&[1.0, 2.0], 3).is_err());
        // Non-finite feature.
        let mut bad = queries[0].0.clone();
        bad[0] = f64::NAN;
        assert!(oos.query(&bad, 3).is_err());
        // k = 0.
        assert!(oos.query(&queries[0].0, 0).is_err());

        // Mismatched feature count at construction.
        let graph = knn_graph(db.features(), KnnConfig::with_k(5)).unwrap();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        assert!(OutOfSampleIndex::new(
            index.clone(),
            db.features()[..3].to_vec(),
            OutOfSampleConfig::default()
        )
        .is_err());
        // Zero neighbours.
        assert!(OutOfSampleIndex::new(
            index,
            db.features().to_vec(),
            OutOfSampleConfig {
                num_neighbors: 0,
                cluster_probes: 1
            }
        )
        .is_err());
    }
}
