//! Out-of-sample queries (Section 4.6.2 of the paper).
//!
//! When the query image is not part of the database, Mogul does **not**
//! rebuild the k-NN graph or the factorization. Instead the query vector `q`
//! is populated with the query's nearest database neighbours: the nearest
//! cluster is found through per-cluster average features (centroids), the
//! neighbours are drawn from that cluster, and their heat-kernel similarities
//! become the weights of a multi-node query vector processed by the ordinary
//! Algorithm 2 search. Both phases are `O(n)`; Table 2 of the paper breaks
//! the total time into exactly these two parts.

use crate::mogul::{MogulIndex, SearchMode, SearchStats};
use crate::ranking::{check_k, TopKResult};
use crate::{CoreError, Result};
use std::time::Instant;

/// Configuration of the out-of-sample query path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutOfSampleConfig {
    /// How many database neighbours form the query vector.
    pub num_neighbors: usize,
    /// How many nearest clusters (by centroid distance) are scanned when
    /// collecting neighbours. 1 reproduces the paper exactly; larger values
    /// trade a little speed for robustness on fragmented clusterings.
    pub cluster_probes: usize,
}

impl Default for OutOfSampleConfig {
    fn default() -> Self {
        OutOfSampleConfig {
            num_neighbors: 5,
            cluster_probes: 1,
        }
    }
}

/// Result of one out-of-sample query, including the timing breakdown that
/// Table 2 of the paper reports.
#[derive(Debug, Clone)]
pub struct OutOfSampleResult {
    /// Top-k database nodes.
    pub top_k: TopKResult,
    /// Database nodes used to form the query vector (nearest first).
    pub neighbors: Vec<usize>,
    /// Seconds spent finding the nearest cluster and neighbours.
    pub nearest_neighbor_secs: f64,
    /// Seconds spent in the top-k search itself.
    pub top_k_secs: f64,
    /// Work counters of the top-k search.
    pub stats: SearchStats,
}

impl OutOfSampleResult {
    /// Total query time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.nearest_neighbor_secs + self.top_k_secs
    }
}

/// An out-of-sample query index: a [`MogulIndex`] plus the database features
/// and per-cluster centroids.
#[derive(Debug, Clone)]
pub struct OutOfSampleIndex {
    index: MogulIndex,
    features: Vec<Vec<f64>>,
    /// Centroid of each ordering cluster (empty clusters get an empty vector).
    centroids: Vec<Vec<f64>>,
    /// Members (original node ids) of each ordering cluster.
    members: Vec<Vec<usize>>,
    config: OutOfSampleConfig,
}

impl OutOfSampleIndex {
    /// Attach database features to a prebuilt [`MogulIndex`].
    pub fn new(
        index: MogulIndex,
        features: Vec<Vec<f64>>,
        config: OutOfSampleConfig,
    ) -> Result<Self> {
        if features.len() != index.num_nodes() {
            return Err(CoreError::InvalidInput(format!(
                "index covers {} nodes but {} feature vectors were supplied",
                index.num_nodes(),
                features.len()
            )));
        }
        if config.num_neighbors == 0 {
            return Err(CoreError::InvalidInput(
                "out-of-sample queries need at least one neighbour".into(),
            ));
        }
        let dim = features.first().map_or(0, |f| f.len());
        for (i, f) in features.iter().enumerate() {
            if f.len() != dim {
                return Err(CoreError::InvalidInput(format!(
                    "feature {i} has dimension {} but expected {dim}",
                    f.len()
                )));
            }
        }

        // Cluster membership and centroids in the original node id space.
        let ordering = index.ordering();
        let num_clusters = ordering.num_clusters();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
        for permuted in 0..ordering.len() {
            let cluster = ordering.cluster_of_permuted(permuted);
            members[cluster].push(ordering.permutation.old_index(permuted));
        }
        let mut centroids = Vec::with_capacity(num_clusters);
        for cluster_members in &members {
            if cluster_members.is_empty() || dim == 0 {
                centroids.push(Vec::new());
                continue;
            }
            let mut centroid = vec![0.0; dim];
            for &node in cluster_members {
                for (c, v) in centroid.iter_mut().zip(features[node].iter()) {
                    *c += v;
                }
            }
            for c in centroid.iter_mut() {
                *c /= cluster_members.len() as f64;
            }
            centroids.push(centroid);
        }

        Ok(OutOfSampleIndex {
            index,
            features,
            centroids,
            members,
            config,
        })
    }

    /// The wrapped Mogul index.
    pub fn index(&self) -> &MogulIndex {
        &self.index
    }

    /// Answer an out-of-sample query given its raw feature vector.
    pub fn query(&self, feature: &[f64], k: usize) -> Result<OutOfSampleResult> {
        check_k(k)?;
        let dim = self.features.first().map_or(0, |f| f.len());
        if feature.len() != dim {
            return Err(CoreError::DimensionMismatch {
                op: "out-of-sample query feature",
                left: (1, dim),
                right: (1, feature.len()),
            });
        }
        if !feature.iter().all(|v| v.is_finite()) {
            return Err(CoreError::InvalidInput(
                "query feature contains non-finite values".into(),
            ));
        }

        // Phase 1: nearest cluster(s) by centroid, then nearest neighbours
        // inside them.
        let nn_start = Instant::now();
        let mut cluster_order: Vec<(usize, f64)> = self
            .centroids
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(idx, c)| {
                (
                    idx,
                    mogul_sparse::vector::squared_euclidean_unchecked(feature, c),
                )
            })
            .collect();
        cluster_order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if cluster_order.is_empty() {
            return Err(CoreError::InvalidInput(
                "the database holds no non-empty clusters".into(),
            ));
        }
        let probes = self.config.cluster_probes.max(1).min(cluster_order.len());
        let mut candidates: Vec<usize> = Vec::new();
        for &(cluster, _) in cluster_order.iter().take(probes) {
            candidates.extend(self.members[cluster].iter().copied());
        }
        let mut scored: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|node| {
                (
                    node,
                    mogul_sparse::vector::squared_euclidean_unchecked(
                        feature,
                        &self.features[node],
                    )
                    .sqrt(),
                )
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.config.num_neighbors);
        // Heat-kernel weights over the neighbours, normalized to sum 1.
        let sigma = {
            let mean: f64 =
                scored.iter().map(|&(_, d)| d).sum::<f64>() / scored.len().max(1) as f64;
            mean.max(1e-12)
        };
        let mut weights: Vec<(usize, f64)> = scored
            .iter()
            .map(|&(node, d)| (node, (-d * d / (2.0 * sigma * sigma)).exp()))
            .collect();
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        if total > 1e-300 {
            for w in weights.iter_mut() {
                w.1 /= total;
            }
        } else {
            let uniform = 1.0 / weights.len().max(1) as f64;
            for w in weights.iter_mut() {
                w.1 = uniform;
            }
        }
        let nearest_neighbor_secs = nn_start.elapsed().as_secs_f64();

        // Phase 2: ordinary Mogul search with the weighted query vector.
        let search_start = Instant::now();
        let (top_k, stats) = self
            .index
            .search_weighted(&weights, k, SearchMode::Pruned)?;
        let top_k_secs = search_start.elapsed().as_secs_f64();

        Ok(OutOfSampleResult {
            top_k,
            neighbors: scored.iter().map(|&(node, _)| node).collect(),
            nearest_neighbor_secs,
            top_k_secs,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mogul::MogulConfig;
    use mogul_data::coil::{coil_like, CoilLikeConfig};
    use mogul_graph::knn::{knn_graph, KnnConfig};

    fn build_index() -> (
        mogul_data::Dataset,
        Vec<(Vec<f64>, usize)>,
        OutOfSampleIndex,
    ) {
        let data = coil_like(&CoilLikeConfig {
            num_objects: 6,
            poses_per_object: 16,
            dim: 12,
            noise: 0.02,
            ..Default::default()
        })
        .unwrap();
        let (db, queries) = data.split_out_queries(6, 11).unwrap();
        let graph = knn_graph(db.features(), KnnConfig::with_k(5)).unwrap();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        let oos =
            OutOfSampleIndex::new(index, db.features().to_vec(), OutOfSampleConfig::default())
                .unwrap();
        (db, queries, oos)
    }

    #[test]
    fn out_of_sample_retrieval_finds_the_right_object() {
        let (db, queries, oos) = build_index();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (feature, label) in &queries {
            let result = oos.query(feature, 5).unwrap();
            assert_eq!(result.top_k.len(), 5);
            assert!(!result.neighbors.is_empty());
            assert!(result.total_secs() >= 0.0);
            for node in result.top_k.nodes() {
                total += 1;
                if db.label(node) == *label {
                    correct += 1;
                }
            }
        }
        let precision = correct as f64 / total as f64;
        assert!(
            precision > 0.7,
            "out-of-sample retrieval precision too low: {precision}"
        );
    }

    #[test]
    fn timing_breakdown_is_reported() {
        let (_, queries, oos) = build_index();
        let result = oos.query(&queries[0].0, 3).unwrap();
        assert!(result.nearest_neighbor_secs >= 0.0);
        assert!(result.top_k_secs >= 0.0);
        assert!(result.total_secs() >= result.top_k_secs);
    }

    #[test]
    fn neighbors_come_from_one_or_few_clusters() {
        let (_, queries, oos) = build_index();
        let result = oos.query(&queries[1].0, 4).unwrap();
        assert!(result.neighbors.len() <= OutOfSampleConfig::default().num_neighbors);
        // All neighbours are valid database nodes.
        for &n in &result.neighbors {
            assert!(n < oos.index().num_nodes());
        }
    }

    #[test]
    fn validation() {
        let (db, queries, oos) = build_index();
        // Wrong feature dimension.
        assert!(oos.query(&[1.0, 2.0], 3).is_err());
        // Non-finite feature.
        let mut bad = queries[0].0.clone();
        bad[0] = f64::NAN;
        assert!(oos.query(&bad, 3).is_err());
        // k = 0.
        assert!(oos.query(&queries[0].0, 0).is_err());

        // Mismatched feature count at construction.
        let graph = knn_graph(db.features(), KnnConfig::with_k(5)).unwrap();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        assert!(OutOfSampleIndex::new(
            index.clone(),
            db.features()[..3].to_vec(),
            OutOfSampleConfig::default()
        )
        .is_err());
        // Zero neighbours.
        assert!(OutOfSampleIndex::new(
            index,
            db.features().to_vec(),
            OutOfSampleConfig {
                num_neighbors: 0,
                cluster_probes: 1
            }
        )
        .is_err());
    }
}
