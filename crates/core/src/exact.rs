//! The `O(n³)` inverse-matrix baseline ("Inverse" in the experiments).
//!
//! Equation (2) of the paper:
//! `x* = (1 − α)(I − α C^{-1/2} A C^{-1/2})^{-1} q`. This solver materializes
//! the dense inverse once (`O(n³)` time, `O(n²)` space) and answers each
//! query with a dense matrix-vector product — exactly the approach whose
//! cost motivates Mogul. It doubles as the ground truth for the `P@k`
//! accuracy metric.

use crate::params::MrParams;
use crate::ranking::{check_k, check_query, Ranker, TopKResult};
use crate::Result;
use mogul_graph::adjacency::ranking_system_matrix;
use mogul_graph::Graph;
use mogul_sparse::{CsrMatrix, DenseMatrix};

/// Dense inverse-matrix Manifold Ranking solver.
#[derive(Debug, Clone)]
pub struct InverseSolver {
    inverse: DenseMatrix,
    params: MrParams,
}

impl InverseSolver {
    /// Precompute the dense inverse of `I − α C^{-1/2} A C^{-1/2}`.
    pub fn new(graph: &Graph, params: MrParams) -> Result<Self> {
        Self::from_adjacency(&graph.adjacency_matrix(), params)
    }

    /// Same as [`InverseSolver::new`] but starting from an adjacency matrix.
    pub fn from_adjacency(adjacency: &CsrMatrix, params: MrParams) -> Result<Self> {
        let w = ranking_system_matrix(adjacency, params.alpha)?;
        let inverse = w.to_dense().inverse()?;
        Ok(InverseSolver { inverse, params })
    }

    /// The precomputed dense inverse (exposed for tests and memory studies).
    pub fn inverse_matrix(&self) -> &DenseMatrix {
        &self.inverse
    }
}

impl Ranker for InverseSolver {
    fn name(&self) -> &'static str {
        "Inverse"
    }

    fn num_nodes(&self) -> usize {
        self.inverse.nrows()
    }

    fn top_k(&self, query: usize, k: usize) -> Result<TopKResult> {
        check_k(k)?;
        let scores = self.scores(query)?;
        Ok(TopKResult::from_scores(&scores, k, Some(query)))
    }

    fn scores(&self, query: usize) -> Result<Vec<f64>> {
        check_query(query, self.num_nodes())?;
        // x* = (1 − α) M⁻¹ e_q  — i.e. the q-th column of M⁻¹, scaled.
        let scale = self.params.query_scale();
        Ok((0..self.num_nodes())
            .map(|i| scale * self.inverse.get(i, query))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_graph::Graph;

    /// Two triangles joined by a bridge; node 0 queries should rank its own
    /// triangle first.
    fn bridged_triangles() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 0.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn scores_satisfy_the_linear_system() {
        let g = bridged_triangles();
        let params = MrParams::default();
        let solver = InverseSolver::new(&g, params).unwrap();
        let scores = solver.scores(0).unwrap();
        // Check (I − αS) x = (1 − α) e_q directly.
        let w = ranking_system_matrix(&g.adjacency_matrix(), params.alpha).unwrap();
        let wx = w.matvec(&scores).unwrap();
        let mut expected = vec![0.0; 6];
        expected[0] = params.query_scale();
        assert!(mogul_sparse::vector::max_abs_diff(&wx, &expected).unwrap() < 1e-10);
    }

    #[test]
    fn scores_are_nonnegative_and_concentrated_near_the_query() {
        let g = bridged_triangles();
        let solver = InverseSolver::new(&g, MrParams::default()).unwrap();
        let scores = solver.scores(0).unwrap();
        assert!(scores.iter().all(|&s| s >= -1e-12));
        // With the symmetric normalization the query itself need not be the
        // single largest score, but the query triangle must dominate the
        // other one.
        let query_side: f64 = scores[..3].iter().sum();
        let other_side: f64 = scores[3..].iter().sum();
        assert!(query_side > other_side);
    }

    #[test]
    fn top_k_prefers_the_query_cluster() {
        let g = bridged_triangles();
        let solver = InverseSolver::new(&g, MrParams::default()).unwrap();
        let top = solver.top_k(0, 2).unwrap();
        assert_eq!(top.len(), 2);
        assert!(!top.contains(0), "query node is excluded");
        for item in top.items() {
            assert!(item.node <= 2, "top-2 must stay in the query triangle");
        }
    }

    #[test]
    fn query_triangle_outscores_the_far_triangle() {
        let g = bridged_triangles();
        let solver = InverseSolver::new(&g, MrParams::default()).unwrap();
        let scores = solver.scores(0).unwrap();
        // Both triangle-mates of the query outscore the interior nodes of
        // the far triangle (4 and 5), which are two hops beyond the bridge.
        for near in [1usize, 2] {
            for far in [4usize, 5] {
                assert!(
                    scores[near] > scores[far],
                    "score[{near}]={} should exceed score[{far}]={}",
                    scores[near],
                    scores[far]
                );
            }
        }
    }

    #[test]
    fn query_validation() {
        let g = bridged_triangles();
        let solver = InverseSolver::new(&g, MrParams::default()).unwrap();
        assert!(solver.scores(6).is_err());
        assert!(solver.top_k(0, 0).is_err());
        assert_eq!(solver.num_nodes(), 6);
        assert_eq!(solver.name(), "Inverse");
    }
}
