//! The FMR baseline (He et al. \[8\]): block-wise low-rank Manifold Ranking.
//!
//! FMR partitions the k-NN graph with spectral clustering, assumes the
//! adjacency matrix is block diagonal with respect to that partition (edges
//! between partitions are dropped — this is the source of its approximation
//! error), and replaces each block with a low-rank decomposition so the
//! per-query solve happens in the reduced space. When spectral clustering
//! balances the partition the cost is `O(n²/N)`; when it does not, FMR
//! degrades toward the dense `O(n³)` behaviour the paper describes.

use crate::params::MrParams;
use crate::ranking::{check_k, check_query, Ranker, TopKResult};
use crate::Result;
use mogul_graph::adjacency::symmetric_normalization;
use mogul_graph::clustering::spectral::{spectral_clustering, SpectralConfig};
use mogul_graph::clustering::Clustering;
use mogul_graph::Graph;
use mogul_sparse::lowrank::LowRank;
use mogul_sparse::{CooMatrix, DenseMatrix};

/// Configuration of the FMR baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmrConfig {
    /// Number of spectral-clustering partitions (`N` in the paper).
    pub num_clusters: usize,
    /// Target rank of the per-block approximation (the paper's experiments
    /// use 250 for the full matrix; per block anything ≥ the block size makes
    /// that block exact).
    pub rank: usize,
    /// Seed for spectral clustering and the Lanczos iterations.
    pub seed: u64,
}

impl Default for FmrConfig {
    fn default() -> Self {
        FmrConfig {
            num_clusters: 8,
            rank: 250,
            seed: 42,
        }
    }
}

/// One diagonal block of the partitioned, normalized adjacency matrix.
#[derive(Debug, Clone)]
enum BlockSolver {
    /// Small blocks (or rank ≥ size) are solved exactly with a dense inverse.
    Dense {
        /// `(I − α S_bb)⁻¹`, precomputed.
        inverse: DenseMatrix,
    },
    /// Larger blocks use a truncated eigendecomposition of `S_bb`.
    LowRank(LowRank),
}

#[derive(Debug, Clone)]
struct FmrBlock {
    /// Original node ids of the block members (ascending).
    members: Vec<usize>,
    solver: BlockSolver,
}

/// Block-wise low-rank Manifold Ranking solver.
#[derive(Debug, Clone)]
pub struct FmrSolver {
    params: MrParams,
    blocks: Vec<FmrBlock>,
    /// Block index and local offset of every node.
    locate: Vec<(usize, usize)>,
    n: usize,
    /// Number of cross-partition edges dropped by the block-diagonal
    /// assumption (an indicator of approximation quality).
    dropped_edges: usize,
}

impl FmrSolver {
    /// Precompute the spectral partition and the per-block decompositions.
    pub fn new(graph: &Graph, params: MrParams, config: FmrConfig) -> Result<Self> {
        let clustering = spectral_clustering(
            graph,
            &SpectralConfig {
                num_clusters: config.num_clusters.max(1),
                seed: config.seed,
                kmeans_max_iter: 50,
            },
        )?;
        Self::with_clustering(graph, params, config, &clustering)
    }

    /// Build FMR on a caller-supplied partition (used by tests and ablations).
    pub fn with_clustering(
        graph: &Graph,
        params: MrParams,
        config: FmrConfig,
        clustering: &Clustering,
    ) -> Result<Self> {
        let n = graph.num_nodes();
        clustering.check_len(n)?;
        let s = symmetric_normalization(&graph.adjacency_matrix())?;

        // Count dropped (cross-partition) edges for diagnostics.
        let mut dropped_edges = 0usize;
        for u in 0..n {
            for &(v, _) in graph.neighbors(u) {
                if u < v && !clustering.same_cluster(u, v) {
                    dropped_edges += 1;
                }
            }
        }

        let members_per_block = clustering.members();
        let mut locate = vec![(0usize, 0usize); n];
        let mut blocks = Vec::with_capacity(members_per_block.len());
        for (block_idx, members) in members_per_block.into_iter().enumerate() {
            for (local, &node) in members.iter().enumerate() {
                locate[node] = (block_idx, local);
            }
            let size = members.len();
            if size == 0 {
                blocks.push(FmrBlock {
                    members,
                    solver: BlockSolver::Dense {
                        inverse: DenseMatrix::zeros(0, 0),
                    },
                });
                continue;
            }
            // Extract the block of S restricted to `members`.
            let mut coo = CooMatrix::new(size, size);
            for (local_i, &node_i) in members.iter().enumerate() {
                let (cols, vals) = s.row(node_i);
                for (&node_j, &value) in cols.iter().zip(vals.iter()) {
                    if clustering.label(node_j) != block_idx {
                        continue;
                    }
                    let local_j = locate_in(&members, node_j);
                    coo.push(local_i, local_j, value)?;
                }
            }
            let block_matrix = coo.to_csr();
            let solver = if size <= config.rank.max(1) || size <= 40 {
                // Exact dense solve for this block.
                let mut system = DenseMatrix::identity(size);
                for (i, j, v) in block_matrix.iter() {
                    system.add_to(i, j, -params.alpha * v);
                }
                BlockSolver::Dense {
                    inverse: system.inverse()?,
                }
            } else {
                BlockSolver::LowRank(LowRank::from_sparse(
                    &block_matrix,
                    config.rank,
                    config.seed ^ (block_idx as u64).wrapping_mul(0x9E37_79B9),
                )?)
            };
            blocks.push(FmrBlock { members, solver });
        }

        Ok(FmrSolver {
            params,
            blocks,
            locate,
            n,
            dropped_edges,
        })
    }

    /// Number of cross-partition edges dropped by the block-diagonal
    /// approximation.
    pub fn dropped_edges(&self) -> usize {
        self.dropped_edges
    }

    /// Number of partitions.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

fn locate_in(sorted_members: &[usize], node: usize) -> usize {
    sorted_members
        .binary_search(&node)
        .expect("node must belong to its own block")
}

impl Ranker for FmrSolver {
    fn name(&self) -> &'static str {
        "FMR"
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn top_k(&self, query: usize, k: usize) -> Result<TopKResult> {
        check_k(k)?;
        let scores = self.scores(query)?;
        Ok(TopKResult::from_scores(&scores, k, Some(query)))
    }

    fn scores(&self, query: usize) -> Result<Vec<f64>> {
        check_query(query, self.n)?;
        let (block_idx, local_query) = self.locate[query];
        let block = &self.blocks[block_idx];
        let size = block.members.len();
        let mut q_local = vec![0.0; size];
        q_local[local_query] = self.params.query_scale();

        let x_local = match &block.solver {
            BlockSolver::Dense { inverse } => inverse.matvec(&q_local)?,
            BlockSolver::LowRank(lr) => lr.solve_shifted(self.params.alpha, &q_local)?,
        };

        // Nodes outside the query's block receive score zero (cross-block
        // edges were dropped).
        let mut scores = vec![0.0; self.n];
        for (local, &node) in block.members.iter().enumerate() {
            scores[node] = x_local[local];
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::InverseSolver;

    /// Two cliques with a weak bridge — the ideal case for FMR.
    fn two_cliques() -> Graph {
        let size = 8;
        let mut g = Graph::empty(2 * size);
        for base in [0, size] {
            for i in 0..size {
                for j in (i + 1)..size {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        g.add_edge(0, size, 0.01).unwrap();
        g
    }

    #[test]
    fn nearly_exact_when_partitions_are_clean() {
        let g = two_cliques();
        let params = MrParams::new(0.9).unwrap();
        let fmr = FmrSolver::new(
            &g,
            params,
            FmrConfig {
                num_clusters: 2,
                rank: 100,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(fmr.num_blocks(), 2);
        assert_eq!(fmr.dropped_edges(), 1);
        let exact = InverseSolver::new(&g, params).unwrap();
        let a = fmr.scores(3).unwrap();
        let b = exact.scores(3).unwrap();
        // Only the weak bridge is dropped, so scores inside the query block
        // are close to exact.
        for i in 0..8 {
            assert!((a[i] - b[i]).abs() < 0.01, "node {i}: {} vs {}", a[i], b[i]);
        }
        // The other block receives exactly zero.
        for i in 8..16 {
            assert_eq!(a[i], 0.0);
        }
    }

    #[test]
    fn low_rank_path_is_used_for_large_blocks() {
        let g = two_cliques();
        let params = MrParams::new(0.5).unwrap();
        let fmr = FmrSolver::new(
            &g,
            params,
            FmrConfig {
                num_clusters: 2,
                rank: 3, // force the low-rank path (blocks have 8 nodes > 40? no, 8 < 40 so dense)
                seed: 1,
            },
        )
        .unwrap();
        // Blocks of size 8 still use the dense path (small-block cut-off), so
        // scores must remain finite and well-formed.
        let scores = fmr.scores(0).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn top_k_stays_in_the_query_partition() {
        let g = two_cliques();
        let fmr = FmrSolver::new(&g, MrParams::default(), FmrConfig::default()).unwrap();
        let top = fmr.top_k(2, 5).unwrap();
        assert_eq!(top.len(), 5);
        for item in top.items() {
            assert!(item.node < 8);
        }
    }

    #[test]
    fn caller_supplied_clustering_is_respected() {
        let g = two_cliques();
        let clustering = Clustering::from_labels(&[0; 16]);
        let fmr = FmrSolver::with_clustering(
            &g,
            MrParams::new(0.9).unwrap(),
            FmrConfig {
                num_clusters: 1,
                rank: 100,
                seed: 3,
            },
            &clustering,
        )
        .unwrap();
        assert_eq!(fmr.num_blocks(), 1);
        assert_eq!(fmr.dropped_edges(), 0);
        // With a single exact block FMR equals the inverse solution.
        let exact = InverseSolver::new(&g, MrParams::new(0.9).unwrap()).unwrap();
        let a = fmr.scores(5).unwrap();
        let b = exact.scores(5).unwrap();
        assert!(mogul_sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-8);
    }

    #[test]
    fn validation() {
        let g = two_cliques();
        let fmr = FmrSolver::new(&g, MrParams::default(), FmrConfig::default()).unwrap();
        assert!(fmr.scores(99).is_err());
        assert!(fmr.top_k(0, 0).is_err());
        assert_eq!(fmr.name(), "FMR");
        assert_eq!(fmr.num_nodes(), 16);

        let mismatched = Clustering::from_labels(&[0, 1]);
        assert!(FmrSolver::with_clustering(
            &g,
            MrParams::default(),
            FmrConfig::default(),
            &mismatched
        )
        .is_err());
    }
}
