//! Shared Manifold Ranking parameters.

use crate::{CoreError, Result};

/// Global Manifold Ranking parameters shared by every solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrParams {
    /// The smoothing parameter `α` of the cost function (Equation (1)); the
    /// paper uses `α = 0.99` following Zhou et al.
    pub alpha: f64,
}

impl Default for MrParams {
    fn default() -> Self {
        MrParams { alpha: 0.99 }
    }
}

impl MrParams {
    /// Create parameters with the given `α`, validating `0 < α < 1`.
    pub fn new(alpha: f64) -> Result<Self> {
        if alpha.is_nan() || alpha <= 0.0 || alpha >= 1.0 {
            return Err(CoreError::InvalidInput(format!(
                "alpha must lie strictly between 0 and 1, got {alpha}"
            )));
        }
        Ok(MrParams { alpha })
    }

    /// The `(1 − α)` factor that scales the query vector in Equation (2).
    pub fn query_scale(&self) -> f64 {
        1.0 - self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let p = MrParams::default();
        assert_eq!(p.alpha, 0.99);
        assert!((p.query_scale() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(MrParams::new(0.5).is_ok());
        assert!(MrParams::new(0.0).is_err());
        assert!(MrParams::new(1.0).is_err());
        assert!(MrParams::new(-1.0).is_err());
        assert!(MrParams::new(f64::NAN).is_err());
    }
}
