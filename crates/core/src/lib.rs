//! # mogul-core
//!
//! Top-k Manifold Ranking: the **Mogul** algorithm of Fujiwara et al.
//! (*Scaling Manifold Ranking Based Image Retrieval*, VLDB 2014) together
//! with every baseline the paper compares against.
//!
//! Manifold Ranking scores the nodes of a k-NN graph with respect to a query
//! node as `x* = (1 − α)(I − α C^{-1/2} A C^{-1/2})^{-1} q` (Equation (2)).
//! The solvers in this crate compute (exactly or approximately) the top-k
//! nodes under that score:
//!
//! | Solver | Paper section | Complexity | Notes |
//! |---|---|---|---|
//! | [`exact::InverseSolver`] | §3 | `O(n³)` time, `O(n²)` space | dense inverse; the reference answer |
//! | [`iterative::IterativeSolver`] | §2 (Zhou et al.) | `O(n t)` | power iteration until convergence |
//! | [`fmr::FmrSolver`] | §2 (He et al.) | block-wise low rank | spectral partition + truncated eigendecomposition |
//! | [`emr::EmrSolver`] | §2 (Xu et al.) | `O(n d + d³)` | anchor graph + Woodbury identity |
//! | [`mogul::MogulIndex`] | §4 | `O(n)` | incomplete `LDLᵀ` + cluster pruning (the paper's contribution) |
//! | [`mogul::MogulIndex`] (exact mode) | §4.6.1 | `O(m)` | complete `LDLᵀ` (MogulE) |
//! | [`out_of_sample::OutOfSampleIndex`] | §4.6.2 | `O(n)` | queries outside the database |
//!
//! Beyond the paper, [`update`] makes the index **mutable after precompute**:
//! inserts and removals are applied as Woodbury low-rank corrections against
//! the existing factorization and published as immutable, epoch-versioned
//! [`update::IndexSnapshot`]s (the unit the `mogul-serve` crate swaps
//! atomically for zero-downtime updates). [`persist`] makes it **durable**:
//! a versioned, checksummed on-disk format (`MOG1`) that saves a complete
//! serving-ready index — factors, ordering, bounds, features, graph and the
//! clean-epoch updatable state — and loads it back with zero precompute and
//! bit-identical query answers. [`shard`] makes it **partitionable**: a
//! [`shard::ShardedIndex`] splits the corpus into `S` cluster-aligned
//! independent shards (parallel precompute, scatter-gather top-k with
//! lossless in-database shard skipping, per-shard rebuild debt, and a
//! checksummed multi-file manifest).
//!
//! All solvers implement the [`Ranker`] trait so the evaluation harness can
//! treat them uniformly.

#![deny(missing_docs)]
// Index-based loops mirror the forward/back-substitution recurrences of the paper.
#![allow(clippy::needless_range_loop)]

pub mod emr;
pub mod engine;
pub mod exact;
pub mod fmr;
pub mod iterative;
pub mod mogul;
pub mod out_of_sample;
pub mod params;
pub mod persist;
pub mod ranking;
pub mod shard;
pub mod topk;
pub mod update;
pub mod wal;

pub use emr::{EmrConfig, EmrSolver};
pub use engine::{RetrievalEngine, RetrievalEngineBuilder};
pub use exact::InverseSolver;
pub use fmr::{FmrConfig, FmrSolver};
pub use iterative::{IterativeConfig, IterativeSolver};
pub use mogul::{
    BatchWorkspace, Factorization, MogulConfig, MogulIndex, PrecomputeStats, SearchMode,
    SearchStats, SearchWorkspace, PANEL_WIDTH,
};
pub use out_of_sample::{OosWorkspace, OutOfSampleConfig, OutOfSampleIndex, OutOfSampleResult};
pub use params::MrParams;
pub use persist::{IndexFileInfo, PersistError};
pub use ranking::{RankedNode, Ranker, TopKResult};
pub use shard::{
    inspect_manifest, load_sharded, save_sharded, ShardManifestInfo, ShardRouter,
    ShardScatterStats, ShardedConfig, ShardedIndex, ShardedSnapshot, ShardedWorkspace,
};
pub use topk::{f64_sort_key, BoundedTopK};
pub use update::{
    IndexBuilder, IndexDelta, IndexSnapshot, RebuildDebt, RebuildPolicy, SnapshotWorkspace,
    UpdatableIndex, UpdateOp, UpdateReport,
};
pub use wal::{RecoveryOutcome, RecoveryReport, ReplayReport, Wal, WalError, WalOp, WalSync};

/// Errors produced by this crate (shared with the substrates).
pub use mogul_sparse::error::{Result, SparseError as CoreError};
