//! Mogul's top-k search (Algorithm 2 of the paper).
//!
//! Given the precomputed [`MogulIndex`], a query is answered in three steps:
//!
//! 1. Forward substitution of `L' y = q'` restricted to the query cluster
//!    `C_Q` and the border cluster `C_N` — every other entry of `y` is zero
//!    (Lemma 4).
//! 2. Back substitution of `U x' = y` for `C_N`, then for `C_Q`; these scores
//!    seed the top-k set `K` and its threshold `θ`.
//! 3. For every remaining cluster, the upper-bounding estimation
//!    `x̄'_{C_i}` (Section 4.3) is compared against `θ`; clusters that cannot
//!    contain an answer are skipped, the rest are scored via Lemma 5.
//!
//! The search also supports weighted multi-node query vectors, which is how
//! out-of-sample queries are processed (Section 4.6.2).
//!
//! Every entry point comes in two flavours: a convenient allocating form
//! ([`MogulIndex::search`], …) and a `*_in` form taking a caller-owned
//! [`SearchWorkspace`] so repeated queries reuse the `O(n)` scratch vectors —
//! the form the concurrent serving layer (`mogul-serve`) runs per worker.
//! Both produce bit-identical results.

use crate::mogul::index::{Factorization, MogulIndex};
use crate::ranking::{check_k, check_query, RankedNode, Ranker, TopKResult};
use crate::topk::BoundedTopK;
use crate::Result;
use mogul_graph::ordering::ClusterRange;
use std::cmp::Ordering as CmpOrdering;

/// How much of Mogul's machinery the search uses. The three modes correspond
/// to the three curves of Figure 5 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Full Algorithm 2: restricted substitution plus cluster pruning.
    Pruned,
    /// Restricted substitution (Lemmas 4–5) but no pruning: the scores of
    /// every cluster are computed ("W/O estimation" in Figure 5).
    NoPruning,
    /// Plain forward/back substitution over all nodes, ignoring the sparse
    /// structure ("Incomplete Cholesky" in Figure 5).
    FullSubstitution,
}

/// Counters describing how much work one search performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Interior clusters that were candidates for pruning.
    pub clusters_considered: usize,
    /// Clusters skipped thanks to the upper-bounding estimation.
    pub clusters_pruned: usize,
    /// Nodes whose approximate score was actually computed.
    pub nodes_scored: usize,
    /// Upper-bound evaluations performed.
    pub bound_evaluations: usize,
}

impl SearchStats {
    /// Fold another search's counters into this one.
    ///
    /// Scatter-gather over a sharded index answers one logical query with
    /// several per-shard searches; the caller-visible stats must be the sum
    /// of all of them, not whichever shard happened to finish last.
    pub fn merge(&mut self, other: &SearchStats) {
        self.clusters_considered += other.clusters_considered;
        self.clusters_pruned += other.clusters_pruned;
        self.nodes_scored += other.nodes_scored;
        self.bound_evaluations += other.bound_evaluations;
    }
}

/// Reusable per-query scratch for Algorithm 2.
///
/// One search touches three `O(n)` vectors (the densified query vector, the
/// forward-substitution result `y` and the score vector `x'`) plus a handful
/// of small per-query lists. Allocating them fresh per query is fine for
/// one-off use, but a serving loop answering thousands of queries per second
/// wants them reused: pass the same workspace to the `*_in` entry points
/// ([`MogulIndex::search_in`], [`MogulIndex::search_weighted_in`], …) and the
/// hot substitution/pruning path performs zero heap allocations after the
/// buffers have grown to the index size once.
///
/// A workspace is an inert buffer bag: it carries no index state, any
/// workspace works with any index, and a fresh workspace behaves identically
/// to a warm one (results are bit-identical either way).
#[derive(Debug, Clone, Default)]
pub struct SearchWorkspace {
    /// Densified (scattered) query vector `q'`, zeroed between queries.
    q_vec: Vec<f64>,
    /// Forward-substitution result `y` of `L' y = q'`.
    y: Vec<f64>,
    /// Score vector `x'` of `U x' = y`, zeroed between queries.
    x: Vec<f64>,
    /// Scaled sparse query entries `(index, (1-α)·w)`.
    q_scaled: Vec<(usize, f64)>,
    /// Permuted sparse query entries for weighted (multi-node) queries.
    permuted: Vec<(usize, f64)>,
    /// Cluster ranges visited by the restricted forward substitution.
    forward_ranges: Vec<ClusterRange>,
    /// Deduplicated interior clusters touched by the query.
    query_clusters: Vec<usize>,
    /// Backing storage of the top-k heap, recycled between queries.
    heap_buf: Vec<HeapEntry>,
    /// Scratch of the unrestricted [`MogulIndex::solve_ranking_system_in`]
    /// path (the `mogul_sparse::triangular::ldl_solve_into` intermediate).
    solve: mogul_sparse::SolveWorkspace,
}

impl SearchWorkspace {
    /// An empty workspace; buffers grow to the index size on first use.
    pub fn new() -> Self {
        SearchWorkspace::default()
    }

    /// A workspace whose three `O(n)` vectors are pre-sized for an index
    /// over `n` nodes (the small per-query lists still grow on first use).
    pub fn with_capacity(n: usize) -> Self {
        SearchWorkspace {
            q_vec: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            x: Vec::with_capacity(n),
            ..SearchWorkspace::default()
        }
    }
}

/// Top-k collector mirroring Algorithm 2's set `K`: it starts with `k`
/// implicit dummy nodes of score 0, so the threshold `θ` is never negative
/// and nodes with negative approximate scores are ignored. Built on the
/// shared [`BoundedTopK`] selector; the batched panel search keeps one
/// collector per lane.
pub(crate) struct TopKCollector {
    inner: BoundedTopK<HeapEntry>,
    /// Cached threshold `θ` — the hot offer path is dominated by rejected
    /// offers, which only need one comparison against this field; it is
    /// recomputed from the heap only when an offer is accepted.
    threshold: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct HeapEntry {
    score: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed on score so the binary max-heap acts as a min-heap on score.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(CmpOrdering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

impl TopKCollector {
    /// Build a collector on top of a recycled heap buffer (cleared here); the
    /// buffer is handed back by [`TopKCollector::finish`].
    pub(crate) fn with_buffer(k: usize, buf: Vec<HeapEntry>) -> Self {
        TopKCollector {
            inner: BoundedTopK::with_buffer(k, buf),
            threshold: 0.0,
        }
    }

    /// Current threshold `θ`: the lowest score in `K` (0 while dummies remain).
    pub(crate) fn threshold(&self) -> f64 {
        self.threshold
    }

    #[inline]
    pub(crate) fn offer(&mut self, node: usize, score: f64) {
        if !score.is_finite() || score < self.threshold {
            return;
        }
        if self.inner.offer(HeapEntry { score, node }) && self.inner.is_full() {
            self.threshold = self.inner.worst().map_or(0.0, |e| e.score);
        }
    }

    /// Extract the result and return the (cleared) heap buffer for reuse.
    pub(crate) fn finish(self) -> (TopKResult, Vec<HeapEntry>) {
        let mut buf = self.inner.into_unsorted_vec();
        let result = TopKResult::new(
            buf.iter()
                .map(|e| RankedNode {
                    node: e.node,
                    score: e.score,
                })
                .collect(),
        );
        buf.clear();
        (result, buf)
    }
}

impl MogulIndex {
    /// Top-k search for an in-database query node using the full Algorithm 2
    /// (restricted substitution + pruning). The query node itself is excluded
    /// from the result.
    ///
    /// Allocates fresh scratch per call; loops that answer many queries
    /// should reuse a [`SearchWorkspace`] via [`MogulIndex::search_in`].
    pub fn search(&self, query: usize, k: usize) -> Result<TopKResult> {
        self.search_in(&mut SearchWorkspace::new(), query, k)
    }

    /// [`MogulIndex::search`] with caller-owned scratch: bit-identical
    /// results, zero heap allocation on the substitution/pruning path once
    /// the workspace is warm.
    pub fn search_in(
        &self,
        ws: &mut SearchWorkspace,
        query: usize,
        k: usize,
    ) -> Result<TopKResult> {
        Ok(self
            .search_with_stats_in(ws, query, k, SearchMode::Pruned)?
            .0)
    }

    /// Top-k search with an explicit [`SearchMode`] and work counters.
    pub fn search_with_stats(
        &self,
        query: usize,
        k: usize,
        mode: SearchMode,
    ) -> Result<(TopKResult, SearchStats)> {
        self.search_with_stats_in(&mut SearchWorkspace::new(), query, k, mode)
    }

    /// [`MogulIndex::search_with_stats`] with caller-owned scratch.
    pub fn search_with_stats_in(
        &self,
        ws: &mut SearchWorkspace,
        query: usize,
        k: usize,
        mode: SearchMode,
    ) -> Result<(TopKResult, SearchStats)> {
        check_query(query, self.num_nodes())?;
        check_k(k)?;
        let permuted_query = self.ordering.permutation.new_index(query);
        ws.permuted.clear();
        ws.permuted.push((permuted_query, 1.0));
        self.search_permuted(ws, k, mode, Some(permuted_query))
    }

    /// Top-k search for a weighted query vector given in *original* node ids
    /// (used for out-of-sample queries where `q` holds the query's neighbours).
    pub fn search_weighted(
        &self,
        query_weights: &[(usize, f64)],
        k: usize,
        mode: SearchMode,
    ) -> Result<(TopKResult, SearchStats)> {
        self.search_weighted_in(&mut SearchWorkspace::new(), query_weights, k, mode)
    }

    /// [`MogulIndex::search_weighted`] with caller-owned scratch.
    pub fn search_weighted_in(
        &self,
        ws: &mut SearchWorkspace,
        query_weights: &[(usize, f64)],
        k: usize,
        mode: SearchMode,
    ) -> Result<(TopKResult, SearchStats)> {
        check_k(k)?;
        ws.permuted.clear();
        for &(node, weight) in query_weights {
            check_query(node, self.num_nodes())?;
            if !weight.is_finite() {
                return Err(crate::CoreError::InvalidInput(format!(
                    "query weight for node {node} is not finite"
                )));
            }
            ws.permuted
                .push((self.ordering.permutation.new_index(node), weight));
        }
        self.search_permuted(ws, k, mode, None)
    }

    /// Approximate ranking scores of **all** nodes (original node order),
    /// computed without pruning. This is what the accuracy experiments
    /// (P@k, retrieval precision) consume.
    pub fn all_scores(&self, query: usize) -> Result<Vec<f64>> {
        self.all_scores_in(&mut SearchWorkspace::new(), query)
    }

    /// [`MogulIndex::all_scores`] with caller-owned scratch (the returned
    /// score vector itself is still freshly allocated).
    pub fn all_scores_in(&self, ws: &mut SearchWorkspace, query: usize) -> Result<Vec<f64>> {
        check_query(query, self.num_nodes())?;
        let permuted_query = self.ordering.permutation.new_index(query);
        ws.permuted.clear();
        ws.permuted.push((permuted_query, 1.0));
        self.scores_permuted(ws)?;
        self.ordering.permutation.unpermute_vec(&ws.x)
    }

    /// Solve the factorized ranking system `W x = rhs` for an arbitrary dense
    /// right-hand side in **original** node order.
    ///
    /// The solve runs in permuted space (`L D Lᵀ x' = P rhs`, full forward
    /// and back substitution — no restriction, no pruning) and unpermutes the
    /// result. With the complete (MogulE) factorization this is the exact
    /// `W⁻¹ rhs`; with the incomplete factorization it is the same
    /// approximation every search in this index is built on.
    ///
    /// This is the base-solver entry point of the incremental-update module
    /// ([`crate::update`]): inserts and removals are applied as Woodbury
    /// corrections *around* this solve, and note that no `(1 − α)` query
    /// scaling is applied here — callers scale the right-hand side.
    pub fn solve_ranking_system(&self, rhs: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.solve_ranking_system_in(&mut SearchWorkspace::new(), rhs, &mut out)?;
        Ok(out)
    }

    /// [`MogulIndex::solve_ranking_system`] with caller-owned scratch and
    /// output buffer: bit-identical results, zero allocation once warm.
    pub fn solve_ranking_system_in(
        &self,
        ws: &mut SearchWorkspace,
        rhs: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let n = self.num_nodes();
        if rhs.len() != n {
            return Err(crate::CoreError::DimensionMismatch {
                op: "ranking system solve",
                left: (n, 1),
                right: (rhs.len(), 1),
            });
        }
        // Permute the right-hand side: q'[P(i)] = rhs[i].
        ws.q_vec.clear();
        ws.q_vec.resize(n, 0.0);
        for (old, &value) in rhs.iter().enumerate() {
            ws.q_vec[self.ordering.permutation.new_index(old)] = value;
        }
        // Full two-phase substitution `L D Lᵀ x' = q'` — the shared sparse
        // kernel, not a local re-implementation.
        mogul_sparse::triangular::ldl_solve_into(
            &self.factors.l,
            &self.factors.u,
            &self.factors.d,
            &ws.q_vec,
            &mut ws.solve,
            &mut ws.x,
        )?;
        // Unpermute: out[i] = x'[P(i)].
        out.clear();
        out.resize(n, 0.0);
        for (new, &value) in ws.x.iter().enumerate() {
            out[self.ordering.permutation.old_index(new)] = value;
        }
        Ok(())
    }

    // ----------------------------------------------------------------------
    // Internals
    // ----------------------------------------------------------------------

    /// Forward substitution `L' y = q'` restricted to `ranges` (ascending),
    /// writing into caller-owned buffers: `q_vec` receives the densified
    /// query vector and `y` the substitution result (both zeroed here).
    fn forward_selected(
        &self,
        q_scaled: &[(usize, f64)],
        ranges: &[ClusterRange],
        q_vec: &mut Vec<f64>,
        y: &mut Vec<f64>,
    ) {
        let n = self.num_nodes();
        q_vec.clear();
        q_vec.resize(n, 0.0);
        for &(idx, value) in q_scaled {
            q_vec[idx] += value;
        }
        y.clear();
        y.resize(n, 0.0);
        let d = &self.factors.d;
        for range in ranges {
            for i in range.indices() {
                let (cols, vals) = self.factors.l.row(i);
                let mut sum = q_vec[i];
                for (&j, &v) in cols.iter().zip(vals.iter()) {
                    if j < i {
                        sum -= v * d[j] * y[j];
                    }
                }
                y[i] = sum / d[i];
            }
        }
    }

    /// Back substitution `U x' = y` restricted to one cluster range; assumes
    /// all later ranges this cluster couples to (i.e. the border) are already
    /// in `x`.
    fn back_substitute_range(&self, range: ClusterRange, y: &[f64], x: &mut [f64]) {
        for i in range.indices().rev() {
            let (cols, vals) = self.factors.u.row(i);
            let mut sum = y[i];
            for (&j, &v) in cols.iter().zip(vals.iter()) {
                if j > i {
                    sum -= v * x[j];
                }
            }
            x[i] = sum;
        }
    }

    /// The interior clusters touched by the query vector (deduplicated,
    /// ascending), excluding the border cluster, written into `out`.
    fn query_clusters_into(&self, q_entries: &[(usize, f64)], out: &mut Vec<usize>) {
        let border_idx = self.ordering.border_cluster();
        out.clear();
        out.extend(
            q_entries
                .iter()
                .map(|&(idx, _)| self.ordering.cluster_of_permuted(idx))
                .filter(|&c| c != border_idx),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Scale the query entries in `ws.permuted` by `(1 − α)` into
    /// `ws.q_scaled` and collect the touched interior clusters.
    fn prepare_query(&self, ws: &mut SearchWorkspace) {
        let scale = self.params.query_scale();
        ws.q_scaled.clear();
        ws.q_scaled
            .extend(ws.permuted.iter().map(|&(idx, w)| (idx, w * scale)));
        self.query_clusters_into(&ws.q_scaled, &mut ws.query_clusters);
    }

    /// Scores of all nodes in permuted order (left in `ws.x`), computed with
    /// the restricted forward pass and an unrestricted (every cluster)
    /// backward pass. The query entries are read from `ws.permuted`.
    fn scores_permuted(&self, ws: &mut SearchWorkspace) -> Result<()> {
        let n = self.num_nodes();
        if n == 0 {
            ws.x.clear();
            return Ok(());
        }
        self.prepare_query(ws);
        let border_idx = self.ordering.border_cluster();
        ws.forward_ranges.clear();
        for &c in &ws.query_clusters {
            ws.forward_ranges.push(self.ordering.clusters[c]);
        }
        ws.forward_ranges.push(self.ordering.clusters[border_idx]);
        self.forward_selected(&ws.q_scaled, &ws.forward_ranges, &mut ws.q_vec, &mut ws.y);

        ws.x.clear();
        ws.x.resize(n, 0.0);
        self.back_substitute_range(self.ordering.clusters[border_idx], &ws.y, &mut ws.x);
        for (ci, &range) in self.ordering.clusters.iter().enumerate() {
            if ci == border_idx {
                continue;
            }
            self.back_substitute_range(range, &ws.y, &mut ws.x);
        }
        Ok(())
    }

    /// Algorithm 2 proper, over the permuted weighted query vector held in
    /// `ws.permuted`.
    fn search_permuted(
        &self,
        ws: &mut SearchWorkspace,
        k: usize,
        mode: SearchMode,
        exclude_permuted: Option<usize>,
    ) -> Result<(TopKResult, SearchStats)> {
        let n = self.num_nodes();
        let mut stats = SearchStats::default();
        if n == 0 {
            return Ok((TopKResult::default(), stats));
        }
        self.prepare_query(ws);

        let mut collector = TopKCollector::with_buffer(k, std::mem::take(&mut ws.heap_buf));
        let offer_range = |collector: &mut TopKCollector, range: ClusterRange, x: &[f64]| {
            for i in range.indices() {
                if Some(i) == exclude_permuted {
                    continue;
                }
                collector.offer(self.ordering.permutation.old_index(i), x[i]);
            }
        };
        let finish = |collector: TopKCollector, ws: &mut SearchWorkspace, stats| {
            let (result, buf) = collector.finish();
            ws.heap_buf = buf;
            Ok((result, stats))
        };

        if mode == SearchMode::FullSubstitution {
            // Ignore the sparse structure entirely: one pass of forward and
            // back substitution over every node.
            let full = ClusterRange { start: 0, len: n };
            ws.forward_ranges.clear();
            ws.forward_ranges.push(full);
            self.forward_selected(&ws.q_scaled, &ws.forward_ranges, &mut ws.q_vec, &mut ws.y);
            ws.x.clear();
            ws.x.resize(n, 0.0);
            self.back_substitute_range(full, &ws.y, &mut ws.x);
            stats.nodes_scored = n;
            offer_range(&mut collector, full, &ws.x);
            return finish(collector, ws, stats);
        }

        let border_idx = self.ordering.border_cluster();
        let border_range = self.ordering.clusters[border_idx];

        // Forward substitution restricted to C_Q ∪ C_N (Lemma 4).
        ws.forward_ranges.clear();
        for &c in &ws.query_clusters {
            ws.forward_ranges.push(self.ordering.clusters[c]);
        }
        ws.forward_ranges.push(border_range);
        self.forward_selected(&ws.q_scaled, &ws.forward_ranges, &mut ws.q_vec, &mut ws.y);

        // Back substitution for C_N first (its scores feed every other
        // cluster via Lemma 5), then for the query clusters.
        ws.x.clear();
        ws.x.resize(n, 0.0);
        self.back_substitute_range(border_range, &ws.y, &mut ws.x);
        stats.nodes_scored += border_range.len;
        for &c in &ws.query_clusters {
            let range = self.ordering.clusters[c];
            self.back_substitute_range(range, &ws.y, &mut ws.x);
            stats.nodes_scored += range.len;
        }
        offer_range(&mut collector, border_range, &ws.x);
        for &c in &ws.query_clusters {
            offer_range(&mut collector, self.ordering.clusters[c], &ws.x);
        }

        // Remaining interior clusters: prune or score.
        for (ci, &range) in self.ordering.clusters.iter().enumerate() {
            if ci == border_idx || ws.query_clusters.contains(&ci) || range.is_empty() {
                continue;
            }
            stats.clusters_considered += 1;
            if mode == SearchMode::Pruned {
                stats.bound_evaluations += 1;
                let x = &ws.x;
                let estimate = self.bounds.cluster_estimate(ci, range.len, |j| x[j]);
                if estimate < collector.threshold() {
                    stats.clusters_pruned += 1;
                    continue;
                }
            }
            self.back_substitute_range(range, &ws.y, &mut ws.x);
            stats.nodes_scored += range.len;
            offer_range(&mut collector, range, &ws.x);
        }

        finish(collector, ws, stats)
    }
}

impl Ranker for MogulIndex {
    fn name(&self) -> &'static str {
        match self.factorization {
            Factorization::Incomplete => "Mogul",
            Factorization::Complete => "MogulE",
        }
    }

    fn num_nodes(&self) -> usize {
        self.ordering.len()
    }

    fn top_k(&self, query: usize, k: usize) -> Result<TopKResult> {
        self.search(query, k)
    }

    fn scores(&self, query: usize) -> Result<Vec<f64>> {
        self.all_scores(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::InverseSolver;
    use crate::mogul::index::MogulConfig;
    use crate::params::MrParams;
    use mogul_data::coil::{coil_like, CoilLikeConfig};
    use mogul_graph::knn::{knn_graph, KnnConfig};
    use mogul_graph::Graph;

    fn clique_chain() -> Graph {
        // Three cliques of 5 nodes connected in a chain by weak edges.
        let clique = 5;
        let groups = 3;
        let mut g = Graph::empty(clique * groups);
        for c in 0..groups {
            let base = c * clique;
            for i in 0..clique {
                for j in (i + 1)..clique {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        g.add_edge(4, 5, 0.05).unwrap();
        g.add_edge(9, 10, 0.05).unwrap();
        g
    }

    fn coil_graph() -> (mogul_data::Dataset, Graph) {
        let data = coil_like(&CoilLikeConfig {
            num_objects: 6,
            poses_per_object: 18,
            dim: 12,
            noise: 0.02,
            ..Default::default()
        })
        .unwrap();
        let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
        (data, graph)
    }

    #[test]
    fn pruned_and_unpruned_searches_agree() {
        // Lemma 7 safety: pruning never changes the returned top-k set.
        let (_, graph) = coil_graph();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        for query in [0usize, 17, 40, 90] {
            for k in [1usize, 5, 10] {
                let (pruned, stats_p) = index
                    .search_with_stats(query, k, SearchMode::Pruned)
                    .unwrap();
                let (unpruned, _) = index
                    .search_with_stats(query, k, SearchMode::NoPruning)
                    .unwrap();
                let (full, _) = index
                    .search_with_stats(query, k, SearchMode::FullSubstitution)
                    .unwrap();
                assert_eq!(pruned.nodes(), unpruned.nodes(), "query {query}, k {k}");
                assert_eq!(pruned.nodes(), full.nodes(), "query {query}, k {k}");
                assert!(stats_p.nodes_scored <= index.num_nodes());
            }
        }
    }

    #[test]
    fn pruning_skips_work_on_clustered_graphs() {
        let (_, graph) = coil_graph();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        let mut total_pruned = 0usize;
        let mut total_considered = 0usize;
        for query in (0..index.num_nodes()).step_by(9) {
            let (_, stats) = index
                .search_with_stats(query, 5, SearchMode::Pruned)
                .unwrap();
            total_pruned += stats.clusters_pruned;
            total_considered += stats.clusters_considered;
        }
        assert!(total_considered > 0);
        assert!(
            total_pruned > 0,
            "expected at least some clusters to be pruned ({total_pruned}/{total_considered})"
        );
    }

    #[test]
    fn approximate_scores_track_the_exact_solution() {
        let g = clique_chain();
        let params = MrParams::new(0.9).unwrap();
        let exact = InverseSolver::new(&g, params).unwrap();
        let index = MogulIndex::build(
            &g,
            MogulConfig {
                params,
                ..MogulConfig::default()
            },
        )
        .unwrap();
        for query in [0usize, 7, 14] {
            let approx = index.all_scores(query).unwrap();
            let reference = exact.scores(query).unwrap();
            let err = mogul_sparse::vector::max_abs_diff(&approx, &reference).unwrap();
            assert!(err < 0.02, "query {query}: approximation error {err}");
        }
    }

    #[test]
    fn exact_mode_matches_inverse_solver_exactly() {
        let g = clique_chain();
        let params = MrParams::default();
        let exact = InverseSolver::new(&g, params).unwrap();
        let mogul_e = MogulIndex::build(
            &g,
            MogulConfig {
                params,
                ..MogulConfig::exact()
            },
        )
        .unwrap();
        assert_eq!(mogul_e.name(), "MogulE");
        for query in 0..g.num_nodes() {
            let a = mogul_e.all_scores(query).unwrap();
            let b = exact.scores(query).unwrap();
            assert!(
                mogul_sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-9,
                "MogulE must be exact (query {query})"
            );
            // The returned set is a valid top-4 of the exact scores: every
            // selected node scores at least as high (up to fp noise from the
            // dense inverse) as the true 4th-best non-query node.
            let top_a = mogul_e.top_k(query, 4).unwrap();
            let mut reference: Vec<f64> = b
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != query)
                .map(|(_, &s)| s)
                .collect();
            reference.sort_by(|x, y| y.partial_cmp(x).unwrap());
            let kth_best = reference[3];
            for item in top_a.items() {
                assert!(
                    b[item.node] >= kth_best - 1e-9,
                    "query {query}: node {} (exact score {}) is not a valid top-4 member (threshold {kth_best})",
                    item.node,
                    b[item.node]
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_allocating_search() {
        // One workspace reused across queries, k values, modes and even two
        // different indices (Mogul and MogulE) must reproduce the allocating
        // API bit for bit — scores compared with exact equality.
        let (_, graph) = coil_graph();
        let approx = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        let exact = MogulIndex::build(&graph, MogulConfig::exact()).unwrap();
        let mut ws = SearchWorkspace::new();
        for index in [&approx, &exact] {
            for query in [0usize, 13, 51, 107] {
                for mode in [
                    SearchMode::Pruned,
                    SearchMode::NoPruning,
                    SearchMode::FullSubstitution,
                ] {
                    let (fresh, fresh_stats) = index.search_with_stats(query, 5, mode).unwrap();
                    let (reused, reused_stats) =
                        index.search_with_stats_in(&mut ws, query, 5, mode).unwrap();
                    assert_eq!(fresh, reused, "query {query}, mode {mode:?}");
                    assert_eq!(fresh_stats, reused_stats);
                }
                assert_eq!(
                    index.all_scores(query).unwrap(),
                    index.all_scores_in(&mut ws, query).unwrap()
                );
            }
            let weighted = [(3usize, 0.5), (20usize, 0.5)];
            let (fresh, _) = index
                .search_weighted(&weighted, 4, SearchMode::Pruned)
                .unwrap();
            let (reused, _) = index
                .search_weighted_in(&mut ws, &weighted, 4, SearchMode::Pruned)
                .unwrap();
            assert_eq!(fresh, reused);
        }
        // Workspaces presized for a larger index still behave identically.
        let mut big = SearchWorkspace::with_capacity(10_000);
        assert_eq!(
            approx.search(1, 3).unwrap(),
            approx.search_in(&mut big, 1, 3).unwrap()
        );
    }

    #[test]
    fn solve_ranking_system_matches_direct_solve() {
        let g = clique_chain();
        let params = MrParams::default();
        let adjacency = g.adjacency_matrix();
        let w = mogul_graph::adjacency::ranking_system_matrix(&adjacency, params.alpha).unwrap();
        let exact = MogulIndex::build(
            &g,
            MogulConfig {
                params,
                ..MogulConfig::exact()
            },
        )
        .unwrap();
        let approx = MogulIndex::build(
            &g,
            MogulConfig {
                params,
                ..MogulConfig::default()
            },
        )
        .unwrap();
        let mut rhs = vec![0.0; g.num_nodes()];
        rhs[3] = 1.0;
        rhs[11] = -0.5;
        // Complete factorization: exact inverse application.
        let x = exact.solve_ranking_system(&rhs).unwrap();
        let x_ref = w.to_dense().solve(&rhs).unwrap();
        assert!(mogul_sparse::vector::max_abs_diff(&x, &x_ref).unwrap() < 1e-9);
        // Incomplete factorization: the usual approximation quality.
        let x_approx = approx.solve_ranking_system(&rhs).unwrap();
        assert!(mogul_sparse::vector::max_abs_diff(&x_approx, &x_ref).unwrap() < 0.05);
        // Workspace variant is bit-identical and validation rejects bad rhs.
        let mut ws = SearchWorkspace::new();
        let mut out = Vec::new();
        exact
            .solve_ranking_system_in(&mut ws, &rhs, &mut out)
            .unwrap();
        assert_eq!(x, out);
        assert!(exact.solve_ranking_system(&[1.0]).is_err());
    }

    #[test]
    fn retrieval_stays_within_the_query_clique() {
        let g = clique_chain();
        let index = MogulIndex::build(&g, MogulConfig::default()).unwrap();
        let top = index.search(2, 4).unwrap();
        assert_eq!(top.len(), 4);
        assert!(!top.contains(2));
        for item in top.items() {
            assert!(item.node < 5, "top-4 must stay inside the query clique");
        }
    }

    #[test]
    fn weighted_multi_node_queries_blend_results() {
        let g = clique_chain();
        let index = MogulIndex::build(&g, MogulConfig::default()).unwrap();
        // Query weights concentrated on clique 0 should retrieve clique 0.
        let (top, _) = index
            .search_weighted(&[(0, 0.6), (1, 0.4)], 3, SearchMode::Pruned)
            .unwrap();
        for item in top.items() {
            assert!(item.node < 5);
        }
        // Invalid weights are rejected.
        assert!(index
            .search_weighted(&[(0, f64::NAN)], 3, SearchMode::Pruned)
            .is_err());
        assert!(index
            .search_weighted(&[(999, 1.0)], 3, SearchMode::Pruned)
            .is_err());
    }

    #[test]
    fn ranker_interface_and_validation() {
        let g = clique_chain();
        let index = MogulIndex::build(&g, MogulConfig::default()).unwrap();
        assert_eq!(index.name(), "Mogul");
        assert_eq!(Ranker::num_nodes(&index), 15);
        assert!(index.search(99, 3).is_err());
        assert!(index.search(0, 0).is_err());
        let scores = index.scores(0).unwrap();
        assert_eq!(scores.len(), 15);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn scores_are_query_dominated_and_nonnegative_on_knn_graphs() {
        let (_, graph) = coil_graph();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        let scores = index.all_scores(10).unwrap();
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (scores[10] - max).abs() < 1e-9,
            "query should score highest"
        );
        // Approximation can introduce small negative values but nothing large.
        assert!(scores.iter().all(|&s| s > -1e-3));
    }

    #[test]
    fn retrieval_precision_against_ground_truth_labels() {
        let (data, graph) = coil_graph();
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        let mut correct = 0usize;
        let mut total = 0usize;
        for query in (0..data.len()).step_by(7) {
            let top = index.search(query, 5).unwrap();
            for node in top.nodes() {
                total += 1;
                if data.label(node) == data.label(query) {
                    correct += 1;
                }
            }
        }
        let precision = correct as f64 / total as f64;
        assert!(
            precision > 0.9,
            "retrieval precision should exceed 90% as in the paper, got {precision}"
        );
    }
}
