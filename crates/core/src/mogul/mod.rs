//! **Mogul**: O(n) top-k Manifold Ranking (Section 4 of the paper).
//!
//! Mogul combines two ideas:
//!
//! 1. **Approximate score computation** (Section 4.2): the system matrix
//!    `W = I − α C'^{-1/2} A' C'^{-1/2}` is factorized with Incomplete
//!    Cholesky (`L D Lᵀ`, pattern fixed to `W`) after the cluster-aware node
//!    permutation of Algorithm 1, so scores follow from forward and back
//!    substitution over `O(n)` non-zeros (Equations (4)–(7), Lemmas 1–2).
//! 2. **Pruning by upper-bounding estimation** (Section 4.3): thanks to the
//!    singly-bordered block-diagonal structure of `L` (Lemma 3), scores of a
//!    whole cluster can be upper-bounded from the border scores alone
//!    (Definitions 1–2, Lemmas 6–7); clusters whose bound falls below the
//!    current top-k threshold are skipped entirely (Algorithm 2).
//!
//! The same machinery with the *complete* factorization (no dropped fill-in)
//! is **MogulE** (Section 4.6.1), which returns exactly the inverse-matrix
//! answer. Out-of-sample queries are handled by
//! [`crate::out_of_sample::OutOfSampleIndex`].

mod batch;
mod bounds;
mod index;
mod search;

pub use batch::{BatchWorkspace, PANEL_WIDTH};
pub use bounds::ClusterBounds;
pub use index::{Factorization, MogulConfig, MogulIndex, PrecomputeStats};
pub use search::{SearchMode, SearchStats, SearchWorkspace};
