//! Mogul's query-independent precomputation (Sections 4.2.1–4.2.2).
//!
//! Everything here happens once per database: cluster the k-NN graph, derive
//! the node permutation of Algorithm 1, permute `W = I − α C^{-1/2} A C^{-1/2}`,
//! factorize it (`L D Lᵀ`, incomplete or complete), and precompute the
//! per-cluster quantities of the upper-bounding estimation. Queries are then
//! answered by [`super::search`].

use crate::mogul::bounds::ClusterBounds;
use crate::params::MrParams;
use crate::Result;
use mogul_graph::adjacency::ranking_system_matrix;
use mogul_graph::clustering::modularity::{modularity_clustering, ModularityConfig};
use mogul_graph::ordering::{mogul_ordering, NodeOrdering};
use mogul_graph::Graph;
use mogul_sparse::ichol::{incomplete_ldl, LdlFactors};
use mogul_sparse::ldl::complete_ldl;
use mogul_sparse::CsrMatrix;
use std::time::Instant;

/// Which `L D Lᵀ` factorization the index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Factorization {
    /// Incomplete Cholesky restricted to the pattern of `W` — the default
    /// Mogul configuration (approximate scores, smallest factors).
    Incomplete,
    /// Complete ("Modified Cholesky") factorization with fill-in — the MogulE
    /// extension of Section 4.6.1 (exact scores, larger factors).
    Complete,
}

/// Configuration of the index construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MogulConfig {
    /// Manifold Ranking parameters.
    pub params: MrParams,
    /// Which factorization to use.
    pub factorization: Factorization,
    /// Modularity-clustering configuration used by Algorithm 1 when the
    /// caller does not supply an ordering.
    pub clustering: ModularityConfig,
}

impl Default for MogulConfig {
    fn default() -> Self {
        MogulConfig {
            params: MrParams::default(),
            factorization: Factorization::Incomplete,
            clustering: ModularityConfig::default(),
        }
    }
}

impl MogulConfig {
    /// The MogulE (exact) configuration with default parameters.
    pub fn exact() -> Self {
        MogulConfig {
            factorization: Factorization::Complete,
            ..MogulConfig::default()
        }
    }
}

/// Wall-clock breakdown and size statistics of the precomputation, used by
/// the Figure 8 experiment and the memory-cost discussion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecomputeStats {
    /// Seconds spent clustering the graph and building the permutation
    /// (zero when a precomputed ordering was supplied).
    pub ordering_secs: f64,
    /// Seconds spent assembling and permuting `W`.
    pub assembly_secs: f64,
    /// Seconds spent in the `L D Lᵀ` factorization.
    pub factorization_secs: f64,
    /// Seconds spent precomputing the upper-bound quantities.
    pub bounds_secs: f64,
    /// Non-zeros stored in `L` (including the unit diagonal).
    pub l_nnz: usize,
    /// Number of pivots the incomplete factorization had to boost
    /// (always 0 for the complete factorization).
    pub boosted_pivots: usize,
    /// Fill-in of the complete factorization (0 for the incomplete one).
    pub fill_in: usize,
}

impl PrecomputeStats {
    /// Total precomputation time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.ordering_secs + self.assembly_secs + self.factorization_secs + self.bounds_secs
    }
}

/// The Mogul search index: permutation, factors and pruning metadata.
#[derive(Debug, Clone)]
pub struct MogulIndex {
    pub(crate) params: MrParams,
    pub(crate) factorization: Factorization,
    pub(crate) ordering: NodeOrdering,
    pub(crate) factors: LdlFactors,
    pub(crate) bounds: ClusterBounds,
    pub(crate) stats: PrecomputeStats,
}

impl MogulIndex {
    /// Build the index with the default pipeline: modularity clustering →
    /// Algorithm 1 ordering → permuted factorization → bound precomputation.
    pub fn build(graph: &Graph, config: MogulConfig) -> Result<Self> {
        let start = Instant::now();
        let clustering = modularity_clustering(graph, &config.clustering);
        let ordering = mogul_ordering(graph, &clustering)?;
        let ordering_secs = start.elapsed().as_secs_f64();
        Self::build_with_ordering_timed(graph, config, ordering, ordering_secs)
    }

    /// Build the index from a caller-supplied node ordering (used for the
    /// "Random" ordering ablations of Figures 6 and 8, and by tests).
    pub fn build_with_ordering(
        graph: &Graph,
        config: MogulConfig,
        ordering: NodeOrdering,
    ) -> Result<Self> {
        Self::build_with_ordering_timed(graph, config, ordering, 0.0)
    }

    fn build_with_ordering_timed(
        graph: &Graph,
        config: MogulConfig,
        ordering: NodeOrdering,
        ordering_secs: f64,
    ) -> Result<Self> {
        let n = graph.num_nodes();
        if ordering.len() != n {
            return Err(crate::CoreError::InvalidInput(format!(
                "ordering covers {} nodes but the graph has {n}",
                ordering.len()
            )));
        }

        let assembly_start = Instant::now();
        let adjacency = graph.adjacency_matrix();
        let w = ranking_system_matrix(&adjacency, config.params.alpha)?;
        let w_permuted = w.permute_symmetric(&ordering.permutation)?;
        let assembly_secs = assembly_start.elapsed().as_secs_f64();

        let fact_start = Instant::now();
        let (factors, boosted_pivots, fill_in) = match config.factorization {
            Factorization::Incomplete => {
                let f = incomplete_ldl(&w_permuted)?;
                let boosted = f.boosted_pivots;
                (f, boosted, 0)
            }
            Factorization::Complete => {
                let f = complete_ldl(&w_permuted)?;
                let fill = f.fill_in();
                (f.factors, 0, fill)
            }
        };
        let factorization_secs = fact_start.elapsed().as_secs_f64();

        let bounds_start = Instant::now();
        let bounds = ClusterBounds::precompute(&factors.u, &ordering);
        let bounds_secs = bounds_start.elapsed().as_secs_f64();

        let stats = PrecomputeStats {
            ordering_secs,
            assembly_secs,
            factorization_secs,
            bounds_secs,
            l_nnz: factors.l.nnz(),
            boosted_pivots,
            fill_in,
        };

        Ok(MogulIndex {
            params: config.params,
            factorization: config.factorization,
            ordering,
            factors,
            bounds,
            stats,
        })
    }

    /// Number of nodes in the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.ordering.len()
    }

    /// Manifold Ranking parameters baked into the index.
    pub fn params(&self) -> MrParams {
        self.params
    }

    /// Which factorization the index uses.
    pub fn factorization(&self) -> Factorization {
        self.factorization
    }

    /// The node ordering (permutation + cluster layout) of Algorithm 1.
    pub fn ordering(&self) -> &NodeOrdering {
        &self.ordering
    }

    /// The lower-triangular factor `L` in the permuted index space (used by
    /// the Figure 6 sparsity-pattern experiment).
    pub fn factor_l(&self) -> &CsrMatrix {
        &self.factors.l
    }

    /// The diagonal factor `D`.
    pub fn factor_d(&self) -> &[f64] {
        &self.factors.d
    }

    /// Precomputation statistics (time breakdown, factor sizes).
    pub fn precompute_stats(&self) -> PrecomputeStats {
        self.stats
    }

    /// Estimated memory footprint of the index in bytes: the factors
    /// (`L`, `U`, `D`), the permutation and the bound metadata — all `O(n)`
    /// structures (Theorem 3).
    pub fn memory_bytes(&self) -> usize {
        let idx = std::mem::size_of::<usize>();
        let val = std::mem::size_of::<f64>();
        let l = self.factors.l.nnz() * (idx + val) + self.factors.l.nrows() * idx;
        let u = self.factors.u.nnz() * (idx + val) + self.factors.u.nrows() * idx;
        let d = self.factors.d.len() * val;
        let perm = 2 * self.ordering.len() * idx;
        let bounds: usize = (0..self.ordering.num_clusters())
            .map(|c| self.bounds.border_columns(c).len() * (idx + val) + val)
            .sum();
        l + u + d + perm + bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_graph::ordering::random_ordering;

    fn two_cliques() -> Graph {
        let size = 6;
        let mut g = Graph::empty(2 * size);
        for base in [0, size] {
            for i in 0..size {
                for j in (i + 1)..size {
                    g.add_edge(base + i, base + j, 1.0).unwrap();
                }
            }
        }
        g.add_edge(0, size, 0.05).unwrap();
        g
    }

    #[test]
    fn build_produces_consistent_structures() {
        let g = two_cliques();
        let index = MogulIndex::build(&g, MogulConfig::default()).unwrap();
        assert_eq!(index.num_nodes(), 12);
        assert_eq!(index.factor_d().len(), 12);
        assert_eq!(index.factor_l().nrows(), 12);
        assert!(index.ordering().validate());
        assert!(index.ordering().num_clusters() >= 3);
        assert_eq!(index.factorization(), Factorization::Incomplete);
        assert!(index.memory_bytes() > 0);
        let stats = index.precompute_stats();
        assert!(stats.total_secs() >= 0.0);
        assert!(stats.l_nnz >= 12);
        assert_eq!(stats.fill_in, 0);
    }

    #[test]
    fn exact_mode_uses_complete_factorization() {
        let g = two_cliques();
        let approx = MogulIndex::build(&g, MogulConfig::default()).unwrap();
        let exact = MogulIndex::build(&g, MogulConfig::exact()).unwrap();
        assert_eq!(exact.factorization(), Factorization::Complete);
        assert_eq!(exact.precompute_stats().boosted_pivots, 0);
        // The complete factor has at least as many non-zeros as the
        // incomplete one (Section 5.2.1 observes the same on COIL-100).
        assert!(exact.precompute_stats().l_nnz >= approx.precompute_stats().l_nnz);
    }

    #[test]
    fn factor_is_block_structured_under_mogul_ordering() {
        let g = two_cliques();
        let index = MogulIndex::build(&g, MogulConfig::default()).unwrap();
        let ordering = index.ordering();
        let border = ordering.border_range();
        // Lemma 3: no strictly-lower entry connects two different interior clusters.
        for (i, j, v) in index.factor_l().iter() {
            if i == j || v == 0.0 {
                continue;
            }
            if border.contains(i) || border.contains(j) {
                continue;
            }
            assert_eq!(
                ordering.cluster_of_permuted(i),
                ordering.cluster_of_permuted(j),
                "interior cross-cluster entry at ({i},{j})"
            );
        }
    }

    #[test]
    fn custom_ordering_is_accepted_and_validated() {
        let g = two_cliques();
        let ordering = random_ordering(12, 5);
        let index = MogulIndex::build_with_ordering(&g, MogulConfig::default(), ordering).unwrap();
        assert_eq!(index.ordering().num_clusters(), 1);
        assert_eq!(index.precompute_stats().ordering_secs, 0.0);

        let wrong = random_ordering(5, 1);
        assert!(MogulIndex::build_with_ordering(&g, MogulConfig::default(), wrong).is_err());
    }
}
