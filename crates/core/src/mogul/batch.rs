//! Batched multi-RHS execution of Algorithm 2 (panel search).
//!
//! A scalar search traverses the factor `L`'s row pointers and indices once
//! per query; under batched traffic that means a batch of `B` queries
//! streams the index structure `B` times. The batched engine packs up to
//! [`PANEL_WIDTH`] query vectors into an `n × B` panel stored with the `B`
//! lane values of each node adjacent (`panel[node * width + lane]`), so one
//! traversal of the CSR structure applies every nonzero to all lanes through
//! a short, contiguous, auto-vectorizable inner loop — the same blocking the
//! `mogul-sparse` `*_multi_into` kernels use for unrestricted solves.
//!
//! Algorithm 2's semantics are preserved **per column**:
//!
//! * the restricted forward substitution covers the union of the lanes'
//!   query clusters plus the border: clusters shared by many lanes (and the
//!   border, which every lane shares) are swept once at full width, while
//!   clusters owned by one or two lanes run as tight per-lane recurrences —
//!   either way each lane's arithmetic is bit-identical to its scalar
//!   counterpart;
//! * every lane keeps its own top-k collector and threshold `θ`, and the
//!   upper-bounding estimation is evaluated per lane
//!   ([`ClusterBounds::cluster_estimates_panel`](crate::mogul::ClusterBounds::cluster_estimates_panel));
//! * a column whose bound falls below its own threshold **prunes out** of
//!   the panel for that cluster: the back substitution runs over the masked
//!   set of still-active lanes, shrinking the effective width as the search
//!   proceeds. A fully pruned cluster is skipped outright, exactly as in the
//!   scalar search.
//!
//! Because every lane performs the same floating-point operations in the
//! same order as the scalar path, batched results (scores, ranking, pruning
//! decisions and work counters) are bit-identical to running the scalar
//! search per query — the equivalence suite in
//! `crates/core/tests/batch_equivalence.rs` pins this with exact `==`
//! comparisons. See `docs/PERFORMANCE.md` for the layout diagram and tuning
//! notes.

use crate::mogul::index::MogulIndex;
use crate::mogul::search::{HeapEntry, SearchMode, SearchStats, TopKCollector};
use crate::ranking::{check_k, check_query, TopKResult};
use crate::Result;
use mogul_graph::ordering::ClusterRange;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use mogul_sparse::kernel::Avx2Kernel;
use mogul_sparse::kernel::{LaneKernel, ScalarKernel};
use mogul_sparse::{CsrMatrix, MultiSolveWorkspace};

/// Panel width the batched engine blocks queries into.
///
/// Eight lanes make a panel row exactly one cache line (8 × 8 bytes), so a
/// row stays resident while the factor structure streams past and the lane
/// loop vectorizes to one or two AVX/NEON operations. Width 16 was measured
/// on the serving scenarios and lost (more over-compute on masked sweeps,
/// two lines per row, no extra vector throughput) — see
/// `docs/PERFORMANCE.md` for the numbers. Batches larger than this are
/// processed as consecutive panels; a final ragged panel uses whatever
/// width remains.
pub const PANEL_WIDTH: usize = 8;

/// Above this many active lanes a masked substitution runs the full-width
/// vectorized kernel (over-computing the inactive lanes, which is provably
/// harmless — see the masked kernels); at or below it, per-lane strided
/// scalar recurrences win.
const MASKED_LANE_CUTOFF: usize = 2;

/// Reusable scratch for the batched (panel) query paths.
///
/// The panel counterpart of [`SearchWorkspace`](crate::SearchWorkspace):
/// three `n × B` panels (query, forward result, scores), the staged lane
/// descriptors, one top-k collector buffer per lane, and the phase-1 /
/// full-solve scratch of the batched out-of-sample and corrected-snapshot
/// paths. Like every workspace in this crate it is an inert buffer bag — it
/// carries no index state, any workspace works with any index, and results
/// are bit-identical to fresh allocation.
/// # Panel zeroing invariant
///
/// The three panels are kept **all-zero between searches**: a panel search
/// re-zeroes exactly the rows it visited (the query scatter, the forwarded
/// cluster ranges and the scored cluster ranges) instead of clearing the
/// whole `n × B` buffers up front. On heavily pruned workloads a query
/// touches a few dozen rows of a many-thousand-row index, so this turns the
/// dominant per-panel cost — three `O(n · B)` memsets — into `O(visited)`.
/// The scalar path cannot play this trick (its workspace makes no such
/// invariant), which is a large part of the panel path's single-core win.
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    /// Densified query panel `Q'` (node-major, stride = staged width).
    pub(crate) q_panel: Vec<f64>,
    /// Forward-substitution panel `Y` of `L' Y = Q'`.
    pub(crate) y_panel: Vec<f64>,
    /// Score panel `X'` of `U X' = Y`.
    pub(crate) x_panel: Vec<f64>,
    /// Cluster ranges whose panel rows were written by the current search
    /// (re-zeroed afterwards to restore the all-zero invariant).
    pub(crate) dirty_ranges: Vec<ClusterRange>,
    /// Flattened per-lane scaled, permuted query entries.
    pub(crate) lane_entries: Vec<(usize, f64)>,
    /// Lane boundaries in `lane_entries` (`lanes + 1` offsets).
    pub(crate) lane_offsets: Vec<usize>,
    /// Flattened per-lane interior query clusters (sorted, deduplicated).
    pub(crate) lane_clusters: Vec<usize>,
    /// Lane boundaries in `lane_clusters`.
    pub(crate) lane_cluster_offsets: Vec<usize>,
    /// Per-lane excluded permuted node (the in-database query itself).
    pub(crate) excludes: Vec<Option<usize>>,
    /// Union of the staged lanes' query clusters (sorted, deduplicated).
    pub(crate) union_clusters: Vec<usize>,
    /// Recycled per-lane top-k heap buffers.
    pub(crate) heap_bufs: Vec<Vec<HeapEntry>>,
    /// Active-lane mask of the cluster currently being scored.
    pub(crate) active: Vec<usize>,
    /// Phase-1 scratch of the batched out-of-sample path.
    pub(crate) oos: crate::out_of_sample::OosWorkspace,
    /// Panel scratch of the unrestricted multi-RHS `L D Lᵀ` solve
    /// ([`MogulIndex::solve_ranking_system_batch_in`]).
    pub(crate) multi: MultiSolveWorkspace,
}

impl BatchWorkspace {
    /// An empty workspace; buffers grow to the index size on first use.
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// A workspace whose panels are pre-sized for an index over `n` nodes at
    /// the tuned [`PANEL_WIDTH`].
    pub fn with_capacity(n: usize) -> Self {
        BatchWorkspace {
            q_panel: Vec::with_capacity(n * PANEL_WIDTH),
            y_panel: Vec::with_capacity(n * PANEL_WIDTH),
            x_panel: Vec::with_capacity(n * PANEL_WIDTH),
            multi: MultiSolveWorkspace::with_capacity(n, PANEL_WIDTH),
            ..BatchWorkspace::default()
        }
    }

    /// Number of currently staged lanes.
    fn staged(&self) -> usize {
        self.lane_offsets.len().saturating_sub(1)
    }

    /// Grow a panel to at least `len` entries (new entries zero; existing
    /// entries are zero by the workspace invariant).
    fn ensure_panel(panel: &mut Vec<f64>, len: usize) {
        if panel.len() < len {
            panel.resize(len, 0.0);
        }
    }

    /// Re-zero everything the current panel search wrote (the staged query
    /// scatter plus the dirty cluster ranges), restoring the all-zero
    /// invariant in `O(visited)` instead of `O(n · B)`.
    fn cleanup_panels(&mut self, width: usize) {
        for lane in 0..width {
            for idx in self.lane_offsets[lane]..self.lane_offsets[lane + 1] {
                let (node, _) = self.lane_entries[idx];
                self.q_panel[node * width + lane] = 0.0;
            }
        }
        for range in &self.dirty_ranges {
            let rows = range.start * width..(range.start + range.len) * width;
            self.y_panel[rows.clone()].fill(0.0);
            self.x_panel[rows].fill(0.0);
        }
        self.dirty_ranges.clear();
    }

    /// Sorted interior query clusters of one staged lane.
    fn lane_clusters(&self, lane: usize) -> &[usize] {
        &self.lane_clusters[self.lane_cluster_offsets[lane]..self.lane_cluster_offsets[lane + 1]]
    }
}

impl MogulIndex {
    /// Batched [`MogulIndex::search_with_stats`] over many in-database query
    /// nodes: results (including work counters) are bit-identical to the
    /// scalar search per query, but the factor structure is traversed once
    /// per [`PANEL_WIDTH`]-wide panel instead of once per query.
    ///
    /// Allocates fresh scratch per call; serving loops should reuse a
    /// [`BatchWorkspace`] via [`MogulIndex::search_batch_in`].
    pub fn search_batch(
        &self,
        queries: &[usize],
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<(TopKResult, SearchStats)>> {
        self.search_batch_in(&mut BatchWorkspace::new(), queries, k, mode)
    }

    /// [`MogulIndex::search_batch`] with caller-owned scratch: zero heap
    /// allocation on the substitution/pruning path once the workspace is
    /// warm.
    pub fn search_batch_in(
        &self,
        ws: &mut BatchWorkspace,
        queries: &[usize],
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<(TopKResult, SearchStats)>> {
        check_k(k)?;
        for &query in queries {
            check_query(query, self.num_nodes())?;
        }
        let mut out = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(PANEL_WIDTH) {
            self.batch_begin(ws);
            for &query in chunk {
                let permuted = self.ordering.permutation.new_index(query);
                self.batch_push_lane(ws, &[(query, 1.0)], Some(permuted))?;
            }
            self.search_panel_staged(ws, k, mode, &mut out)?;
        }
        Ok(out)
    }

    /// Batched [`MogulIndex::search_weighted`] over many weighted query
    /// vectors (original node ids) — the panel entry point of batched
    /// out-of-sample queries.
    pub fn search_weighted_batch_in(
        &self,
        ws: &mut BatchWorkspace,
        lanes: &[&[(usize, f64)]],
        k: usize,
        mode: SearchMode,
    ) -> Result<Vec<(TopKResult, SearchStats)>> {
        check_k(k)?;
        let mut out = Vec::with_capacity(lanes.len());
        for chunk in lanes.chunks(PANEL_WIDTH) {
            self.batch_begin(ws);
            for &weights in chunk {
                self.batch_push_lane(ws, weights, None)?;
            }
            self.search_panel_staged(ws, k, mode, &mut out)?;
        }
        Ok(out)
    }

    /// Batched [`MogulIndex::all_scores`]: the full approximate score vector
    /// of every query (original node order), computed panel-wise without
    /// pruning. Each returned vector is bit-identical to the scalar
    /// [`MogulIndex::all_scores_in`] of the same query.
    pub fn all_scores_batch(&self, queries: &[usize]) -> Result<Vec<Vec<f64>>> {
        self.all_scores_batch_in(&mut BatchWorkspace::new(), queries)
    }

    /// [`MogulIndex::all_scores_batch`] with caller-owned scratch.
    pub fn all_scores_batch_in(
        &self,
        ws: &mut BatchWorkspace,
        queries: &[usize],
    ) -> Result<Vec<Vec<f64>>> {
        for &query in queries {
            check_query(query, self.num_nodes())?;
        }
        let n = self.num_nodes();
        let mut out = Vec::with_capacity(queries.len());
        for chunk in queries.chunks(PANEL_WIDTH) {
            self.batch_begin(ws);
            for &query in chunk {
                self.batch_push_lane(ws, &[(query, 1.0)], None)?;
            }
            let width = ws.staged();
            if n == 0 {
                out.extend((0..width).map(|_| Vec::new()));
                continue;
            }
            self.forward_staged(ws, width, false);
            // Unrestricted backward pass: border first, then every cluster
            // (the whole panel becomes dirty).
            ws.dirty_ranges.push(ClusterRange { start: 0, len: n });
            let border_idx = self.ordering.border_cluster();
            self.back_panel_full(self.ordering.clusters[border_idx], ws, width);
            for (ci, &range) in self.ordering.clusters.iter().enumerate() {
                if ci == border_idx {
                    continue;
                }
                self.back_panel_full(range, ws, width);
            }
            for lane in 0..width {
                let mut scores = vec![0.0; n];
                for new in 0..n {
                    scores[self.ordering.permutation.old_index(new)] =
                        ws.x_panel[new * width + lane];
                }
                out.push(scores);
            }
            ws.cleanup_panels(width);
        }
        Ok(out)
    }

    /// Multi-RHS [`MogulIndex::solve_ranking_system_in`]: solve the
    /// factorized ranking system for a panel of dense right-hand sides
    /// (`rhs[i * width + lane]`, original node order) through the blocked
    /// `mogul-sparse` kernels. Lane `l` of the output panel is bit-identical
    /// to the scalar solve of lane `l`'s right-hand side.
    pub fn solve_ranking_system_batch_in(
        &self,
        ws: &mut BatchWorkspace,
        rhs: &[f64],
        width: usize,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let n = self.num_nodes();
        if width == 0 || rhs.len() != n * width {
            // The payload carries the *requested* shape: `width` verbatim
            // (even when 0) on the left, and the supplied panel re-expressed
            // against that width on the right — as a raw single column when
            // the length does not divide evenly, never rounded.
            let right = if width > 0 && rhs.len().is_multiple_of(width) {
                (rhs.len() / width, width)
            } else {
                (rhs.len(), 1)
            };
            return Err(crate::CoreError::DimensionMismatch {
                op: "ranking system batch solve",
                left: (n, width),
                right,
            });
        }
        // Permute the right-hand sides: Q'[P(i)] = rhs[i], lane-wise.
        ws.q_panel.clear();
        ws.q_panel.resize(n * width, 0.0);
        for old in 0..n {
            let new = self.ordering.permutation.new_index(old);
            ws.q_panel[new * width..(new + 1) * width]
                .copy_from_slice(&rhs[old * width..(old + 1) * width]);
        }
        let solved = mogul_sparse::triangular::ldl_solve_multi_into(
            &self.factors.l,
            &self.factors.u,
            &self.factors.d,
            &ws.q_panel,
            width,
            &mut ws.multi,
            &mut ws.x_panel,
        );
        if let Err(err) = solved {
            // Restore the all-zero invariant before surfacing the error —
            // the workspace may be recycled into a panel search, which
            // relies on it.
            ws.q_panel.fill(0.0);
            ws.x_panel.fill(0.0);
            return Err(err);
        }
        // Unpermute: out[i] = X'[P(i)], lane-wise.
        out.clear();
        out.resize(n * width, 0.0);
        for new in 0..n {
            let old = self.ordering.permutation.old_index(new);
            out[old * width..(old + 1) * width]
                .copy_from_slice(&ws.x_panel[new * width..(new + 1) * width]);
        }
        // This path writes the panels densely; restore the all-zero
        // invariant the restricted searches rely on.
        ws.q_panel.fill(0.0);
        ws.x_panel.fill(0.0);
        Ok(())
    }

    // ----------------------------------------------------------------------
    // Panel internals
    // ----------------------------------------------------------------------

    /// Reset the staged-lane state for a fresh panel.
    pub(crate) fn batch_begin(&self, ws: &mut BatchWorkspace) {
        ws.lane_entries.clear();
        ws.lane_offsets.clear();
        ws.lane_offsets.push(0);
        ws.lane_clusters.clear();
        ws.lane_cluster_offsets.clear();
        ws.lane_cluster_offsets.push(0);
        ws.excludes.clear();
    }

    /// Stage one lane: validate, `(1 − α)`-scale and permute its weighted
    /// query vector (original node ids) and record its interior query
    /// clusters. `exclude` is the permuted node to drop from the lane's
    /// result (the in-database query itself).
    pub(crate) fn batch_push_lane(
        &self,
        ws: &mut BatchWorkspace,
        weights: &[(usize, f64)],
        exclude: Option<usize>,
    ) -> Result<()> {
        debug_assert!(ws.staged() < PANEL_WIDTH, "panel overflow");
        for &(node, weight) in weights {
            check_query(node, self.num_nodes())?;
            if !weight.is_finite() {
                return Err(crate::CoreError::InvalidInput(format!(
                    "query weight for node {node} is not finite"
                )));
            }
        }
        let scale = self.params.query_scale();
        let entry_start = ws.lane_entries.len();
        for &(node, weight) in weights {
            ws.lane_entries
                .push((self.ordering.permutation.new_index(node), weight * scale));
        }
        // Interior clusters touched by this lane (sorted, deduplicated),
        // mirroring the scalar `query_clusters_into`.
        let border_idx = self.ordering.border_cluster();
        let cluster_start = ws.lane_clusters.len();
        for idx in entry_start..ws.lane_entries.len() {
            let cluster = self.ordering.cluster_of_permuted(ws.lane_entries[idx].0);
            if cluster != border_idx {
                ws.lane_clusters.push(cluster);
            }
        }
        ws.lane_clusters[cluster_start..].sort_unstable();
        ws.lane_clusters.dedup_in_suffix(cluster_start);
        ws.excludes.push(exclude);
        ws.lane_offsets.push(ws.lane_entries.len());
        ws.lane_cluster_offsets.push(ws.lane_clusters.len());
        Ok(())
    }

    /// Restricted forward substitution `L' Y = Q'` over the staged panel.
    ///
    /// Interior query clusters are swept at **masked width** — only the
    /// lanes whose query actually touches a cluster pay for its rows, so a
    /// panel performs exactly the per-lane work of the scalar searches — and
    /// the border cluster (the work every lane shares) is swept once at full
    /// width, which is where the batching wins: one structure traversal, one
    /// `B`-wide independent-accumulator inner loop instead of `B` serial
    /// dependency chains. With `full` set the whole index is swept at full
    /// width instead (the `FullSubstitution` mode).
    fn forward_staged(&self, ws: &mut BatchWorkspace, width: usize, full: bool) {
        let n = self.num_nodes();
        ws.union_clusters.clear();
        if !full {
            for lane in 0..width {
                let start = ws.lane_cluster_offsets[lane];
                let end = ws.lane_cluster_offsets[lane + 1];
                for idx in start..end {
                    ws.union_clusters.push(ws.lane_clusters[idx]);
                }
            }
            ws.union_clusters.sort_unstable();
            ws.union_clusters.dedup();
        }

        BatchWorkspace::ensure_panel(&mut ws.q_panel, n * width);
        BatchWorkspace::ensure_panel(&mut ws.y_panel, n * width);
        BatchWorkspace::ensure_panel(&mut ws.x_panel, n * width);
        for lane in 0..width {
            let start = ws.lane_offsets[lane];
            let end = ws.lane_offsets[lane + 1];
            for idx in start..end {
                let (node, value) = ws.lane_entries[idx];
                ws.q_panel[node * width + lane] += value;
            }
        }

        if full {
            let all = ClusterRange { start: 0, len: n };
            ws.dirty_ranges.push(all);
            self.forward_rows_full(all, ws, width);
            return;
        }
        let union = std::mem::take(&mut ws.union_clusters);
        for &c in &union {
            let range = self.ordering.clusters[c];
            ws.dirty_ranges.push(range);
            mask_lanes_with_cluster(ws, width, c, true);
            let active = std::mem::take(&mut ws.active);
            if active.len() == width {
                self.forward_rows_full(range, ws, width);
            } else {
                self.forward_rows_masked(range, ws, width, &active);
            }
            ws.active = active;
        }
        ws.union_clusters = union;
        let border = self.ordering.clusters[self.ordering.border_cluster()];
        ws.dirty_ranges.push(border);
        self.forward_rows_full(border, ws, width);
    }

    /// One cluster range of the forward recurrence at full panel width,
    /// dispatched to the active lane kernel (scalar, or AVX2 under the
    /// `simd` feature when the CPU supports it — bit-identical either way,
    /// see `mogul_sparse::kernel`).
    fn forward_rows_full(&self, range: ClusterRange, ws: &mut BatchWorkspace, width: usize) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if let Some(kernel) = avx2_if_active() {
            // SAFETY: `try_new` inside `avx2_if_active` proved AVX2 is
            // available on this CPU.
            unsafe {
                avx2_shells::forward(
                    kernel,
                    &self.factors.l,
                    &self.factors.d,
                    range,
                    &ws.q_panel,
                    &mut ws.y_panel,
                    width,
                )
            };
            return;
        }
        forward_range_sweep(
            ScalarKernel,
            &self.factors.l,
            &self.factors.d,
            range,
            &ws.q_panel,
            &mut ws.y_panel,
            width,
        );
    }

    /// One cluster range of the forward recurrence for a masked subset of
    /// lanes; the other lanes' entries stay zero, exactly as in the scalar
    /// restricted substitution.
    ///
    /// When most lanes are active this simply runs the full-width vectorized
    /// sweep: an inactive lane's query panel is zero on the cluster, so the
    /// recurrence computes exact zeros for it — the same zeros the scalar
    /// restricted substitution leaves untouched — and the shared structure
    /// traversal beats per-lane passes. With only a few active lanes the
    /// over-compute stops paying, and each active lane gets one tight
    /// strided scalar recurrence instead.
    fn forward_rows_masked(
        &self,
        range: ClusterRange,
        ws: &mut BatchWorkspace,
        width: usize,
        active: &[usize],
    ) {
        if active.len() > MASKED_LANE_CUTOFF {
            self.forward_rows_full(range, ws, width);
            return;
        }
        let d = &self.factors.d;
        for &b in active {
            for i in range.indices() {
                let mut acc = ws.q_panel[i * width + b];
                let (cols, vals) = self.factors.l.row(i);
                for (&j, &v) in cols.iter().zip(vals.iter()) {
                    if j < i {
                        acc -= v * d[j] * ws.y_panel[j * width + b];
                    }
                }
                ws.y_panel[i * width + b] = acc / d[i];
            }
        }
    }

    /// Back substitution `U X' = Y` restricted to one cluster range, for
    /// every lane of the panel, dispatched to the active lane kernel.
    fn back_panel_full(&self, range: ClusterRange, ws: &mut BatchWorkspace, width: usize) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if let Some(kernel) = avx2_if_active() {
            // SAFETY: `try_new` inside `avx2_if_active` proved AVX2 is
            // available on this CPU.
            unsafe {
                avx2_shells::back(
                    kernel,
                    &self.factors.u,
                    range,
                    &ws.y_panel,
                    &mut ws.x_panel,
                    width,
                )
            };
            return;
        }
        back_range_sweep(
            ScalarKernel,
            &self.factors.u,
            range,
            &ws.y_panel,
            &mut ws.x_panel,
            width,
        );
    }

    /// Back substitution restricted to one cluster range for a masked subset
    /// of lanes — the shrinking-width path taken once columns prune out.
    ///
    /// Like the forward sweep, a mostly-active panel runs the full-width
    /// vectorized kernel: recomputing an already-scored lane reproduces the
    /// identical values (the recurrence is deterministic over unchanged
    /// inputs), and a pruned-out lane's rows are never read and are
    /// re-zeroed by the cleanup pass — so over-compute is harmless and the
    /// offers stay masked. Sparse masks run one tight strided scalar
    /// recurrence per active lane instead.
    fn back_panel_masked(
        &self,
        range: ClusterRange,
        ws: &mut BatchWorkspace,
        width: usize,
        active: &[usize],
    ) {
        if active.len() > MASKED_LANE_CUTOFF {
            self.back_panel_full(range, ws, width);
            return;
        }
        for &b in active {
            for i in range.indices().rev() {
                let mut acc = ws.y_panel[i * width + b];
                let (cols, vals) = self.factors.u.row(i);
                for (&j, &v) in cols.iter().zip(vals.iter()) {
                    if j > i {
                        acc -= v * ws.x_panel[j * width + b];
                    }
                }
                ws.x_panel[i * width + b] = acc;
            }
        }
    }

    /// Run Algorithm 2 over the staged panel, appending one
    /// `(result, stats)` pair per lane to `out`. Per-lane semantics
    /// (thresholds, pruning decisions, tie-breaks, work counters) match the
    /// scalar [`MogulIndex::search_with_stats_in`] exactly.
    pub(crate) fn search_panel_staged(
        &self,
        ws: &mut BatchWorkspace,
        k: usize,
        mode: SearchMode,
        out: &mut Vec<(TopKResult, SearchStats)>,
    ) -> Result<()> {
        let width = ws.staged();
        if width == 0 {
            return Ok(());
        }
        let n = self.num_nodes();
        if n == 0 {
            out.extend((0..width).map(|_| (TopKResult::default(), SearchStats::default())));
            return Ok(());
        }

        let mut stats = [SearchStats::default(); PANEL_WIDTH];
        let mut collectors: Vec<TopKCollector> = (0..width)
            .map(|_| TopKCollector::with_buffer(k, ws.heap_bufs.pop().unwrap_or_default()))
            .collect();

        let full_substitution = mode == SearchMode::FullSubstitution;
        self.forward_staged(ws, width, full_substitution);

        if full_substitution {
            let full = ClusterRange { start: 0, len: n };
            self.back_panel_full(full, ws, width);
            for s in stats.iter_mut().take(width) {
                s.nodes_scored = n;
            }
            self.offer_range_all(full, ws, width, &mut collectors);
            return self.finish_panel(ws, collectors, &stats, out);
        }

        let border_idx = self.ordering.border_cluster();
        let border_range = self.ordering.clusters[border_idx];

        // Back substitution for C_N first (its scores feed every other
        // cluster via Lemma 5), then for each lane's query clusters.
        self.back_panel_full(border_range, ws, width);
        for s in stats.iter_mut().take(width) {
            s.nodes_scored += border_range.len;
        }
        let union = std::mem::take(&mut ws.union_clusters);
        for &c in &union {
            let range = self.ordering.clusters[c];
            mask_lanes_with_cluster(ws, width, c, true);
            if ws.active.is_empty() {
                continue;
            }
            let active = std::mem::take(&mut ws.active);
            self.back_panel_masked(range, ws, width, &active);
            for &b in &active {
                stats[b].nodes_scored += range.len;
            }
            ws.active = active;
        }
        self.offer_range_all(border_range, ws, width, &mut collectors);
        for &c in &union {
            let range = self.ordering.clusters[c];
            mask_lanes_with_cluster(ws, width, c, true);
            let active = std::mem::take(&mut ws.active);
            self.offer_range_masked(range, ws, width, &active, &mut collectors);
            ws.active = active;
        }
        ws.union_clusters = union;

        // Remaining interior clusters: per-lane prune-or-score with a
        // shrinking active-lane mask. Each lane walks its (sorted) query
        // clusters with a cursor, so membership is O(1) per cluster instead
        // of a per-cluster binary search; the mask lives in a stack array.
        let mut estimates = [0.0f64; PANEL_WIDTH];
        let mut active = [0usize; PANEL_WIDTH];
        let mut cursors = [0usize; PANEL_WIDTH];
        for (ci, &range) in self.ordering.clusters.iter().enumerate() {
            let mut active_len = 0usize;
            for b in 0..width {
                let clusters = ws.lane_clusters(b);
                if cursors[b] < clusters.len() && clusters[cursors[b]] == ci {
                    cursors[b] += 1;
                } else {
                    active[active_len] = b;
                    active_len += 1;
                }
            }
            if ci == border_idx || range.is_empty() || active_len == 0 {
                continue;
            }
            for &b in &active[..active_len] {
                stats[b].clusters_considered += 1;
            }
            if mode == SearchMode::Pruned {
                // A cluster with no stored border columns has `X_i = 0`
                // exactly, for every lane — skip the panel evaluation and
                // compare 0 against each lane's threshold directly (the
                // scalar path computes the same empty sum).
                let no_border_columns = self.bounds.border_columns(ci).is_empty();
                if !no_border_columns {
                    self.bounds.cluster_estimates_panel(
                        ci,
                        range.len,
                        &ws.x_panel,
                        width,
                        &mut estimates[..width],
                    );
                }
                let mut keep = 0usize;
                for idx in 0..active_len {
                    let b = active[idx];
                    stats[b].bound_evaluations += 1;
                    let estimate = if no_border_columns { 0.0 } else { estimates[b] };
                    if estimate < collectors[b].threshold() {
                        stats[b].clusters_pruned += 1;
                    } else {
                        active[keep] = b;
                        keep += 1;
                    }
                }
                active_len = keep;
            }
            if active_len == 0 {
                continue;
            }
            ws.dirty_ranges.push(range);
            self.back_panel_masked(range, ws, width, &active[..active_len]);
            for &b in &active[..active_len] {
                stats[b].nodes_scored += range.len;
            }
            self.offer_range_masked(range, ws, width, &active[..active_len], &mut collectors);
        }

        self.finish_panel(ws, collectors, &stats, out)
    }

    /// Offer one cluster range's scores to every lane's collector.
    fn offer_range_all(
        &self,
        range: ClusterRange,
        ws: &BatchWorkspace,
        width: usize,
        collectors: &mut [TopKCollector],
    ) {
        for (b, collector) in collectors.iter_mut().enumerate() {
            self.offer_range_lane(range, ws, width, b, collector);
        }
    }

    /// Offer one cluster range's scores to the active lanes' collectors.
    fn offer_range_masked(
        &self,
        range: ClusterRange,
        ws: &BatchWorkspace,
        width: usize,
        active: &[usize],
        collectors: &mut [TopKCollector],
    ) {
        for &b in active {
            self.offer_range_lane(range, ws, width, b, &mut collectors[b]);
        }
    }

    /// Offer one cluster range's scores to a single lane's collector. The
    /// offer order within a range (ascending permuted index) matches the
    /// scalar search, and offers are lane-local, so the per-lane results are
    /// independent of the lane iteration order above.
    fn offer_range_lane(
        &self,
        range: ClusterRange,
        ws: &BatchWorkspace,
        width: usize,
        lane: usize,
        collector: &mut TopKCollector,
    ) {
        let exclude = ws.excludes[lane];
        for i in range.indices() {
            if Some(i) == exclude {
                continue;
            }
            // Pre-filter against the cached threshold so the common rejected
            // offer never loads the permutation entry; `offer` re-applies
            // the same check, so semantics are unchanged.
            let score = ws.x_panel[i * width + lane];
            if !score.is_finite() || score < collector.threshold() {
                continue;
            }
            collector.offer(self.ordering.permutation.old_index(i), score);
        }
    }

    /// Extract every lane's result, recycle the heap buffers and restore the
    /// panel zeroing invariant.
    fn finish_panel(
        &self,
        ws: &mut BatchWorkspace,
        collectors: Vec<TopKCollector>,
        stats: &[SearchStats; PANEL_WIDTH],
        out: &mut Vec<(TopKResult, SearchStats)>,
    ) -> Result<()> {
        let width = ws.staged();
        for (b, collector) in collectors.into_iter().enumerate() {
            let (result, buf) = collector.finish();
            ws.heap_bufs.push(buf);
            out.push((result, stats[b]));
        }
        ws.cleanup_panels(width);
        Ok(())
    }
}

/// The forward-recurrence sweep body, generic over the lane kernel. The
/// masked adaptive sweeps route through this too: a mostly-active mask
/// delegates to the full-width sweep (over-computing inactive lanes is
/// provably harmless, see [`MogulIndex`'s masked kernels]), while sparse
/// masks run per-lane strided scalar recurrences where SIMD has nothing to
/// vectorize.
///
/// `#[inline(always)]` so that instantiating this inside a
/// `#[target_feature(enable = "avx2")]` shell inlines the kernel's
/// intrinsics into the whole CSR traversal — one dispatch per cluster range,
/// not one per node row.
#[inline(always)]
fn forward_range_sweep<K: LaneKernel>(
    kernel: K,
    l: &CsrMatrix,
    d: &[f64],
    range: ClusterRange,
    q_panel: &[f64],
    y_panel: &mut [f64],
    width: usize,
) {
    let mut acc = [0.0f64; PANEL_WIDTH];
    let acc = &mut acc[..width];
    for i in range.indices() {
        acc.copy_from_slice(&q_panel[i * width..(i + 1) * width]);
        let (cols, vals) = l.row(i);
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j < i {
                let vd = v * d[j];
                kernel.axpy_neg(acc, &y_panel[j * width..(j + 1) * width], vd);
            }
        }
        kernel.div_store(&mut y_panel[i * width..(i + 1) * width], acc, d[i]);
    }
}

/// The back-substitution sweep body, generic over the lane kernel (see
/// [`forward_range_sweep`] for the dispatch and inlining notes).
#[inline(always)]
fn back_range_sweep<K: LaneKernel>(
    kernel: K,
    u: &CsrMatrix,
    range: ClusterRange,
    y_panel: &[f64],
    x_panel: &mut [f64],
    width: usize,
) {
    let mut acc = [0.0f64; PANEL_WIDTH];
    let acc = &mut acc[..width];
    for i in range.indices().rev() {
        acc.copy_from_slice(&y_panel[i * width..(i + 1) * width]);
        let (cols, vals) = u.row(i);
        for (&j, &v) in cols.iter().zip(vals.iter()) {
            if j > i {
                kernel.axpy_neg(acc, &x_panel[j * width..(j + 1) * width], v);
            }
        }
        x_panel[i * width..(i + 1) * width].copy_from_slice(acc);
    }
}

/// The AVX2 kernel iff the dispatcher currently selects the SIMD path.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn avx2_if_active() -> Option<Avx2Kernel> {
    match mogul_sparse::kernel::active_kernel() {
        mogul_sparse::kernel::KernelKind::Simd => Avx2Kernel::try_new(),
        mogul_sparse::kernel::KernelKind::Scalar => None,
    }
}

/// `#[target_feature(enable = "avx2")]` instantiations of the generic sweep
/// bodies: the attribute lets the compiler emit AVX2 throughout the inlined
/// traversal instead of fencing each kernel call behind a feature check.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2_shells {
    use super::*;

    /// # Safety
    /// The caller must have verified AVX2 support (holding an [`Avx2Kernel`]
    /// is that proof).
    #[target_feature(enable = "avx2")]
    pub unsafe fn forward(
        kernel: Avx2Kernel,
        l: &CsrMatrix,
        d: &[f64],
        range: ClusterRange,
        q_panel: &[f64],
        y_panel: &mut [f64],
        width: usize,
    ) {
        forward_range_sweep(kernel, l, d, range, q_panel, y_panel, width)
    }

    /// # Safety
    /// As in [`forward`].
    #[target_feature(enable = "avx2")]
    pub unsafe fn back(
        kernel: Avx2Kernel,
        u: &CsrMatrix,
        range: ClusterRange,
        y_panel: &[f64],
        x_panel: &mut [f64],
        width: usize,
    ) {
        back_range_sweep(kernel, u, range, y_panel, x_panel, width)
    }
}

/// Fill `ws.active` with the lanes whose query-cluster list does (`member ==
/// true`) or does not (`member == false`) contain `cluster`.
fn mask_lanes_with_cluster(ws: &mut BatchWorkspace, width: usize, cluster: usize, member: bool) {
    let mut active = std::mem::take(&mut ws.active);
    active.clear();
    for b in 0..width {
        if ws.lane_clusters(b).binary_search(&cluster).is_ok() == member {
            active.push(b);
        }
    }
    ws.active = active;
}

/// `Vec::dedup` restricted to the suffix starting at `from` — used to
/// deduplicate one lane's cluster list in place inside the shared flattened
/// buffer.
trait DedupSuffix {
    fn dedup_in_suffix(&mut self, from: usize);
}

impl DedupSuffix for Vec<usize> {
    fn dedup_in_suffix(&mut self, from: usize) {
        let mut write = from;
        for read in from..self.len() {
            if write == from || self[write - 1] != self[read] {
                self[write] = self[read];
                write += 1;
            }
        }
        self.truncate(write);
    }
}
