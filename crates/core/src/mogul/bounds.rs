//! Upper-bounding cluster estimations (Section 4.3 of the paper).
//!
//! For an interior cluster `C_i` (not the query cluster, not the border
//! cluster `C_N`) the paper bounds every approximate score in the cluster by
//!
//! ```text
//! x̄'_{C_i} = X_i (1 + Ū_i)^{N_i − 1}
//! X_i      = Σ_{j ≥ c_N} Ū_{i:j} |x'_j|
//! Ū_i      = max { |U_jk| : u'_j, u'_k ∈ C_i, j ≠ k }
//! Ū_{i:j}  = max { |U_kj| : u'_k ∈ C_i }
//! ```
//!
//! (Definition 1, Definition 2, Lemmas 6–7.) `Ū_i` and the per-column maxima
//! `Ū_{i:j}` depend only on the factor `U = Lᵀ` and are precomputed in `O(n)`
//! time; `X_i` depends on the border scores `x'_j` (j ∈ C_N) of the current
//! query and is evaluated at search time.

use mogul_graph::ordering::NodeOrdering;
use mogul_sparse::CsrMatrix;

/// Precomputed per-cluster quantities used by the upper-bounding estimation.
#[derive(Debug, Clone)]
pub struct ClusterBounds {
    /// `Ū_i` per cluster (0 for the border cluster itself and for clusters
    /// without any off-diagonal within-cluster entry).
    max_within: Vec<f64>,
    /// For each cluster `i`, the sparse list of `(j, Ū_{i:j})` over border
    /// columns `j ≥ c_N` that any row of the cluster touches.
    border_columns: Vec<Vec<(usize, f64)>>,
}

impl ClusterBounds {
    /// Precompute `Ū_i` and `Ū_{i:j}` from the factor `U = Lᵀ` (rows = CSR)
    /// and the node ordering. Runs in time linear in `nnz(U)`.
    pub fn precompute(u: &CsrMatrix, ordering: &NodeOrdering) -> Self {
        let num_clusters = ordering.num_clusters();
        let border = ordering.border_range();
        let mut max_within = vec![0.0f64; num_clusters];
        let mut border_maps: Vec<std::collections::HashMap<usize, f64>> =
            vec![std::collections::HashMap::new(); num_clusters];

        for (cluster_idx, range) in ordering.clusters.iter().enumerate() {
            for k in range.indices() {
                let (cols, vals) = u.row(k);
                for (&j, &v) in cols.iter().zip(vals.iter()) {
                    let abs = v.abs();
                    if j != k && range.contains(j) && abs > max_within[cluster_idx] {
                        max_within[cluster_idx] = abs;
                    }
                    if j >= border.start && !border.contains(k) {
                        let entry = border_maps[cluster_idx].entry(j).or_insert(0.0);
                        if abs > *entry {
                            *entry = abs;
                        }
                    }
                }
            }
        }

        let border_columns = border_maps
            .into_iter()
            .map(|m| {
                let mut v: Vec<(usize, f64)> = m.into_iter().collect();
                v.sort_unstable_by_key(|&(j, _)| j);
                v
            })
            .collect();

        ClusterBounds {
            max_within,
            border_columns,
        }
    }

    /// Reassemble bounds from their stored parts (the persistence loader;
    /// see `crate::persist`). `max_within[i]` and `border_columns[i]` must
    /// describe the same cluster `i`, so both vectors must have one entry
    /// per cluster.
    pub fn from_raw_parts(
        max_within: Vec<f64>,
        border_columns: Vec<Vec<(usize, f64)>>,
    ) -> crate::Result<Self> {
        if max_within.len() != border_columns.len() {
            return Err(crate::CoreError::InvalidInput(format!(
                "cluster bounds cover {} clusters but border columns cover {}",
                max_within.len(),
                border_columns.len()
            )));
        }
        for (cluster, columns) in border_columns.iter().enumerate() {
            if columns.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(crate::CoreError::InvalidInput(format!(
                    "border columns of cluster {cluster} are not strictly ascending"
                )));
            }
        }
        Ok(ClusterBounds {
            max_within,
            border_columns,
        })
    }

    /// Number of clusters the bounds cover.
    pub fn num_clusters(&self) -> usize {
        self.max_within.len()
    }

    /// `Ū_i` of a cluster.
    pub fn max_within(&self, cluster: usize) -> f64 {
        self.max_within[cluster]
    }

    /// The stored `(j, Ū_{i:j})` pairs of a cluster.
    pub fn border_columns(&self, cluster: usize) -> &[(usize, f64)] {
        &self.border_columns[cluster]
    }

    /// Panel form of [`ClusterBounds::cluster_estimate`]: evaluate the upper
    /// bound for every lane of an `n × width` score panel
    /// (`x_panel[j * width + lane]`) in one traversal of the stored border
    /// columns, writing the per-lane bounds into `out[..width]`.
    ///
    /// Lane `l`'s arithmetic matches the scalar estimate operation for
    /// operation (same accumulation order, same geometric factor), so the
    /// batched search prunes exactly the clusters the scalar search prunes.
    pub fn cluster_estimates_panel(
        &self,
        cluster: usize,
        cluster_len: usize,
        x_panel: &[f64],
        width: usize,
        out: &mut [f64],
    ) {
        let out = &mut out[..width];
        out.fill(0.0);
        for &(j, u_max) in &self.border_columns[cluster] {
            let row = &x_panel[j * width..(j + 1) * width];
            for (acc, &x) in out.iter_mut().zip(row.iter()) {
                *acc += u_max * x.abs();
            }
        }
        if cluster_len <= 1 {
            return;
        }
        let base = 1.0 + self.max_within[cluster];
        let exponent = (cluster_len - 1) as f64;
        // The geometric factor is shared by every lane; compute it at most
        // once and only if some lane needs it. Same overflow semantics as
        // the scalar path: `inf` means "cannot prune", which is always safe.
        let mut factor = None;
        for acc in out.iter_mut() {
            if *acc != 0.0 {
                *acc *= *factor.get_or_insert_with(|| base.powf(exponent));
            }
        }
    }

    /// Evaluate the upper bound `x̄'_{C_i} = X_i (1 + Ū_i)^{N_i − 1}` given
    /// the border scores `x_border(j)` (the caller passes the permuted score
    /// vector restricted to `j ≥ c_N`; other indices are never requested).
    pub fn cluster_estimate(
        &self,
        cluster: usize,
        cluster_len: usize,
        x_border: impl Fn(usize) -> f64,
    ) -> f64 {
        let x_i: f64 = self.border_columns[cluster]
            .iter()
            .map(|&(j, u_max)| u_max * x_border(j).abs())
            .sum();
        if x_i == 0.0 {
            return 0.0;
        }
        if cluster_len <= 1 {
            return x_i;
        }
        let base = 1.0 + self.max_within[cluster];
        // The geometric factor can overflow for large clusters; `inf` simply
        // means "cannot prune", which is always safe.
        let exponent = (cluster_len - 1) as f64;
        x_i * base.powf(exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_graph::ordering::{ClusterRange, NodeOrdering};
    use mogul_sparse::Permutation;

    /// Hand-built ordering: cluster 0 = {0,1}, cluster 1 = {2,3}, border = {4,5}.
    fn ordering() -> NodeOrdering {
        NodeOrdering {
            permutation: Permutation::identity(6),
            clusters: vec![
                ClusterRange { start: 0, len: 2 },
                ClusterRange { start: 2, len: 2 },
                ClusterRange { start: 4, len: 2 },
            ],
        }
    }

    /// Upper-triangular factor with within-cluster and border couplings.
    fn u_factor() -> CsrMatrix {
        CsrMatrix::from_triplets(
            6,
            6,
            &[
                (0, 0, 1.0),
                (0, 1, -0.5), // within cluster 0
                (0, 4, 0.2),  // cluster 0 → border
                (1, 1, 1.0),
                (1, 5, -0.3), // cluster 0 → border
                (2, 2, 1.0),
                (2, 3, 0.25), // within cluster 1
                (3, 3, 1.0),
                (3, 4, -0.1), // cluster 1 → border
                (4, 4, 1.0),
                (4, 5, 0.4), // within border
                (5, 5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn precomputed_maxima_match_hand_calculation() {
        let bounds = ClusterBounds::precompute(&u_factor(), &ordering());
        assert!((bounds.max_within(0) - 0.5).abs() < 1e-12);
        assert!((bounds.max_within(1) - 0.25).abs() < 1e-12);
        // Border columns of cluster 0: column 4 (0.2) and column 5 (0.3).
        let cols0 = bounds.border_columns(0);
        assert_eq!(cols0.len(), 2);
        assert_eq!(cols0[0].0, 4);
        assert!((cols0[0].1 - 0.2).abs() < 1e-12);
        assert!((cols0[1].1 - 0.3).abs() < 1e-12);
        // Cluster 1 touches only column 4.
        let cols1 = bounds.border_columns(1);
        assert_eq!(cols1, &[(4, 0.1)]);
    }

    #[test]
    fn estimate_formula() {
        let bounds = ClusterBounds::precompute(&u_factor(), &ordering());
        // Border scores: x'_4 = 2, x'_5 = -1.
        let x = |j: usize| if j == 4 { 2.0 } else { -1.0 };
        // Cluster 0: X_0 = 0.2*2 + 0.3*1 = 0.7, bound = 0.7 * 1.5^(2-1) = 1.05.
        let est0 = bounds.cluster_estimate(0, 2, x);
        assert!((est0 - 1.05).abs() < 1e-12);
        // Cluster 1: X_1 = 0.1*2 = 0.2, bound = 0.2 * 1.25.
        let est1 = bounds.cluster_estimate(1, 2, x);
        assert!((est1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_coupling_gives_zero_estimate() {
        let bounds = ClusterBounds::precompute(&u_factor(), &ordering());
        let est = bounds.cluster_estimate(1, 2, |_| 0.0);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn singleton_cluster_estimate_is_just_x() {
        let bounds = ClusterBounds::precompute(&u_factor(), &ordering());
        let est = bounds.cluster_estimate(0, 1, |_| 1.0);
        assert!((est - 0.5).abs() < 1e-12); // 0.2 + 0.3, no geometric factor
    }

    #[test]
    fn huge_clusters_do_not_panic_on_overflow() {
        let bounds = ClusterBounds::precompute(&u_factor(), &ordering());
        let est = bounds.cluster_estimate(0, 100_000, |_| 1.0);
        assert!(est.is_infinite() || est > 1e100);
    }
}
