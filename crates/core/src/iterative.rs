//! The iterative baseline of Zhou et al. ("Iterative" in the experiments).
//!
//! The original Manifold Ranking paper computes the scores by iterating
//! `x_{t+1} = α S x_t + (1 − α) q` until convergence; the fixed point is the
//! exact solution of Equation (2). Because iteration is stopped when the
//! residual drops below a tolerance (the paper's experiments use `10⁻⁴`), the
//! result is approximate. Each iteration touches every edge once, so the cost
//! is `O(n t)` on a k-NN graph.

use crate::params::MrParams;
use crate::ranking::{check_k, check_query, Ranker, TopKResult};
use crate::Result;
use mogul_graph::adjacency::symmetric_normalization;
use mogul_graph::Graph;
use mogul_sparse::CsrMatrix;

/// Configuration of the iterative solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeConfig {
    /// Stop when the infinity norm of the score change drops below this.
    pub tolerance: f64,
    /// Hard cap on the number of iterations.
    pub max_iterations: usize,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            tolerance: 1e-4,
            max_iterations: 1000,
        }
    }
}

/// Power-iteration Manifold Ranking solver.
#[derive(Debug, Clone)]
pub struct IterativeSolver {
    normalized: CsrMatrix,
    params: MrParams,
    config: IterativeConfig,
}

impl IterativeSolver {
    /// Precompute the normalized adjacency `S = C^{-1/2} A C^{-1/2}`.
    pub fn new(graph: &Graph, params: MrParams, config: IterativeConfig) -> Result<Self> {
        Self::from_adjacency(&graph.adjacency_matrix(), params, config)
    }

    /// Same as [`IterativeSolver::new`] but starting from an adjacency matrix.
    pub fn from_adjacency(
        adjacency: &CsrMatrix,
        params: MrParams,
        config: IterativeConfig,
    ) -> Result<Self> {
        let normalized = symmetric_normalization(adjacency)?;
        Ok(IterativeSolver {
            normalized,
            params,
            config,
        })
    }

    /// Number of iterations used for the most recent call is not tracked on
    /// the solver (it is stateless); this helper runs the iteration and also
    /// returns the iteration count, for the convergence experiments.
    pub fn scores_with_iterations(&self, query: usize) -> Result<(Vec<f64>, usize)> {
        check_query(query, self.num_nodes())?;
        let n = self.num_nodes();
        let alpha = self.params.alpha;
        let fit = self.params.query_scale();
        let mut x = vec![0.0; n];
        let mut iterations = 0usize;
        for it in 0..self.config.max_iterations {
            iterations = it + 1;
            let mut next = self.normalized.matvec(&x)?;
            for v in next.iter_mut() {
                *v *= alpha;
            }
            next[query] += fit;
            let delta = mogul_sparse::vector::max_abs_diff(&next, &x)?;
            x = next;
            if delta < self.config.tolerance {
                break;
            }
        }
        Ok((x, iterations))
    }
}

impl Ranker for IterativeSolver {
    fn name(&self) -> &'static str {
        "Iterative"
    }

    fn num_nodes(&self) -> usize {
        self.normalized.nrows()
    }

    fn top_k(&self, query: usize, k: usize) -> Result<TopKResult> {
        check_k(k)?;
        let scores = self.scores(query)?;
        Ok(TopKResult::from_scores(&scores, k, Some(query)))
    }

    fn scores(&self, query: usize) -> Result<Vec<f64>> {
        Ok(self.scores_with_iterations(query)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::InverseSolver;

    fn ring_with_chords() -> Graph {
        let n = 12;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, (i + 1) % n, 1.0));
        }
        edges.push((0, 6, 0.3));
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn converges_to_the_exact_scores() {
        let g = ring_with_chords();
        let params = MrParams::new(0.9).unwrap();
        let exact = InverseSolver::new(&g, params).unwrap();
        let iterative = IterativeSolver::new(
            &g,
            params,
            IterativeConfig {
                tolerance: 1e-12,
                max_iterations: 10_000,
            },
        )
        .unwrap();
        for query in [0usize, 5] {
            let a = exact.scores(query).unwrap();
            let b = iterative.scores(query).unwrap();
            assert!(mogul_sparse::vector::max_abs_diff(&a, &b).unwrap() < 1e-8);
        }
    }

    #[test]
    fn loose_tolerance_is_approximate_but_close() {
        let g = ring_with_chords();
        let params = MrParams::default();
        let exact = InverseSolver::new(&g, params).unwrap();
        let iterative = IterativeSolver::new(&g, params, IterativeConfig::default()).unwrap();
        let (scores, iterations) = iterative.scores_with_iterations(0).unwrap();
        assert!(iterations > 1);
        let reference = exact.scores(0).unwrap();
        let err = mogul_sparse::vector::max_abs_diff(&scores, &reference).unwrap();
        assert!(err < 0.05, "approximation error too large: {err}");
    }

    #[test]
    fn iteration_budget_is_respected() {
        let g = ring_with_chords();
        let solver = IterativeSolver::new(
            &g,
            MrParams::default(),
            IterativeConfig {
                tolerance: 0.0,
                max_iterations: 3,
            },
        )
        .unwrap();
        let (_, iterations) = solver.scores_with_iterations(0).unwrap();
        assert_eq!(iterations, 3);
    }

    #[test]
    fn top_k_and_validation() {
        let g = ring_with_chords();
        let solver =
            IterativeSolver::new(&g, MrParams::default(), IterativeConfig::default()).unwrap();
        let top = solver.top_k(0, 4).unwrap();
        assert_eq!(top.len(), 4);
        assert!(!top.contains(0));
        // Ring neighbours of node 0 should rank near the top.
        assert!(top.contains(1) || top.contains(11));
        assert!(solver.scores(100).is_err());
        assert!(solver.top_k(0, 0).is_err());
        assert_eq!(solver.name(), "Iterative");
    }
}
