//! The immutable scatter-gather view of a [`ShardedIndex`](super::ShardedIndex).
//!
//! A [`ShardedSnapshot`] pins every shard at exactly one epoch: it is
//! assembled from `Arc`-shared per-shard [`IndexSnapshot`]s, so a query (or
//! a whole batch) served against it can never observe a torn mix of shard
//! states — the serving layer reads the sharded snapshot once per batch and
//! every answer in the batch sees the same per-shard epochs.
//!
//! Query semantics follow the block-diagonal union graph (see the
//! [module docs](super)): an in-database query routes to the single owning
//! shard — every other shard's Algorithm-2 bound is exactly zero, so the
//! gather phase records them as skipped without touching them — and an
//! out-of-sample query probes the nearest shard(s) by base-cluster centroid
//! distance, merging candidates through the shared bounded top-k collector
//! with the same `(score desc, stable id asc)` tie-break as the monolithic
//! index.

use std::cmp::Reverse;
use std::sync::Arc;

use super::{route_by_centroid, ShardRouter};
use crate::mogul::SearchStats;
use crate::out_of_sample::OutOfSampleResult;
use crate::ranking::{RankedNode, TopKResult};
use crate::topk::{f64_sort_key, BoundedTopK, Entry};
use crate::update::{IndexSnapshot, SnapshotWorkspace};
use crate::{CoreError, Result};

/// How scatter-gather spread one query across the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardScatterStats {
    /// Shards in the index.
    pub shards_total: usize,
    /// Shards actually searched.
    pub shards_probed: usize,
    /// Shards skipped by the zero cross-shard bound (in-database queries)
    /// or by centroid-distance routing (out-of-sample queries).
    pub shards_skipped: usize,
    /// Probed shards that failed to answer. Always `0` on the in-process
    /// query paths of this module (a shard error fails the whole query);
    /// the serving layer's degraded scatter-gather sets it when it drops a
    /// faulted shard from the merge.
    pub shards_failed: usize,
    /// Per-shard search counters, summed over every probed shard — never
    /// clobbered by whichever shard answered last.
    pub search: SearchStats,
}

/// Caller-owned scratch for sharded queries: the per-shard workspace plus
/// the gather-phase merge buffer. Reusing one across queries keeps the hot
/// path allocation-free once the buffers have grown.
#[derive(Debug, Default)]
pub struct ShardedWorkspace {
    pub(crate) inner: SnapshotWorkspace,
    merge: Vec<Entry<(Reverse<u64>, usize), RankedNode>>,
}

impl ShardedWorkspace {
    /// Fresh workspace with empty buffers.
    pub fn new() -> Self {
        ShardedWorkspace::default()
    }

    /// The per-shard snapshot workspace (for callers mixing sharded and
    /// monolithic queries over one scratch allocation).
    pub fn inner_mut(&mut self) -> &mut SnapshotWorkspace {
        &mut self.inner
    }
}

/// An immutable, epoch-consistent view over every shard. See the
/// [module docs](super).
#[derive(Debug)]
pub struct ShardedSnapshot {
    shards: Vec<Arc<IndexSnapshot>>,
    router: ShardRouter,
    epoch: u64,
    shard_probes: usize,
    dim: usize,
}

impl ShardedSnapshot {
    pub(crate) fn assemble(
        shards: Vec<Arc<IndexSnapshot>>,
        router: ShardRouter,
        epoch: u64,
        shard_probes: usize,
    ) -> Self {
        let dim = shards.first().map_or(0, |s| s.feature_dim());
        ShardedSnapshot {
            shards,
            router,
            epoch,
            shard_probes,
            dim,
        }
    }

    /// The sharded epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch each shard is pinned at, shard order.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch()).collect()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no live item remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.dim
    }

    /// Shards an out-of-sample query probes.
    pub fn shard_probes(&self) -> usize {
        self.shard_probes
    }

    /// Whether every shard is on a clean (freshly factorized) epoch.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(|s| s.is_clean())
    }

    /// Whether a global id refers to a live item.
    pub fn contains(&self, global: usize) -> bool {
        self.locate_live(global).is_some()
    }

    /// The shard owning a live global id.
    pub fn shard_of(&self, global: usize) -> Option<usize> {
        self.locate_live(global).map(|(s, _)| s)
    }

    /// The id router (global stable id ↔ owning shard).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The per-shard snapshots, shard order.
    pub fn shards(&self) -> &[Arc<IndexSnapshot>] {
        &self.shards
    }

    /// Global ids of every live item, ascending.
    pub fn item_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.shards.len())
            .flat_map(|s| {
                self.shards[s]
                    .item_ids()
                    .into_iter()
                    .map(move |local| self.global_of_local(s, local))
            })
            .collect();
        ids.sort_unstable();
        ids
    }

    fn locate_live(&self, global: usize) -> Option<(usize, usize)> {
        self.router
            .locate(global)
            .filter(|&(s, local)| self.shards[s].contains(local))
    }

    fn global_of_local(&self, shard: usize, local: usize) -> usize {
        self.router
            .global_of_local(shard, local)
            .expect("shard handed out a local id the router does not know")
    }

    fn translate_top_k(&self, shard: usize, top: &TopKResult) -> TopKResult {
        TopKResult::new(
            top.items()
                .iter()
                .map(|item| RankedNode {
                    node: self.global_of_local(shard, item.node),
                    score: item.score,
                })
                .collect(),
        )
    }

    // -- in-database queries ------------------------------------------------

    /// Top-k for a database item by global id (allocating convenience).
    pub fn query_by_id(&self, global: usize, k: usize) -> Result<TopKResult> {
        self.query_by_id_in(&mut ShardedWorkspace::new(), global, k)
    }

    /// Top-k for a database item by global id, with caller-owned scratch.
    ///
    /// Routes to the single owning shard: under the block-diagonal union
    /// graph every other shard's contribution is identically zero, so this
    /// is the lossless degenerate form of Algorithm 2's cluster skipping.
    pub fn query_by_id_in(
        &self,
        ws: &mut ShardedWorkspace,
        global: usize,
        k: usize,
    ) -> Result<TopKResult> {
        self.query_by_id_with_stats_in(ws, global, k)
            .map(|(t, _)| t)
    }

    /// [`Self::query_by_id_in`] plus scatter statistics.
    pub fn query_by_id_with_stats_in(
        &self,
        ws: &mut ShardedWorkspace,
        global: usize,
        k: usize,
    ) -> Result<(TopKResult, ShardScatterStats)> {
        let (shard, local) = self.locate_live(global).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "item {global} is not in this sharded snapshot (never inserted, or removed)"
            ))
        })?;
        let top = self.shards[shard].query_by_id_in(&mut ws.inner, local, k)?;
        let stats = ShardScatterStats {
            shards_total: self.shards.len(),
            shards_probed: 1,
            shards_skipped: self.shards.len() - 1,
            shards_failed: 0,
            search: SearchStats::default(),
        };
        Ok((self.translate_top_k(shard, &top), stats))
    }

    /// Batched in-database queries: ids are grouped by owning shard, each
    /// group runs through the shard's panel-blocked batch engine, and the
    /// answers scatter back into request order — bit-identical to the
    /// scalar path per query. Like the monolithic batch call, one unknown
    /// id fails the whole call.
    pub fn query_batch_by_id_in(
        &self,
        ws: &mut ShardedWorkspace,
        globals: &[usize],
        k: usize,
    ) -> Result<Vec<TopKResult>> {
        let mut located = Vec::with_capacity(globals.len());
        for &global in globals {
            located.push(self.locate_live(global).ok_or_else(|| {
                CoreError::InvalidInput(format!(
                    "item {global} is not in this sharded snapshot (never inserted, or removed)"
                ))
            })?);
        }
        let mut groups: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &(shard, local)) in located.iter().enumerate() {
            groups[shard].push((pos, local));
        }
        let mut out: Vec<Option<TopKResult>> = (0..globals.len()).map(|_| None).collect();
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let locals: Vec<usize> = group.iter().map(|&(_, local)| local).collect();
            let results = self.shards[shard].query_batch_by_id_in(&mut ws.inner, &locals, k)?;
            for (&(pos, _), top) in group.iter().zip(results) {
                out[pos] = Some(self.translate_top_k(shard, &top));
            }
        }
        Ok(out
            .into_iter()
            .map(|t| t.expect("every request position was answered by its shard group"))
            .collect())
    }

    // -- out-of-sample queries ----------------------------------------------

    /// Top-k for an arbitrary feature vector (allocating convenience).
    pub fn query_by_feature(&self, feature: &[f64], k: usize) -> Result<OutOfSampleResult> {
        self.query_by_feature_in(&mut ShardedWorkspace::new(), feature, k)
    }

    /// Top-k for an arbitrary feature vector, with caller-owned scratch.
    ///
    /// Probes the [`shard_probes`](Self::shard_probes) shards whose nearest
    /// base-cluster centroid is nearest (ties to the lower shard), merges
    /// their candidates with the shared bounded top-k collector under the
    /// `(score desc, global id asc)` tie-break, concatenates neighbours in
    /// probe order, sums the phase timings and **sums** the search counters
    /// across the probed shards.
    pub fn query_by_feature_in(
        &self,
        ws: &mut ShardedWorkspace,
        feature: &[f64],
        k: usize,
    ) -> Result<OutOfSampleResult> {
        self.query_by_feature_with_stats_in(ws, feature, k)
            .map(|(r, _)| r)
    }

    /// [`Self::query_by_feature_in`] plus scatter statistics.
    pub fn query_by_feature_with_stats_in(
        &self,
        ws: &mut ShardedWorkspace,
        feature: &[f64],
        k: usize,
    ) -> Result<(OutOfSampleResult, ShardScatterStats)> {
        let probe_order = self.probe_order(feature)?;
        let probes = &probe_order[..self.shard_probes.min(probe_order.len())];

        if let [only] = probes {
            // Single-probe fast path (the paper-faithful default): the
            // shard's answer is the global answer after id translation.
            let res = self.shards[*only].query_by_feature_in(&mut ws.inner, feature, k)?;
            let stats = self.scatter_stats(1, res.stats);
            let translated = OutOfSampleResult {
                top_k: self.translate_top_k(*only, &res.top_k),
                neighbors: res
                    .neighbors
                    .iter()
                    .map(|&local| self.global_of_local(*only, local))
                    .collect(),
                ..res
            };
            return Ok((translated, stats));
        }

        let mut merged = BoundedTopK::with_buffer(k, std::mem::take(&mut ws.merge));
        let mut neighbors = Vec::new();
        let mut nearest_neighbor_secs = 0.0;
        let mut top_k_secs = 0.0;
        let mut search = SearchStats::default();
        for &shard in probes {
            let res = self.shards[shard].query_by_feature_in(&mut ws.inner, feature, k)?;
            for item in res.top_k.items() {
                let global = self.global_of_local(shard, item.node);
                merged.offer(Entry {
                    key: (Reverse(f64_sort_key(item.score)), global),
                    value: RankedNode {
                        node: global,
                        score: item.score,
                    },
                });
            }
            neighbors.extend(
                res.neighbors
                    .iter()
                    .map(|&local| self.global_of_local(shard, local)),
            );
            nearest_neighbor_secs += res.nearest_neighbor_secs;
            top_k_secs += res.top_k_secs;
            search.merge(&res.stats);
        }
        let mut picked = merged.into_sorted_vec();
        let top_k = TopKResult::new(picked.iter().map(|e| e.value).collect());
        picked.clear();
        ws.merge = picked;

        let stats = self.scatter_stats(probes.len(), search);
        Ok((
            OutOfSampleResult {
                top_k,
                neighbors,
                nearest_neighbor_secs,
                top_k_secs,
                stats: search,
            },
            stats,
        ))
    }

    /// Batched out-of-sample queries. With a single probe per query (the
    /// default), features are grouped by routed shard and run through each
    /// shard's panel-blocked batch engine; multi-probe configurations fall
    /// back to per-query scatter-gather. Either way every answer is
    /// bit-identical to the scalar path. One unroutable feature fails the
    /// whole call, mirroring the monolithic batch semantics.
    pub fn query_batch_by_feature_in(
        &self,
        ws: &mut ShardedWorkspace,
        features: &[&[f64]],
        k: usize,
    ) -> Result<Vec<OutOfSampleResult>> {
        if self.shard_probes != 1 {
            let mut out = Vec::with_capacity(features.len());
            for &feature in features {
                out.push(self.query_by_feature_in(ws, feature, k)?);
            }
            return Ok(out);
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (pos, &feature) in features.iter().enumerate() {
            let shard = route_by_centroid(self.shards.iter().cloned(), feature)?;
            groups[shard].push(pos);
        }
        let mut out: Vec<Option<OutOfSampleResult>> = (0..features.len()).map(|_| None).collect();
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let group_features: Vec<&[f64]> = group.iter().map(|&pos| features[pos]).collect();
            let results =
                self.shards[shard].query_batch_by_feature_in(&mut ws.inner, &group_features, k)?;
            for (&pos, res) in group.iter().zip(results) {
                out[pos] = Some(OutOfSampleResult {
                    top_k: self.translate_top_k(shard, &res.top_k),
                    neighbors: res
                        .neighbors
                        .iter()
                        .map(|&local| self.global_of_local(shard, local))
                        .collect(),
                    ..res
                });
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every request position was answered by its shard group"))
            .collect())
    }

    /// Shards in probe order: ascending minimum centroid distance, ties to
    /// the lower shard index. Errors when no shard can score the feature
    /// (wrong dimension, non-finite values, or no non-empty cluster).
    /// Public so the serving layer's degraded scatter loop probes exactly
    /// the shards (and in exactly the order) the in-process path would.
    pub fn probe_order(&self, feature: &[f64]) -> Result<Vec<usize>> {
        let mut keyed: Vec<(u64, usize)> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(s, snap)| {
                snap.base()
                    .min_centroid_distance2(feature)
                    .map(|d2| (f64_sort_key(d2), s))
            })
            .collect();
        if keyed.is_empty() {
            return Err(CoreError::InvalidInput(
                "feature cannot be routed: wrong dimension, non-finite values, \
                 or no shard has a non-empty cluster"
                    .into(),
            ));
        }
        keyed.sort_unstable();
        Ok(keyed.into_iter().map(|(_, s)| s).collect())
    }

    fn scatter_stats(&self, probed: usize, search: SearchStats) -> ShardScatterStats {
        ShardScatterStats {
            shards_total: self.shards.len(),
            shards_probed: probed,
            shards_skipped: self.shards.len() - probed,
            shards_failed: 0,
            search,
        }
    }

    // -- degraded scatter-gather building blocks ----------------------------
    //
    // The serving layer's fault-tolerant scatter loop (per-shard fault
    // containment, deadlines, partial answers) lives in `mogul_serve`; these
    // primitives let it probe one shard at a time and merge whatever subset
    // survived with exactly the gather semantics of
    // [`Self::query_by_feature_in`].

    /// Probe a **single** shard for an out-of-sample query, translating the
    /// shard-local ids of the answer to global stable ids.
    ///
    /// This is one scatter leg of [`Self::query_by_feature_in`]: merging
    /// every probed shard's leg with [`Self::merge_scatter`] reproduces the
    /// full scatter-gather answer bit-identically, and merging a subset is
    /// the degraded-mode answer (a true sub-merge of the healthy shards).
    pub fn query_shard_by_feature_in(
        &self,
        ws: &mut ShardedWorkspace,
        shard: usize,
        feature: &[f64],
        k: usize,
    ) -> Result<OutOfSampleResult> {
        let snap = self.shards.get(shard).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "shard {shard} is out of range ({} shards)",
                self.shards.len()
            ))
        })?;
        let res = snap.query_by_feature_in(&mut ws.inner, feature, k)?;
        Ok(OutOfSampleResult {
            top_k: self.translate_top_k(shard, &res.top_k),
            neighbors: res
                .neighbors
                .iter()
                .map(|&local| self.global_of_local(shard, local))
                .collect(),
            ..res
        })
    }

    /// Gather already-translated per-shard legs (see
    /// [`Self::query_shard_by_feature_in`]) into one answer: bounded top-k
    /// under the `(score desc, global id asc)` tie-break, neighbours
    /// concatenated in leg order, phase timings and search counters summed
    /// in leg order — exactly the gather phase of
    /// [`Self::query_by_feature_in`], so the merge of all legs (in probe
    /// order) is bit-identical to the undegraded answer.
    pub fn merge_scatter(k: usize, legs: &[OutOfSampleResult]) -> OutOfSampleResult {
        let mut merged = BoundedTopK::with_buffer(k, Vec::new());
        let mut neighbors = Vec::new();
        let mut nearest_neighbor_secs = 0.0;
        let mut top_k_secs = 0.0;
        let mut search = SearchStats::default();
        for leg in legs {
            for item in leg.top_k.items() {
                merged.offer(Entry {
                    key: (Reverse(f64_sort_key(item.score)), item.node),
                    value: *item,
                });
            }
            neighbors.extend_from_slice(&leg.neighbors);
            nearest_neighbor_secs += leg.nearest_neighbor_secs;
            top_k_secs += leg.top_k_secs;
            search.merge(&leg.stats);
        }
        let top_k = TopKResult::new(merged.into_sorted_vec().iter().map(|e| e.value).collect());
        OutOfSampleResult {
            top_k,
            neighbors,
            nearest_neighbor_secs,
            top_k_secs,
            stats: search,
        }
    }
}
