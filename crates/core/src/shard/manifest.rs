//! Sharded-index persistence: `S` MOG1 shard files plus a checksummed
//! manifest, warm-started in parallel.
//!
//! A saved sharded index is a **directory**:
//!
//! ```text
//! <dir>/manifest.mog1      MOG1 container, one `shard-manifest` section
//! <dir>/shard-0000.mog1    ordinary updatable-index file (PR-5 format)
//! <dir>/shard-0001.mog1
//! ...
//! ```
//!
//! The manifest is itself a MOG1 container — it inherits the whole
//! container discipline for free (magic, version, section table, footer,
//! FNV-1a checksums, fail-closed typed errors) — holding one section whose
//! payload records: a manifest schema version, the sharded epoch, feature
//! dimensionality, partitioner seed, probe count, the parallel flag, and
//! per shard the file name, file checksum, file length, stable-id base
//! range and pinned epoch, followed by the overflow-id history (the shard
//! index of every post-build insert, in global-id order — locals are
//! recomputed at load and cross-checked against each shard's id counter).
//!
//! Every load path fails closed with a typed [`PersistError`]: truncation
//! anywhere, bit flips anywhere (manifest *or* shard file), hostile counts
//! and lengths, path-traversal file names, overlapping or gapped id ranges,
//! missing/swapped/stale shard files, and future versions are all rejected
//! without panicking — the corruption matrix in
//! `crates/core/tests/shard_manifest.rs` probes each of these.

use std::path::Path;

use super::{ShardRouter, ShardedIndex, MAX_SHARDS};
use crate::persist::{
    find_section, io_err, load_updatable_from_bytes, parse_container, save_file, save_updatable_to,
    PersistError, SectionKind, SectionWriter,
};
use crate::update::UpdatableIndex;
use mogul_sparse::persist::{checksum64, put_u64, ByteReader};

/// File name of the manifest inside a sharded-index directory.
pub const MANIFEST_FILE_NAME: &str = "manifest.mog1";

/// Schema version of the manifest payload (independent of the MOG1
/// container version — both are checked).
const MANIFEST_VERSION: u64 = 1;

/// Longest accepted shard file name, in bytes.
const MAX_NAME_LEN: usize = 255;

/// Largest accepted feature dimensionality (mirrors the persist layer's
/// hostile-length discipline: a corrupt count must not drive allocation).
const MAX_DIM: usize = 1 << 20;

/// Largest accepted per-shard build length / overflow count.
const MAX_IDS: usize = 1 << 28;

/// The canonical file name of shard `shard`.
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:04}.mog1")
}

/// One shard's entry in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardFileEntry {
    /// File name, relative to the manifest's directory.
    pub file_name: String,
    /// FNV-1a checksum of the whole shard file.
    pub checksum: u64,
    /// Length of the shard file in bytes.
    pub file_len: u64,
    /// First global stable id of the shard's build range.
    pub id_base: usize,
    /// Length of the shard's build range.
    pub id_len: usize,
    /// The shard epoch pinned when the checkpoint was written.
    pub epoch: u64,
}

/// Everything the manifest records (the return of [`inspect_manifest`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifestInfo {
    /// The sharded epoch at checkpoint time.
    pub epoch: u64,
    /// Feature dimensionality shared by every shard.
    pub dim: usize,
    /// Partitioner seed the index was built with.
    pub seed: u64,
    /// Shards an out-of-sample query probes.
    pub shard_probes: usize,
    /// Whether warm start loads the shards with scoped threads.
    pub parallel: bool,
    /// Per-shard file entries, shard order.
    pub shards: Vec<ShardFileEntry>,
    /// Owning shard of every overflow global id, in id order.
    pub overflow: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn corrupt(detail: String) -> PersistError {
    PersistError::Corrupt {
        what: "shard manifest",
        detail,
    }
}

fn encode_manifest(info: &ShardManifestInfo) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, MANIFEST_VERSION);
    put_u64(&mut out, info.epoch);
    put_u64(&mut out, info.dim as u64);
    put_u64(&mut out, info.seed);
    put_u64(&mut out, info.shard_probes as u64);
    put_u64(&mut out, u64::from(info.parallel));
    put_u64(&mut out, info.shards.len() as u64);
    for entry in &info.shards {
        put_u64(&mut out, entry.file_name.len() as u64);
        out.extend_from_slice(entry.file_name.as_bytes());
        put_u64(&mut out, entry.checksum);
        put_u64(&mut out, entry.file_len);
        put_u64(&mut out, entry.id_base as u64);
        put_u64(&mut out, entry.id_len as u64);
        put_u64(&mut out, entry.epoch);
    }
    put_u64(&mut out, info.overflow.len() as u64);
    for &shard in &info.overflow {
        put_u64(&mut out, shard as u64);
    }
    out
}

fn decode_err(source: crate::CoreError) -> PersistError {
    PersistError::SectionDecode {
        section: "shard-manifest",
        source,
    }
}

/// Reject file names that could escape the manifest's directory or collide
/// with the manifest itself.
fn validate_file_name(name: &str) -> Result<(), PersistError> {
    if name.is_empty() || name.len() > MAX_NAME_LEN {
        return Err(corrupt(format!(
            "shard file name length {} outside [1, {MAX_NAME_LEN}]",
            name.len()
        )));
    }
    if name == "." || name == ".." || name.contains('/') || name.contains('\\') {
        return Err(corrupt(format!(
            "shard file name {name:?} is not a plain file name"
        )));
    }
    if name == MANIFEST_FILE_NAME {
        return Err(corrupt(
            "shard file name collides with the manifest file".into(),
        ));
    }
    Ok(())
}

fn decode_manifest(payload: &[u8]) -> Result<ShardManifestInfo, PersistError> {
    let mut reader = ByteReader::new(payload);
    let version = reader.take_u64("manifest version").map_err(decode_err)?;
    if version != MANIFEST_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: u32::try_from(version).unwrap_or(u32::MAX),
        });
    }
    let epoch = reader.take_u64("sharded epoch").map_err(decode_err)?;
    let dim = reader.take_usize("feature dimension").map_err(decode_err)?;
    if dim == 0 || dim > MAX_DIM {
        return Err(corrupt(format!(
            "feature dimension {dim} outside [1, {MAX_DIM}]"
        )));
    }
    let seed = reader.take_u64("partitioner seed").map_err(decode_err)?;
    let shard_probes = reader.take_usize("shard probes").map_err(decode_err)?;
    let parallel = match reader.take_u64("parallel flag").map_err(decode_err)? {
        0 => false,
        1 => true,
        other => return Err(corrupt(format!("parallel flag {other} is not 0 or 1"))),
    };
    let shard_count = reader.take_usize("shard count").map_err(decode_err)?;
    if shard_count == 0 || shard_count > MAX_SHARDS {
        return Err(corrupt(format!(
            "shard count {shard_count} outside [1, {MAX_SHARDS}]"
        )));
    }
    if shard_probes == 0 || shard_probes > shard_count {
        return Err(corrupt(format!(
            "shard probe count {shard_probes} outside [1, {shard_count}]"
        )));
    }

    let mut shards = Vec::with_capacity(shard_count);
    let mut next_base = 0usize;
    let mut names = std::collections::BTreeSet::new();
    for s in 0..shard_count {
        let name_len = reader
            .take_usize("shard file name length")
            .map_err(decode_err)?;
        if name_len > MAX_NAME_LEN {
            return Err(corrupt(format!(
                "shard {s} file name length {name_len} exceeds {MAX_NAME_LEN}"
            )));
        }
        let name_bytes = reader
            .take_bytes(name_len, "shard file name")
            .map_err(decode_err)?;
        let file_name = std::str::from_utf8(name_bytes)
            .map_err(|_| corrupt(format!("shard {s} file name is not valid UTF-8")))?
            .to_string();
        validate_file_name(&file_name)?;
        if !names.insert(file_name.clone()) {
            return Err(corrupt(format!("duplicate shard file name {file_name:?}")));
        }
        let checksum = reader.take_u64("shard file checksum").map_err(decode_err)?;
        let file_len = reader.take_u64("shard file length").map_err(decode_err)?;
        if file_len == 0 {
            return Err(corrupt(format!("shard {s} records an empty file")));
        }
        let id_base = reader.take_usize("shard id base").map_err(decode_err)?;
        let id_len = reader
            .take_usize("shard id range length")
            .map_err(decode_err)?;
        if id_len == 0 || id_len > MAX_IDS {
            return Err(corrupt(format!(
                "shard {s} id range length {id_len} outside [1, {MAX_IDS}]"
            )));
        }
        if id_base != next_base {
            return Err(corrupt(format!(
                "shard {s} id range starts at {id_base} but {next_base} expected \
                 (ranges must be contiguous and non-overlapping)"
            )));
        }
        next_base += id_len;
        let shard_epoch = reader.take_u64("shard epoch").map_err(decode_err)?;
        shards.push(ShardFileEntry {
            file_name,
            checksum,
            file_len,
            id_base,
            id_len,
            epoch: shard_epoch,
        });
    }

    let overflow_count = reader.take_len(8, "overflow entries").map_err(decode_err)?;
    if overflow_count > MAX_IDS {
        return Err(corrupt(format!(
            "overflow count {overflow_count} exceeds {MAX_IDS}"
        )));
    }
    let mut overflow = Vec::with_capacity(overflow_count);
    for _ in 0..overflow_count {
        let shard = reader
            .take_usize("overflow shard index")
            .map_err(decode_err)?;
        if shard >= shard_count {
            return Err(corrupt(format!(
                "overflow entry names shard {shard} but only {shard_count} exist"
            )));
        }
        overflow.push(shard);
    }
    reader.finish("shard manifest").map_err(decode_err)?;

    Ok(ShardManifestInfo {
        epoch,
        dim,
        seed,
        shard_probes,
        parallel,
        shards,
        overflow,
    })
}

/// Decode and fully validate a manifest from raw bytes, without touching
/// any shard file.
pub fn inspect_manifest_bytes(bytes: &[u8]) -> Result<ShardManifestInfo, PersistError> {
    let sections = parse_container(bytes)?;
    let payload = find_section(&sections, SectionKind::ShardManifest)?;
    decode_manifest(payload)
}

/// [`inspect_manifest_bytes`] over the manifest inside a sharded-index
/// directory (or a direct path to a manifest file).
pub fn inspect_manifest(path: impl AsRef<Path>) -> Result<ShardManifestInfo, PersistError> {
    let path = path.as_ref();
    let manifest_path = if path.is_dir() {
        path.join(MANIFEST_FILE_NAME)
    } else {
        path.to_path_buf()
    };
    let bytes = std::fs::read(&manifest_path)
        .map_err(|e| io_err("read shard manifest", Some(&manifest_path), e))?;
    inspect_manifest_bytes(&bytes)
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// Checkpoint a sharded index into `dir` (created if absent): one MOG1 file
/// per shard plus [`MANIFEST_FILE_NAME`], every file written atomically
/// (temp + rename) with the manifest last — a crash mid-save never
/// invalidates a previous complete checkpoint.
///
/// Every shard must be on a clean epoch; call
/// [`ShardedIndex::checkpoint_clean`] first if updates have been applied.
pub fn save_sharded(
    index: &ShardedIndex,
    dir: impl AsRef<Path>,
) -> Result<ShardManifestInfo, PersistError> {
    let dir = dir.as_ref();
    for s in 0..index.num_shards() {
        if !index.shard(s).snapshot().is_clean() {
            return Err(PersistError::InvalidState(format!(
                "shard {s} is not on a clean epoch; call checkpoint_clean() before saving"
            )));
        }
    }
    std::fs::create_dir_all(dir)
        .map_err(|e| io_err("create sharded index directory", Some(dir), e))?;

    let router = index.router();
    let mut entries = Vec::with_capacity(index.num_shards());
    for s in 0..index.num_shards() {
        let bytes = save_updatable_to(index.shard(s), Vec::new())?;
        let file_name = shard_file_name(s);
        let path = dir.join(&file_name);
        save_file(&path, |sink| {
            use std::io::Write;
            sink.write_all(&bytes)
                .map_err(|e| io_err("write shard file", Some(&path), e))
        })?;
        let (id_base, id_len) = router.base_range(s).expect("shard exists");
        entries.push(ShardFileEntry {
            checksum: checksum64(&bytes),
            file_len: bytes.len() as u64,
            file_name,
            id_base,
            id_len,
            epoch: index.shard(s).epoch(),
        });
    }

    let info = ShardManifestInfo {
        epoch: index.epoch(),
        dim: index.snapshot().feature_dim(),
        seed: index.seed(),
        shard_probes: index.shard_probes(),
        parallel: index.parallel(),
        shards: entries,
        overflow: router.overflow_shards(),
    };
    let payload = encode_manifest(&info);
    let manifest_path = dir.join(MANIFEST_FILE_NAME);
    save_file(&manifest_path, |sink| {
        let mut writer = SectionWriter::new(sink)?;
        writer.write_section(SectionKind::ShardManifest, &payload)?;
        writer.finish().map(drop)
    })?;
    Ok(info)
}

// ---------------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------------

/// Warm-start a sharded index from a directory written by [`save_sharded`].
///
/// The manifest is fully validated first; each shard file is then read,
/// pinned against its recorded length and checksum (a stale or swapped
/// file fails closed before any decoding), and decoded through the ordinary
/// updatable-index loader — in parallel with scoped threads when the
/// checkpoint was configured for it. Cross-file invariants close the loop:
/// every shard must come back on the manifest's pinned epoch, with the
/// manifest's dimensionality, and with an id counter exactly accounted for
/// by its build range plus the recorded overflow history.
pub fn load_sharded(dir: impl AsRef<Path>) -> Result<ShardedIndex, PersistError> {
    let dir = dir.as_ref();
    let manifest_path = dir.join(MANIFEST_FILE_NAME);
    let bytes = std::fs::read(&manifest_path)
        .map_err(|e| io_err("read shard manifest", Some(&manifest_path), e))?;
    let info = inspect_manifest_bytes(&bytes)?;

    let mut shard_bytes = Vec::with_capacity(info.shards.len());
    for entry in &info.shards {
        let path = dir.join(&entry.file_name);
        let data = std::fs::read(&path).map_err(|e| io_err("read shard file", Some(&path), e))?;
        if data.len() as u64 != entry.file_len || checksum64(&data) != entry.checksum {
            return Err(PersistError::Corrupt {
                what: "shard file",
                detail: format!(
                    "{} does not match the manifest (stale, swapped, or corrupted file)",
                    entry.file_name
                ),
            });
        }
        shard_bytes.push(data);
    }

    let shards = load_shard_indexes(&shard_bytes, info.parallel && info.shards.len() > 1)?;

    let lens: Vec<usize> = info.shards.iter().map(|e| e.id_len).collect();
    let router = ShardRouter::from_parts(&lens, &info.overflow)?;
    for (s, (shard, entry)) in shards.iter().zip(&info.shards).enumerate() {
        if shard.epoch() != entry.epoch {
            return Err(PersistError::Corrupt {
                what: "shard file",
                detail: format!(
                    "{} is pinned at epoch {} but holds epoch {} (stale or swapped file)",
                    entry.file_name,
                    entry.epoch,
                    shard.epoch()
                ),
            });
        }
        if shard.snapshot().feature_dim() != info.dim {
            return Err(PersistError::Corrupt {
                what: "shard file",
                detail: format!(
                    "{} holds {}-dimensional features but the manifest records {}",
                    entry.file_name,
                    shard.snapshot().feature_dim(),
                    info.dim
                ),
            });
        }
        let expected_next = entry.id_len + router.overflow_of_shard(s).len();
        if shard.next_stable_id() != expected_next {
            return Err(PersistError::Corrupt {
                what: "shard file",
                detail: format!(
                    "{} has handed out {} local ids but the manifest accounts for \
                     {expected_next} (stale or swapped file)",
                    entry.file_name,
                    shard.next_stable_id()
                ),
            });
        }
    }

    Ok(ShardedIndex::from_parts(
        shards,
        router,
        info.epoch,
        info.shard_probes,
        info.seed,
        info.parallel,
    ))
}

fn load_shard_indexes(
    shard_bytes: &[Vec<u8>],
    parallel: bool,
) -> Result<Vec<UpdatableIndex>, PersistError> {
    if !parallel {
        return shard_bytes
            .iter()
            .map(|b| load_updatable_from_bytes(b))
            .collect();
    }
    let results: Vec<Result<UpdatableIndex, PersistError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = shard_bytes
            .iter()
            .map(|b| scope.spawn(move || load_updatable_from_bytes(b)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(PersistError::Corrupt {
                        what: "shard file",
                        detail: "shard loader thread panicked".into(),
                    })
                })
            })
            .collect()
    });
    results.into_iter().collect()
}
