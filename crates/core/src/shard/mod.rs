//! Sharded multi-index: partition the corpus into independent Mogul indexes
//! and answer queries by scatter-gather.
//!
//! A single [`UpdatableIndex`] is bounded by one
//! `L D Lᵀ` factorization on one core. A [`ShardedIndex`] removes both
//! bounds: the corpus is split into `S` cluster-aligned groups (via
//! `mogul-graph`'s k-means partitioner), each group becomes its own
//! fully-independent index (own k-NN graph, ordering, factorization, own
//! rebuild debt), precompute runs shard-parallel with scoped threads, and a
//! query fans out to the shards whose data can contribute, merging candidates
//! through the shared bounded top-k collector.
//!
//! ## Semantics: the union graph is block-diagonal
//!
//! Sharding **changes the graph**, deliberately: no k-NN edge crosses a
//! shard boundary, so the sharded index ranks against the block-diagonal
//! union of the per-shard graphs. Manifold-ranking mass cannot leave the
//! query's block — the Neumann series `Σ (αS)^t q` only follows edges — so
//! every cross-shard score is identically zero and the per-shard upper bound
//! of Algorithm 2 degenerates to exactly `0` for every foreign shard. Shard
//! skipping is therefore *lossless* under these semantics: an in-database
//! query routes to the one shard owning the item (the other `S − 1` shards
//! are pruned by a bound of zero), and an out-of-sample query probes the
//! [`shard_probes`](ShardedConfig::shard_probes) nearest shards by centroid
//! distance, exactly the way Algorithm 2 of the paper probes clusters.
//! The equivalence battery (`tests/shard_equivalence.rs`) pins the rest:
//! against per-group reference indexes the sharded answers are bit-identical,
//! and on corpora whose monolithic k-NN graph is already disconnected along
//! the partition they match the *unsharded* index too (exactly in MogulE
//! mode, within documented tolerance for the incomplete factorization).
//!
//! ## Stable ids
//!
//! Items keep one global id for life. The initial build hands out
//! shard-major contiguous ranges (`shard 0` owns `[0, n_0)`, `shard 1` owns
//! `[n_0, n_0 + n_1)`, …); later inserts draw from the shared overflow range
//! starting at the total build size, and the [`ShardRouter`] maps any global
//! id to its owning `(shard, local id)` pair in `O(log S)` / `O(1)`.
//! Updates route to the owning shard, so rebuild debt is accumulated — and
//! paid — per shard.

mod manifest;
mod snapshot;

pub use manifest::{
    inspect_manifest, inspect_manifest_bytes, load_sharded, save_sharded, shard_file_name,
    ShardFileEntry, ShardManifestInfo, MANIFEST_FILE_NAME,
};
pub use snapshot::{ShardScatterStats, ShardedSnapshot, ShardedWorkspace};

use std::sync::Arc;

use crate::update::{IndexBuilder, IndexDelta, RebuildDebt, UpdatableIndex, UpdateOp};
use crate::{CoreError, Result};
use mogul_graph::clustering::partition::{partition_points, PartitionConfig};

/// Hard ceiling on the shard count (also enforced by the manifest loader —
/// a hostile manifest cannot make the loader allocate unbounded state).
pub const MAX_SHARDS: usize = 4096;

/// Configuration of [`ShardedIndex::build`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards. At least 1, at most [`MAX_SHARDS`].
    pub shards: usize,
    /// Per-shard index construction parameters (every shard uses the same).
    pub builder: IndexBuilder,
    /// Seed of the cluster-aligned partitioner.
    pub seed: u64,
    /// Shards probed by an out-of-sample query, nearest centroid first.
    /// `1` (the default) is the paper-faithful setting — Section 4.6.2
    /// searches the nearest cluster only; raising it trades latency for
    /// recall near shard boundaries. Clamped to the shard count.
    pub shard_probes: usize,
    /// Build (and warm-start) the shards with scoped threads. The result is
    /// identical either way — shards are fully independent — so this is a
    /// pure wall-clock knob.
    pub parallel: bool,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            builder: IndexBuilder::new(),
            seed: 42,
            shard_probes: 1,
            parallel: true,
        }
    }
}

impl ShardedConfig {
    /// Default configuration with the given shard count.
    pub fn with_shards(shards: usize) -> Self {
        ShardedConfig {
            shards,
            ..ShardedConfig::default()
        }
    }

    /// Set the per-shard index builder.
    pub fn builder(mut self, builder: IndexBuilder) -> Self {
        self.builder = builder;
        self
    }

    /// Set the partitioner seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of shards an out-of-sample query probes.
    pub fn shard_probes(mut self, probes: usize) -> Self {
        self.shard_probes = probes;
        self
    }

    /// Enable or disable shard-parallel precompute.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::InvalidInput(
                "shard count must be at least 1".into(),
            ));
        }
        if self.shards > MAX_SHARDS {
            return Err(CoreError::InvalidInput(format!(
                "shard count {} exceeds the maximum of {MAX_SHARDS}",
                self.shards
            )));
        }
        if self.shard_probes == 0 {
            return Err(CoreError::InvalidInput(
                "shard probe count must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Maps global stable ids to `(shard, local id)` pairs and back.
///
/// The initial build hands out shard-major contiguous base ranges; every
/// later insert draws a fresh global id from the shared overflow range
/// `[base_total, ∞)` and records its owner here. Ids are never reused, in
/// either space — removing an item retires its id forever, exactly like the
/// underlying [`UpdatableIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    /// `(global base, build length)` per shard; bases ascending, contiguous.
    bases: Vec<(usize, usize)>,
    /// Total build size — the first overflow global id.
    base_total: usize,
    /// `(shard, local id)` of overflow global id `base_total + i`.
    overflow: Vec<(usize, usize)>,
    /// Per shard: overflow global ids in insertion order (local id
    /// `len_s + j` ↔ `overflow_of_shard[s][j]`).
    overflow_of_shard: Vec<Vec<usize>>,
}

impl ShardRouter {
    pub(crate) fn from_bases(lens: &[usize]) -> Self {
        let mut bases = Vec::with_capacity(lens.len());
        let mut base = 0usize;
        for &len in lens {
            bases.push((base, len));
            base += len;
        }
        ShardRouter {
            bases,
            base_total: base,
            overflow: Vec::new(),
            overflow_of_shard: vec![Vec::new(); lens.len()],
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.bases.len()
    }

    /// The `(base, build length)` range of a shard.
    pub fn base_range(&self, shard: usize) -> Option<(usize, usize)> {
        self.bases.get(shard).copied()
    }

    /// Total build size (the first overflow global id).
    pub fn base_total(&self) -> usize {
        self.base_total
    }

    /// Number of overflow ids handed out so far.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Overflow global ids owned by `shard`, in insertion order.
    pub(crate) fn overflow_of_shard(&self, shard: usize) -> &[usize] {
        &self.overflow_of_shard[shard]
    }

    /// The `(shard, local id)` pair owning a global id, or `None` when the
    /// id has never been handed out. (A handed-out id may still refer to a
    /// removed item — the owning shard is the authority on liveness.)
    pub fn locate(&self, global: usize) -> Option<(usize, usize)> {
        if global < self.base_total {
            let shard = match self.bases.binary_search_by_key(&global, |&(b, _)| b) {
                Ok(s) => s,
                Err(next) => next - 1,
            };
            let (base, _) = self.bases[shard];
            Some((shard, global - base))
        } else {
            self.overflow.get(global - self.base_total).copied()
        }
    }

    /// The global id of a shard-local id, or `None` when the shard never
    /// handed out that local id.
    pub fn global_of_local(&self, shard: usize, local: usize) -> Option<usize> {
        let &(base, len) = self.bases.get(shard)?;
        if local < len {
            Some(base + local)
        } else {
            self.overflow_of_shard[shard].get(local - len).copied()
        }
    }

    /// Record a fresh overflow insert into `shard`, returning its global id.
    /// `local` is the local id the shard assigned.
    pub(crate) fn push_overflow(&mut self, shard: usize, local: usize) -> usize {
        let global = self.base_total + self.overflow.len();
        self.overflow.push((shard, local));
        self.overflow_of_shard[shard].push(global);
        global
    }

    pub(crate) fn from_parts(
        lens: &[usize],
        overflow_shards: &[usize],
    ) -> std::result::Result<Self, crate::persist::PersistError> {
        let mut router = ShardRouter::from_bases(lens);
        for &shard in overflow_shards {
            if shard >= router.num_shards() {
                return Err(crate::persist::PersistError::Corrupt {
                    what: "shard manifest",
                    detail: format!(
                        "overflow entry names shard {shard} but only {} exist",
                        router.num_shards()
                    ),
                });
            }
            let local = lens[shard] + router.overflow_of_shard[shard].len();
            router.push_overflow(shard, local);
        }
        Ok(router)
    }

    /// The shard index of every overflow entry, in global-id order (the
    /// manifest serializes exactly this — locals are recomputed at load).
    pub(crate) fn overflow_shards(&self) -> Vec<usize> {
        self.overflow.iter().map(|&(s, _)| s).collect()
    }
}

/// How the initial build partitioned the corpus.
#[derive(Debug, Clone)]
pub struct ShardedBuildReport {
    /// Input positions per shard (ascending within each shard).
    pub groups: Vec<Vec<usize>>,
    /// Global stable id assigned to each input position.
    pub id_of_position: Vec<usize>,
    /// Whether the shards were factorized with scoped threads.
    pub parallel: bool,
}

/// What one [`ShardedIndex::apply`] call did.
#[derive(Debug, Clone)]
pub struct ShardedUpdateReport {
    /// The sharded epoch after the delta.
    pub epoch: u64,
    /// Global ids of the inserted items, in operation order.
    pub inserted: Vec<usize>,
    /// Number of removals applied.
    pub removed: usize,
    /// Shards that paid their rebuild debt while applying.
    pub rebuilt_shards: Vec<usize>,
    /// Shards the delta touched, ascending.
    pub touched_shards: Vec<usize>,
}

/// A corpus partitioned into independent per-shard Mogul indexes, queried by
/// scatter-gather. See the [module docs](self) for semantics.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<UpdatableIndex>,
    router: ShardRouter,
    epoch: u64,
    shard_probes: usize,
    seed: u64,
    parallel: bool,
    snapshot: Arc<ShardedSnapshot>,
}

impl ShardedIndex {
    /// Partition `features` into `config.shards` cluster-aligned groups and
    /// build one index per group — with scoped threads when
    /// `config.parallel` and more than one shard.
    ///
    /// Requires at least `2 · shards` items so every shard can build a k-NN
    /// graph and survive removals.
    pub fn build(
        features: Vec<Vec<f64>>,
        config: ShardedConfig,
    ) -> Result<(Self, ShardedBuildReport)> {
        config.validate()?;
        let groups = partition_points(
            &features,
            &PartitionConfig {
                shards: config.shards,
                seed: config.seed,
                min_group_size: 2,
            },
        )?;

        let mut per_shard_features: Vec<Vec<Vec<f64>>> = groups
            .iter()
            .map(|group| group.iter().map(|&pos| features[pos].clone()).collect())
            .collect();

        let parallel = config.parallel && config.shards > 1;
        let shards = build_shards(&mut per_shard_features, config.builder, parallel)?;

        let lens: Vec<usize> = groups.iter().map(Vec::len).collect();
        let router = ShardRouter::from_bases(&lens);
        let mut id_of_position = vec![0usize; features.len()];
        for (s, group) in groups.iter().enumerate() {
            let (base, _) = router.base_range(s).expect("shard exists");
            for (local, &pos) in group.iter().enumerate() {
                id_of_position[pos] = base + local;
            }
        }

        let report = ShardedBuildReport {
            groups,
            id_of_position,
            parallel,
        };
        Ok((
            ShardedIndex::from_parts(
                shards,
                router,
                0,
                config.shard_probes.min(config.shards),
                config.seed,
                config.parallel,
            ),
            report,
        ))
    }

    pub(crate) fn from_parts(
        shards: Vec<UpdatableIndex>,
        router: ShardRouter,
        epoch: u64,
        shard_probes: usize,
        seed: u64,
        parallel: bool,
    ) -> Self {
        let snapshot = Arc::new(ShardedSnapshot::assemble(
            shards.iter().map(UpdatableIndex::snapshot).collect(),
            router.clone(),
            epoch,
            shard_probes,
        ));
        ShardedIndex {
            shards,
            router,
            epoch,
            shard_probes,
            seed,
            parallel,
            snapshot,
        }
    }

    fn refresh_snapshot(&mut self) {
        self.snapshot = Arc::new(ShardedSnapshot::assemble(
            self.shards.iter().map(UpdatableIndex::snapshot).collect(),
            self.router.clone(),
            self.epoch,
            self.shard_probes,
        ));
    }

    /// The current immutable scatter-gather snapshot. Cheap (`Arc` clone);
    /// the snapshot observes every shard at exactly one epoch.
    pub fn snapshot(&self) -> Arc<ShardedSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// The sharded epoch: bumped by every mutation that published new state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The per-shard snapshot epochs, shard order.
    pub fn shard_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(UpdatableIndex::epoch).collect()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Live items across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(UpdatableIndex::len).sum()
    }

    /// Whether no live item remains (unreachable through the public API —
    /// every shard keeps at least one live item).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a global id refers to a live item.
    pub fn contains(&self, global: usize) -> bool {
        self.router
            .locate(global)
            .is_some_and(|(s, local)| self.shards[s].contains(local))
    }

    /// The id router (global stable id ↔ owning shard).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Shards an out-of-sample query probes.
    pub fn shard_probes(&self) -> usize {
        self.shard_probes
    }

    /// Partitioner seed the index was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether shard-parallel precompute / warm start is enabled.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Read access to one shard's index (tests, persistence, inspection).
    pub fn shard(&self, shard: usize) -> &UpdatableIndex {
        &self.shards[shard]
    }

    /// Rebuild debt per shard.
    pub fn shard_debts(&self) -> Vec<RebuildDebt> {
        self.shards.iter().map(UpdatableIndex::debt).collect()
    }

    /// Apply a delta with global semantics: inserts route to the shard with
    /// the nearest cluster centroid (ties to the lower shard), removals
    /// route through the [`ShardRouter`]. The whole delta is validated
    /// before any shard is touched; per-shard application then reuses
    /// [`UpdatableIndex::apply`](crate::UpdatableIndex::apply), so each
    /// shard pays (or defers) its own rebuild debt.
    ///
    /// Divergence from the monolithic index, by design: a removal must name
    /// an item that was live *before* this delta — removing an id inserted
    /// by the same delta is rejected (the id does not exist yet in the
    /// global space).
    pub fn apply(&mut self, delta: &IndexDelta) -> Result<ShardedUpdateReport> {
        if delta.is_empty() {
            return Ok(ShardedUpdateReport {
                epoch: self.epoch,
                inserted: Vec::new(),
                removed: 0,
                rebuilt_shards: Vec::new(),
                touched_shards: Vec::new(),
            });
        }

        // Route and validate every operation before touching any shard.
        let mut routed: Vec<(usize, UpdateOp)> = Vec::with_capacity(delta.len());
        let mut sim_live: Vec<usize> = self.shards.iter().map(UpdatableIndex::len).collect();
        let mut sim_removed = std::collections::BTreeSet::new();
        for op in delta.ops() {
            match op {
                UpdateOp::Insert { feature } => {
                    let shard = self.route_insert(feature)?;
                    sim_live[shard] += 1;
                    routed.push((shard, op.clone()));
                }
                UpdateOp::Remove { id } => {
                    let (shard, local) = self.router.locate(*id).ok_or_else(|| {
                        CoreError::InvalidInput(format!(
                            "cannot remove item {id}: no shard owns this id \
                             (never inserted, or inserted by this same delta)"
                        ))
                    })?;
                    if !self.shards[shard].contains(local) || !sim_removed.insert(*id) {
                        return Err(CoreError::InvalidInput(format!(
                            "cannot remove item {id}: unknown or already removed"
                        )));
                    }
                    if sim_live[shard] == 1 {
                        return Err(CoreError::InvalidInput(format!(
                            "cannot remove item {id}: it is the last live item of shard {shard}"
                        )));
                    }
                    sim_live[shard] -= 1;
                    routed.push((shard, UpdateOp::Remove { id: local }));
                }
            }
        }

        // Group into per-shard deltas, preserving in-shard operation order.
        let mut shard_deltas: Vec<IndexDelta> =
            (0..self.shards.len()).map(|_| IndexDelta::new()).collect();
        for (shard, op) in &routed {
            match op {
                UpdateOp::Insert { feature } => {
                    shard_deltas[*shard].insert(feature.clone());
                }
                UpdateOp::Remove { id } => {
                    shard_deltas[*shard].remove(*id);
                }
            }
        }

        let mut rebuilt_shards = Vec::new();
        let mut touched_shards = Vec::new();
        let mut shard_inserted: Vec<std::collections::VecDeque<usize>> =
            Vec::with_capacity(self.shards.len());
        let mut removed = 0usize;
        for (s, shard_delta) in shard_deltas.iter().enumerate() {
            if shard_delta.is_empty() {
                shard_inserted.push(std::collections::VecDeque::new());
                continue;
            }
            let report = self.shards[s].apply(shard_delta)?;
            if report.rebuilt {
                rebuilt_shards.push(s);
            }
            touched_shards.push(s);
            removed += report.removed;
            shard_inserted.push(report.inserted.into());
        }

        // Hand out global overflow ids in operation order.
        let mut inserted = Vec::new();
        for (shard, op) in &routed {
            if matches!(op, UpdateOp::Insert { .. }) {
                let local = shard_inserted[*shard]
                    .pop_front()
                    .expect("shard reported one local id per routed insert");
                inserted.push(self.router.push_overflow(*shard, local));
            }
        }

        self.epoch += 1;
        self.refresh_snapshot();
        Ok(ShardedUpdateReport {
            epoch: self.epoch,
            inserted,
            removed,
            rebuilt_shards,
            touched_shards,
        })
    }

    /// The shard an insert (or out-of-sample query) routes to: the one whose
    /// nearest base-cluster centroid is nearest overall, ties to the lower
    /// shard index.
    pub fn route_insert(&self, feature: &[f64]) -> Result<usize> {
        route_by_centroid(self.shards.iter().map(|s| s.snapshot()), feature)
    }

    /// Force a full refactorization of one shard, publishing a fresh
    /// (debt-free) epoch for it. The other shards are untouched — this is
    /// how rebuild debt is paid incrementally, shard by shard.
    pub fn rebuild_shard(&mut self, shard: usize) -> Result<()> {
        if shard >= self.shards.len() {
            return Err(CoreError::InvalidInput(format!(
                "shard {shard} does not exist ({} shards)",
                self.shards.len()
            )));
        }
        self.shards[shard].rebuild()?;
        self.epoch += 1;
        self.refresh_snapshot();
        Ok(())
    }

    /// Rebuild every shard that is not on a clean epoch, returning the
    /// shards rebuilt. After this the index is checkpointable
    /// ([`save_sharded`]) and every query runs against a fresh
    /// factorization.
    pub fn checkpoint_clean(&mut self) -> Result<Vec<usize>> {
        let mut rebuilt = Vec::new();
        for s in 0..self.shards.len() {
            if !self.shards[s].snapshot().is_clean() {
                self.shards[s].rebuild()?;
                rebuilt.push(s);
            }
        }
        if !rebuilt.is_empty() {
            self.epoch += 1;
            self.refresh_snapshot();
        }
        Ok(rebuilt)
    }
}

/// Route a feature to the shard whose nearest non-empty base-cluster
/// centroid is nearest overall; ties break to the lower shard index.
pub(crate) fn route_by_centroid(
    snapshots: impl Iterator<Item = Arc<crate::update::IndexSnapshot>>,
    feature: &[f64],
) -> Result<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (s, snap) in snapshots.enumerate() {
        let Some(d2) = snap.base().min_centroid_distance2(feature) else {
            continue;
        };
        let key = (crate::topk::f64_sort_key(d2), s);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(_, s)| s).ok_or_else(|| {
        CoreError::InvalidInput(
            "feature cannot be routed: wrong dimension, non-finite values, \
             or no shard has a non-empty cluster"
                .into(),
        )
    })
}

/// Build one index per feature group, optionally with scoped threads.
fn build_shards(
    per_shard_features: &mut [Vec<Vec<f64>>],
    builder: IndexBuilder,
    parallel: bool,
) -> Result<Vec<UpdatableIndex>> {
    if !parallel {
        return per_shard_features
            .iter_mut()
            .map(|f| builder.build(std::mem::take(f)))
            .collect();
    }
    let results: Vec<Result<UpdatableIndex>> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard_features
            .iter_mut()
            .map(|f| {
                let features = std::mem::take(f);
                scope.spawn(move || builder.build(features))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(CoreError::InvalidInput(
                        "shard build thread panicked".into(),
                    ))
                })
            })
            .collect()
    });
    results.into_iter().collect()
}
