//! Shared bounded top-k selection.
//!
//! Almost every hot path in this crate ends in "keep the k best of a stream
//! of candidates": Algorithm 2's answer set `K`, the `TopKResult`
//! constructors of the baselines, the nearest-cluster / nearest-neighbour
//! scans of out-of-sample queries, the anchor attachment of EMR and the
//! incremental-update k-NN scan. They all used to mix full `sort_by` passes
//! (`O(n log n)` and an `O(n)` allocation) with hand-rolled `BinaryHeap`
//! idioms; this module is the one shared implementation: a bounded max-heap
//! of the `k` best candidates, `O(n log k)` time, `O(k)` space, with the
//! tie-break order encoded in the key type.
//!
//! Keys are ordered so that **smaller is better** ("top" = the `k` smallest
//! keys). Selecting by a float with a pinned tie-break is the common case;
//! [`f64_sort_key`] maps an `f64` to a `u64` that orders like the IEEE total
//! order, so composite keys are plain tuples:
//!
//! * ascending distance, ties to the earlier candidate:
//!   `(f64_sort_key(d), position)`
//! * descending score, ties to the smaller node id:
//!   `(Reverse(f64_sort_key(score)), node)`
//!
//! [`Entry`] attaches an arbitrary payload to a key without the payload
//! participating in the ordering (so payloads need not be `Ord` — `f64`
//! scores ride along untouched).

use std::collections::BinaryHeap;

/// Map an `f64` to a `u64` that sorts in the same order as the IEEE 754
/// total order: `-inf < … < -0.0 < +0.0 < … < +inf < NaN` (positive NaN;
/// negative NaN sorts below `-inf`). The map is monotone and injective, so
/// tuples of sort keys compare exactly like the underlying floats — callers
/// that must treat NaN specially (most do: a NaN distance or score is never
/// a meaningful "best") should filter it before offering.
#[inline]
pub fn f64_sort_key(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// A `(key, payload)` pair ordered **by key alone**: the payload never
/// participates in comparisons, so it can carry non-`Ord` data (scores,
/// distances) alongside a totally ordered key.
#[derive(Debug, Clone, Copy)]
pub struct Entry<K, V> {
    /// The ordering key (smaller is better).
    pub key: K,
    /// The payload carried with the key.
    pub value: V,
}

impl<K: Ord, V> PartialEq for Entry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<K: Ord, V> Eq for Entry<K, V> {}
impl<K: Ord, V> PartialOrd for Entry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for Entry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A bounded collector of the `k` smallest items of a stream.
///
/// Internally a max-heap of at most `k` items whose root is the **worst**
/// retained item; offering is `O(log k)` and rejected offers (not better
/// than the current worst of a full collector) cost one comparison.
#[derive(Debug, Clone)]
pub struct BoundedTopK<T: Ord> {
    k: usize,
    heap: BinaryHeap<T>,
}

impl<T: Ord> BoundedTopK<T> {
    /// A collector retaining the `k` smallest offered items.
    pub fn new(k: usize) -> Self {
        BoundedTopK {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)),
        }
    }

    /// A collector built on a recycled backing buffer (cleared here); the
    /// buffer is handed back by [`BoundedTopK::into_sorted_vec`] (or
    /// [`BoundedTopK::into_unsorted_vec`]) so hot loops can reuse the heap
    /// allocation across selections.
    pub fn with_buffer(k: usize, buf: Vec<T>) -> Self {
        let mut heap = BinaryHeap::from(buf);
        heap.clear();
        BoundedTopK { k, heap }
    }

    /// Number of retained items (`≤ k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` items are retained (further offers must beat the
    /// worst retained item).
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The worst retained item, if any — the item the next successful offer
    /// would evict once the collector is full.
    pub fn worst(&self) -> Option<&T> {
        self.heap.peek()
    }

    /// Offer one item; returns `true` when it was retained (possibly
    /// evicting the previous worst).
    pub fn offer(&mut self, item: T) -> bool {
        if self.k == 0 {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(item);
            return true;
        }
        match self.heap.peek() {
            Some(worst) if item < *worst => {
                self.heap.pop();
                self.heap.push(item);
                true
            }
            _ => false,
        }
    }

    /// The retained items, best (smallest) first.
    pub fn into_sorted_vec(self) -> Vec<T> {
        self.heap.into_sorted_vec()
    }

    /// The retained items in unspecified (heap) order — for callers that
    /// re-sort anyway and want to recycle the allocation afterwards (clear
    /// the vector and hand it back to [`BoundedTopK::with_buffer`]).
    pub fn into_unsorted_vec(self) -> Vec<T> {
        self.heap.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn keeps_the_k_smallest_keys() {
        let mut top = BoundedTopK::new(3);
        for key in [5u64, 1, 9, 3, 7, 2] {
            top.offer(key);
        }
        assert!(top.is_full());
        assert_eq!(top.into_sorted_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn k_zero_and_short_streams() {
        let mut none = BoundedTopK::new(0);
        assert!(!none.offer(1u32));
        assert!(none.is_empty());
        assert!(none.is_full());
        let mut short = BoundedTopK::new(10);
        short.offer(4u32);
        short.offer(2u32);
        assert_eq!(short.len(), 2);
        assert!(!short.is_full());
        assert_eq!(short.into_sorted_vec(), vec![2, 4]);
    }

    #[test]
    fn float_key_orders_like_the_values() {
        let values = [-f64::INFINITY, -3.5, -0.0, 0.0, 1e-300, 2.0, f64::INFINITY];
        for pair in values.windows(2) {
            assert!(f64_sort_key(pair[0]) < f64_sort_key(pair[1]), "{pair:?}");
        }
        // NaN (positive) sorts above +inf under the total order.
        assert!(f64_sort_key(f64::NAN) > f64_sort_key(f64::INFINITY));
    }

    #[test]
    fn descending_score_with_node_tiebreak() {
        // The canonical "top-k by score, ties to the smaller node" key.
        let scores = [(0usize, 0.1), (1, 0.9), (2, 0.5), (3, 0.9), (4, 0.0)];
        let mut top = BoundedTopK::new(3);
        for &(node, s) in &scores {
            top.offer(Entry {
                key: (Reverse(f64_sort_key(s)), node),
                value: s,
            });
        }
        let picked: Vec<(usize, f64)> = top
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.key.1, e.value))
            .collect();
        assert_eq!(picked, vec![(1, 0.9), (3, 0.9), (2, 0.5)]);
    }

    #[test]
    fn buffer_recycling_round_trips() {
        let mut top = BoundedTopK::with_buffer(2, Vec::with_capacity(16));
        for key in [4u64, 1, 3] {
            top.offer(key);
        }
        let mut buf = top.into_unsorted_vec();
        buf.sort_unstable();
        assert_eq!(buf, vec![1, 3]);
        buf.clear();
        assert!(buf.capacity() >= 2);
        let again = BoundedTopK::<u64>::with_buffer(2, buf);
        assert!(again.into_unsorted_vec().is_empty());
    }
}
