//! Versioned on-disk persistence of serving-ready indexes (the `MOG1`
//! format).
//!
//! Every structure the precompute pipeline produces — the k-NN graph, the
//! Algorithm 1 ordering, the `L D Lᵀ` factors, the cluster pruning bounds,
//! the database features, and the clean-epoch state of an
//! [`UpdatableIndex`] — can be written to a single checksummed binary file
//! and loaded back **without re-running any of the precompute**: no
//! clustering, no factorization, no k-NN construction. A loaded index
//! answers every query bit-identically to the index that was saved (the
//! round-trip suite in `crates/core/tests/persist_roundtrip.rs` asserts
//! exact `==` on scores, rankings and work counters).
//!
//! # Container layout (format version 1)
//!
//! ```text
//! offset 0    magic  b"MOG1"            (4 bytes)
//! offset 4    format version, u32 LE    (currently 1)
//! offset 8    section payloads, back to back (raw bytes)
//! ...         section table: one 28-byte entry per section
//!             { kind: u32, offset: u64, len: u64, checksum: u64 }
//! end - 24    footer: { section count: u64, table checksum: u64,
//!                       trailer magic b"MOG1TRLR" }
//! ```
//!
//! The table lives at the *end* so the writer can stream section payloads
//! through any [`Write`] sink without seeking; the loader reads the footer
//! first and walks the table backwards from it. Every section carries an
//! FNV-1a 64-bit checksum ([`mogul_sparse::persist::checksum64`]) verified
//! before a single payload byte is interpreted, and the table itself is
//! checksummed in the footer — a bit flip anywhere in the file surfaces as a
//! typed [`PersistError`], never as a silently wrong index.
//!
//! # Versioning & compatibility policy
//!
//! * The magic plus the `u32` version gate the whole file: a loader only
//!   parses versions it knows ([`FORMAT_VERSION`]); anything newer fails
//!   closed with [`PersistError::UnsupportedVersion`]. Any incompatible
//!   layout change MUST bump the version (the golden-fixture test pins v1).
//! * *Within* a version, unknown section kinds are ignored by loaders (and
//!   listed by [`inspect`]), so purely additive sections do not require a
//!   bump.
//! * Floats are stored as raw IEEE-754 bits; integers as little-endian
//!   `u64`. Nothing in the format depends on the writing platform.
//!
//! See `docs/PERSISTENCE.md` for the operator-facing view (cold-start cost
//! model, checkpointing recipes).

use crate::emr::EmrSolver;
use crate::mogul::{ClusterBounds, Factorization, MogulConfig, MogulIndex, PrecomputeStats};
use crate::out_of_sample::{OutOfSampleConfig, OutOfSampleIndex};
use crate::params::MrParams;
use crate::update::{IndexSnapshot, UpdatableIndex};
use crate::CoreError;
use mogul_graph::clustering::modularity::ModularityConfig;
use mogul_graph::persist as graph_codec;
use mogul_sparse::persist as codec;
use mogul_sparse::persist::{checksum64, ByteReader};
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// File magic: the first four bytes of every index file.
pub const MAGIC: [u8; 4] = *b"MOG1";
/// Trailer magic: the last eight bytes of every index file.
pub const FOOTER_MAGIC: [u8; 8] = *b"MOG1TRLR";
/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Format-v1 limit on the lifetime stable-id counter of an updatable index
/// (`next_id`): 2²⁸ ids. Stable ids are allocated once per insert and never
/// reused, and both the writer and the loader materialize an id → node
/// table of `next_id` slots, so this bound is what keeps a crafted file
/// from demanding an allocation unrelated to the file's actual size. It is
/// enforced symmetrically at save and load time; a legitimate writer would
/// need ~268 million lifetime inserts (and would itself hold the multi-GB
/// table in memory) before hitting it.
pub const MAX_STABLE_IDS: usize = 1 << 28;

const HEADER_LEN: usize = 8;
const TABLE_ENTRY_LEN: usize = 28;
const FOOTER_LEN: usize = 24;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failures of the persistence layer.
///
/// The loader's contract is **fail closed**: any defect — truncation, bit
/// rot, an unknown version, a structurally invalid payload — returns one of
/// these variants. It never panics and never returns a partially or silently
/// wrong index.
#[derive(Debug, Clone, PartialEq)]
pub enum PersistError {
    /// An underlying I/O operation failed.
    Io {
        /// What was being attempted (e.g. `"write index file"`).
        op: &'static str,
        /// The OS error, including the path when one is known.
        detail: String,
    },
    /// The file does not start with the `MOG1` magic — it is not an index
    /// file at all.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The file declares a format version this build does not understand
    /// (e.g. it was written by a future release).
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The file ends before a required structure is complete.
    Truncated {
        /// The structure that was being read.
        what: &'static str,
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A structural invariant of the container is violated (bad trailer
    /// magic, table checksum mismatch, overlapping sections, ...).
    Corrupt {
        /// The structure that failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Name of the offending section.
        section: &'static str,
    },
    /// A section the loader requires is absent.
    MissingSection {
        /// Name of the missing section.
        section: &'static str,
    },
    /// A section passed its checksum but its payload failed structural
    /// validation while decoding.
    SectionDecode {
        /// Name of the offending section.
        section: &'static str,
        /// The underlying validation error.
        source: CoreError,
    },
    /// The in-memory structure cannot be persisted in its current state
    /// (e.g. an [`UpdatableIndex`] with uncommitted correction debt).
    InvalidState(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, detail } => write!(f, "i/o failure during {op}: {detail}"),
            PersistError::BadMagic { found } => write!(
                f,
                "not a Mogul index file: magic is {found:02x?}, expected {MAGIC:02x?} (\"MOG1\")"
            ),
            PersistError::UnsupportedVersion { found } => write!(
                f,
                "unsupported index format version {found} (this build reads version \
                 {FORMAT_VERSION}; the file was probably written by a newer release)"
            ),
            PersistError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated index file: {what} needs {needed} bytes but only {available} remain"
            ),
            PersistError::Corrupt { what, detail } => {
                write!(f, "corrupt index file ({what}): {detail}")
            }
            PersistError::ChecksumMismatch { section } => write!(
                f,
                "checksum mismatch in section '{section}': the file is corrupt"
            ),
            PersistError::MissingSection { section } => {
                write!(f, "required section '{section}' is missing")
            }
            PersistError::SectionDecode { section, source } => {
                write!(f, "section '{section}' failed validation: {source}")
            }
            PersistError::InvalidState(msg) => write!(f, "cannot persist: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::SectionDecode { source, .. } => Some(source),
            _ => None,
        }
    }
}

pub(crate) fn io_err(op: &'static str, path: Option<&Path>, err: std::io::Error) -> PersistError {
    let detail = match path {
        Some(p) => format!("{}: {err}", p.display()),
        None => err.to_string(),
    };
    PersistError::Io { op, detail }
}

// ---------------------------------------------------------------------------
// Sections
// ---------------------------------------------------------------------------

/// The section kinds of format version 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Flavor, parameters, item count, dimensionality.
    Meta,
    /// The Algorithm 1 node ordering (permutation + cluster layout).
    Ordering,
    /// The `L D Lᵀ` factors.
    Factors,
    /// The cluster pruning bounds (`Ū_i`, `Ū_{i:j}`).
    Bounds,
    /// The database feature vectors.
    Features,
    /// The precompute statistics (timing breakdown, factor sizes).
    Stats,
    /// The current k-NN graph adjacency (updatable flavor only).
    Graph,
    /// The updatable-index writer state (stable ids, policy, epoch).
    Updatable,
    /// The EMR baseline's anchor-graph state.
    Emr,
    /// The sharded-index manifest (shard files, checksums, id ranges).
    ShardManifest,
}

impl SectionKind {
    /// The on-disk code of this section kind.
    pub fn code(self) -> u32 {
        match self {
            SectionKind::Meta => 1,
            SectionKind::Ordering => 2,
            SectionKind::Factors => 3,
            SectionKind::Bounds => 4,
            SectionKind::Features => 5,
            SectionKind::Stats => 6,
            SectionKind::Graph => 7,
            SectionKind::Updatable => 8,
            SectionKind::Emr => 9,
            SectionKind::ShardManifest => 10,
        }
    }

    /// The section kind of an on-disk code, if this build knows it.
    pub fn from_code(code: u32) -> Option<Self> {
        Some(match code {
            1 => SectionKind::Meta,
            2 => SectionKind::Ordering,
            3 => SectionKind::Factors,
            4 => SectionKind::Bounds,
            5 => SectionKind::Features,
            6 => SectionKind::Stats,
            7 => SectionKind::Graph,
            8 => SectionKind::Updatable,
            9 => SectionKind::Emr,
            10 => SectionKind::ShardManifest,
            _ => return None,
        })
    }

    /// Stable human-readable name (used in errors and by `inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Meta => "meta",
            SectionKind::Ordering => "ordering",
            SectionKind::Factors => "factors",
            SectionKind::Bounds => "bounds",
            SectionKind::Features => "features",
            SectionKind::Stats => "stats",
            SectionKind::Graph => "graph",
            SectionKind::Updatable => "updatable",
            SectionKind::Emr => "emr",
            SectionKind::ShardManifest => "shard-manifest",
        }
    }
}

fn name_of_code(code: u32) -> &'static str {
    SectionKind::from_code(code).map_or("unknown", SectionKind::name)
}

/// What an index file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFlavor {
    /// An immutable serving index ([`OutOfSampleIndex`]).
    Index,
    /// The clean-epoch state of an [`UpdatableIndex`] (graph + ids included).
    Updatable,
    /// The EMR baseline solver's anchor-graph state.
    Emr,
}

impl FileFlavor {
    fn code(self) -> u64 {
        match self {
            FileFlavor::Index => 0,
            FileFlavor::Updatable => 1,
            FileFlavor::Emr => 2,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            0 => FileFlavor::Index,
            1 => FileFlavor::Updatable,
            2 => FileFlavor::Emr,
            _ => return None,
        })
    }
}

impl fmt::Display for FileFlavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FileFlavor::Index => "index",
            FileFlavor::Updatable => "updatable-index",
            FileFlavor::Emr => "emr-baseline",
        })
    }
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// Streams a `MOG1` container to any [`Write`] sink: header first, then each
/// section payload as it is produced, then the checksummed table and footer
/// on [`SectionWriter::finish`]. No seeking, no buffering of the whole file.
#[derive(Debug)]
pub struct SectionWriter<W: Write> {
    sink: W,
    offset: u64,
    table: Vec<(u32, u64, u64, u64)>,
}

impl<W: Write> SectionWriter<W> {
    /// Write the header and return a writer ready for sections.
    pub fn new(mut sink: W) -> Result<Self, PersistError> {
        sink.write_all(&MAGIC)
            .and_then(|_| sink.write_all(&FORMAT_VERSION.to_le_bytes()))
            .map_err(|e| io_err("write file header", None, e))?;
        Ok(SectionWriter {
            sink,
            offset: HEADER_LEN as u64,
            table: Vec::new(),
        })
    }

    /// Append one section.
    pub fn write_section(&mut self, kind: SectionKind, payload: &[u8]) -> Result<(), PersistError> {
        self.write_raw_section(kind.code(), payload)
    }

    /// Append a section with a raw kind code (unknown codes are legal in the
    /// format — loaders skip them; this is also how the corruption tests
    /// craft hostile files).
    pub fn write_raw_section(&mut self, code: u32, payload: &[u8]) -> Result<(), PersistError> {
        self.sink
            .write_all(payload)
            .map_err(|e| io_err("write section payload", None, e))?;
        self.table
            .push((code, self.offset, payload.len() as u64, checksum64(payload)));
        self.offset += payload.len() as u64;
        Ok(())
    }

    /// Write the section table and footer, flush, and return the sink.
    pub fn finish(mut self) -> Result<W, PersistError> {
        let mut table = Vec::with_capacity(self.table.len() * TABLE_ENTRY_LEN);
        for &(code, offset, len, checksum) in &self.table {
            table.extend_from_slice(&code.to_le_bytes());
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&len.to_le_bytes());
            table.extend_from_slice(&checksum.to_le_bytes());
        }
        let table_checksum = checksum64(&table);
        self.sink
            .write_all(&table)
            .and_then(|_| {
                self.sink
                    .write_all(&(self.table.len() as u64).to_le_bytes())
            })
            .and_then(|_| self.sink.write_all(&table_checksum.to_le_bytes()))
            .and_then(|_| self.sink.write_all(&FOOTER_MAGIC))
            .and_then(|_| self.sink.flush())
            .map_err(|e| io_err("write section table", None, e))?;
        Ok(self.sink)
    }
}

// ---------------------------------------------------------------------------
// Container parsing
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct RawSection<'a> {
    pub(crate) code: u32,
    #[allow(dead_code)]
    pub(crate) offset: usize,
    pub(crate) bytes: &'a [u8],
}

fn read_u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
}

/// Validate the container structure and every checksum, returning the raw
/// sections. This is the only path into the payload bytes: nothing is
/// interpreted before its checksum has been verified.
pub(crate) fn parse_container(bytes: &[u8]) -> Result<Vec<RawSection<'_>>, PersistError> {
    if bytes.len() < 4 {
        return Err(PersistError::Truncated {
            what: "file header",
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let found: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if found != MAGIC {
        return Err(PersistError::BadMagic { found });
    }
    if bytes.len() < HEADER_LEN {
        return Err(PersistError::Truncated {
            what: "file header",
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion { found: version });
    }
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(PersistError::Truncated {
            what: "file footer",
            needed: HEADER_LEN + FOOTER_LEN,
            available: bytes.len(),
        });
    }
    let footer_start = bytes.len() - FOOTER_LEN;
    if bytes[footer_start + 16..] != FOOTER_MAGIC {
        return Err(PersistError::Corrupt {
            what: "file footer",
            detail: "trailer magic missing (file truncated or overwritten)".into(),
        });
    }
    let count = read_u64_at(bytes, footer_start);
    let stored_table_checksum = read_u64_at(bytes, footer_start + 8);
    let table_len = count
        .checked_mul(TABLE_ENTRY_LEN as u64)
        .filter(|&l| l <= (footer_start - HEADER_LEN) as u64)
        .ok_or_else(|| PersistError::Corrupt {
            what: "section table",
            detail: format!("{count} sections do not fit in the file"),
        })? as usize;
    let table_start = footer_start - table_len;
    let table = &bytes[table_start..footer_start];
    if checksum64(table) != stored_table_checksum {
        return Err(PersistError::Corrupt {
            what: "section table",
            detail: "table checksum mismatch".into(),
        });
    }

    let mut sections = Vec::with_capacity(count as usize);
    let mut seen = std::collections::BTreeSet::new();
    for i in 0..count as usize {
        let at = i * TABLE_ENTRY_LEN;
        let code = u32::from_le_bytes(table[at..at + 4].try_into().expect("4-byte slice"));
        let offset = read_u64_at(table, at + 4);
        let len = read_u64_at(table, at + 12);
        let checksum = read_u64_at(table, at + 20);
        let end = offset
            .checked_add(len)
            .ok_or_else(|| PersistError::Corrupt {
                what: "section table",
                detail: format!("section '{}' extent overflows", name_of_code(code)),
            })?;
        if offset < HEADER_LEN as u64 || end > table_start as u64 {
            return Err(PersistError::Corrupt {
                what: "section table",
                detail: format!(
                    "section '{}' [{offset}, {end}) lies outside the payload area",
                    name_of_code(code)
                ),
            });
        }
        if SectionKind::from_code(code).is_some() && !seen.insert(code) {
            return Err(PersistError::Corrupt {
                what: "section table",
                detail: format!("duplicate section '{}'", name_of_code(code)),
            });
        }
        let payload = &bytes[offset as usize..end as usize];
        if checksum64(payload) != checksum {
            return Err(PersistError::ChecksumMismatch {
                section: name_of_code(code),
            });
        }
        sections.push(RawSection {
            code,
            offset: offset as usize,
            bytes: payload,
        });
    }
    Ok(sections)
}

pub(crate) fn find_section<'a>(
    sections: &'a [RawSection<'a>],
    kind: SectionKind,
) -> Result<&'a [u8], PersistError> {
    sections
        .iter()
        .find(|s| s.code == kind.code())
        .map(|s| s.bytes)
        .ok_or(PersistError::MissingSection {
            section: kind.name(),
        })
}

fn decode_err(section: SectionKind) -> impl Fn(CoreError) -> PersistError {
    move |source| PersistError::SectionDecode {
        section: section.name(),
        source,
    }
}

// ---------------------------------------------------------------------------
// Section payload codecs
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Meta {
    flavor: FileFlavor,
    params: MrParams,
    factorization: Factorization,
    oos_config: OutOfSampleConfig,
    items: usize,
    dim: usize,
}

fn encode_meta(meta: &Meta) -> Vec<u8> {
    let mut out = Vec::with_capacity(7 * 8);
    codec::put_u64(&mut out, meta.flavor.code());
    codec::put_f64(&mut out, meta.params.alpha);
    codec::put_u64(
        &mut out,
        match meta.factorization {
            Factorization::Incomplete => 0,
            Factorization::Complete => 1,
        },
    );
    codec::put_usize(&mut out, meta.oos_config.num_neighbors);
    codec::put_usize(&mut out, meta.oos_config.cluster_probes);
    codec::put_usize(&mut out, meta.items);
    codec::put_usize(&mut out, meta.dim);
    out
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, PersistError> {
    let err = decode_err(SectionKind::Meta);
    let mut r = ByteReader::new(bytes);
    let flavor_code = r.take_u64("meta flavor").map_err(&err)?;
    let flavor = FileFlavor::from_code(flavor_code).ok_or_else(|| {
        err(CoreError::InvalidInput(format!(
            "unknown file flavor {flavor_code}"
        )))
    })?;
    let alpha = r.take_f64("meta alpha").map_err(&err)?;
    let params = MrParams::new(alpha).map_err(&err)?;
    let factorization = match r.take_u64("meta factorization").map_err(&err)? {
        0 => Factorization::Incomplete,
        1 => Factorization::Complete,
        other => {
            return Err(err(CoreError::InvalidInput(format!(
                "unknown factorization code {other}"
            ))))
        }
    };
    let num_neighbors = r.take_usize("meta oos neighbours").map_err(&err)?;
    let cluster_probes = r.take_usize("meta cluster probes").map_err(&err)?;
    let items = r.take_usize("meta item count").map_err(&err)?;
    let dim = r.take_usize("meta dimensionality").map_err(&err)?;
    r.finish("meta").map_err(&err)?;
    Ok(Meta {
        flavor,
        params,
        factorization,
        oos_config: OutOfSampleConfig {
            num_neighbors,
            cluster_probes,
        },
        items,
        dim,
    })
}

fn encode_bounds(bounds: &ClusterBounds) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_usize(&mut out, bounds.num_clusters());
    for cluster in 0..bounds.num_clusters() {
        codec::put_f64(&mut out, bounds.max_within(cluster));
        let columns = bounds.border_columns(cluster);
        codec::put_usize(&mut out, columns.len());
        for &(j, u) in columns {
            codec::put_usize(&mut out, j);
            codec::put_f64(&mut out, u);
        }
    }
    out
}

fn decode_bounds(bytes: &[u8]) -> Result<ClusterBounds, PersistError> {
    let err = decode_err(SectionKind::Bounds);
    let mut r = ByteReader::new(bytes);
    let num_clusters = r.take_len(16, "bounds cluster count").map_err(&err)?;
    let mut max_within = Vec::with_capacity(num_clusters);
    let mut border_columns = Vec::with_capacity(num_clusters);
    for _ in 0..num_clusters {
        max_within.push(r.take_f64("bounds max-within").map_err(&err)?);
        let len = r.take_len(16, "bounds border-column count").map_err(&err)?;
        let mut columns = Vec::with_capacity(len);
        for _ in 0..len {
            let j = r.take_usize("bounds border column").map_err(&err)?;
            let u = r.take_f64("bounds border maximum").map_err(&err)?;
            columns.push((j, u));
        }
        border_columns.push(columns);
    }
    r.finish("bounds").map_err(&err)?;
    ClusterBounds::from_raw_parts(max_within, border_columns).map_err(&err)
}

fn encode_features(features: &[Vec<f64>]) -> Vec<u8> {
    let dim = features.first().map_or(0, |f| f.len());
    let mut out = Vec::with_capacity(16 + features.len() * dim * 8);
    codec::put_usize(&mut out, features.len());
    codec::put_usize(&mut out, dim);
    for row in features {
        for &v in row {
            codec::put_f64(&mut out, v);
        }
    }
    out
}

fn decode_features(bytes: &[u8]) -> Result<Vec<Vec<f64>>, PersistError> {
    let err = decode_err(SectionKind::Features);
    let mut r = ByteReader::new(bytes);
    let n = r.take_usize("features row count").map_err(&err)?;
    let dim = r.take_usize("features dimensionality").map_err(&err)?;
    let total = n.checked_mul(dim).and_then(|t| t.checked_mul(8));
    match total {
        Some(t) if t == r.remaining() => {}
        _ => {
            return Err(err(CoreError::InvalidInput(format!(
                "features payload holds {} bytes but {n} x {dim} vectors were declared",
                r.remaining()
            ))))
        }
    }
    let mut features = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(r.take_f64("feature value").map_err(&err)?);
        }
        features.push(row);
    }
    Ok(features)
}

fn encode_stats(stats: &PrecomputeStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(7 * 8);
    codec::put_f64(&mut out, stats.ordering_secs);
    codec::put_f64(&mut out, stats.assembly_secs);
    codec::put_f64(&mut out, stats.factorization_secs);
    codec::put_f64(&mut out, stats.bounds_secs);
    codec::put_usize(&mut out, stats.l_nnz);
    codec::put_usize(&mut out, stats.boosted_pivots);
    codec::put_usize(&mut out, stats.fill_in);
    out
}

fn decode_stats(bytes: &[u8]) -> Result<PrecomputeStats, PersistError> {
    let err = decode_err(SectionKind::Stats);
    let mut r = ByteReader::new(bytes);
    let stats = PrecomputeStats {
        ordering_secs: r.take_f64("stats ordering secs").map_err(&err)?,
        assembly_secs: r.take_f64("stats assembly secs").map_err(&err)?,
        factorization_secs: r.take_f64("stats factorization secs").map_err(&err)?,
        bounds_secs: r.take_f64("stats bounds secs").map_err(&err)?,
        l_nnz: r.take_usize("stats l nnz").map_err(&err)?,
        boosted_pivots: r.take_usize("stats boosted pivots").map_err(&err)?,
        fill_in: r.take_usize("stats fill-in").map_err(&err)?,
    };
    r.finish("stats").map_err(&err)?;
    Ok(stats)
}

#[derive(Debug, Clone)]
struct UpdatableMeta {
    sigma: f64,
    knn_k: usize,
    max_support: usize,
    max_support_fraction: f64,
    clustering: ModularityConfig,
    epoch: u64,
    next_id: usize,
    ids: Vec<usize>,
}

fn decode_updatable_meta(bytes: &[u8]) -> Result<UpdatableMeta, PersistError> {
    let err = decode_err(SectionKind::Updatable);
    let mut r = ByteReader::new(bytes);
    let meta = UpdatableMeta {
        sigma: r.take_f64("updatable sigma").map_err(&err)?,
        knn_k: r.take_usize("updatable knn k").map_err(&err)?,
        max_support: r.take_usize("updatable max support").map_err(&err)?,
        max_support_fraction: r.take_f64("updatable support fraction").map_err(&err)?,
        clustering: ModularityConfig {
            max_levels: r.take_usize("updatable clustering levels").map_err(&err)?,
            max_sweeps: r.take_usize("updatable clustering sweeps").map_err(&err)?,
            min_gain: r.take_f64("updatable clustering gain").map_err(&err)?,
        },
        epoch: r.take_u64("updatable epoch").map_err(&err)?,
        next_id: r.take_usize("updatable next id").map_err(&err)?,
        ids: r.take_usize_vec("updatable stable ids").map_err(&err)?,
    };
    r.finish("updatable").map_err(&err)?;
    // The id → node table is sized by `next_id` — the one count a file's
    // byte budget cannot bound (ids are never reused, so the counter can
    // legitimately exceed the live item count); the format caps it instead.
    if meta.next_id > MAX_STABLE_IDS {
        return Err(err(CoreError::InvalidInput(format!(
            "next-id counter {} exceeds the format limit of {MAX_STABLE_IDS} lifetime stable ids",
            meta.next_id
        ))));
    }
    Ok(meta)
}

// ---------------------------------------------------------------------------
// Saving
// ---------------------------------------------------------------------------

fn write_index_sections<W: Write>(
    writer: &mut SectionWriter<W>,
    meta: &Meta,
    oos: &OutOfSampleIndex,
) -> Result<(), PersistError> {
    let index = oos.index();
    writer.write_section(SectionKind::Meta, &encode_meta(meta))?;

    let mut payload = Vec::new();
    graph_codec::encode_ordering(index.ordering(), &mut payload);
    writer.write_section(SectionKind::Ordering, &payload)?;

    payload.clear();
    codec::encode_ldl_factors(&index.factors, &mut payload);
    writer.write_section(SectionKind::Factors, &payload)?;

    writer.write_section(SectionKind::Bounds, &encode_bounds(&index.bounds))?;
    writer.write_section(SectionKind::Features, &encode_features(oos.features()))?;
    writer.write_section(SectionKind::Stats, &encode_stats(&index.precompute_stats()))?;
    Ok(())
}

/// Write an immutable serving index to any [`Write`] sink.
pub fn save_index_to<W: Write>(oos: &OutOfSampleIndex, sink: W) -> Result<W, PersistError> {
    let meta = Meta {
        flavor: FileFlavor::Index,
        params: oos.index().params(),
        factorization: oos.index().factorization(),
        oos_config: oos.config(),
        items: oos.index().num_nodes(),
        dim: oos.feature_dim(),
    };
    let mut writer = SectionWriter::new(sink)?;
    write_index_sections(&mut writer, &meta, oos)?;
    writer.finish()
}

/// Write an immutable serving index to a file (atomically: the bytes land in
/// a sibling temporary file first and are renamed over `path` on success, so
/// a crash mid-write never leaves a half-written index at `path`).
pub fn save_index(oos: &OutOfSampleIndex, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_file(path.as_ref(), |sink| save_index_to(oos, sink).map(drop))
}

/// Write the clean-epoch state of an [`UpdatableIndex`] to a sink.
///
/// Fails with [`PersistError::InvalidState`] unless the current epoch is
/// clean (no correction debt, no tombstones) — call
/// [`UpdatableIndex::rebuild`] first, or use the auto-checkpointing of
/// `mogul-serve`'s `IndexWriter`, which saves right after rebuilds.
pub fn save_updatable_to<W: Write>(index: &UpdatableIndex, sink: W) -> Result<W, PersistError> {
    let view = index.persist_view().ok_or_else(|| {
        PersistError::InvalidState(
            "the updatable index carries correction debt or tombstones; only a clean epoch \
             (fresh factorization) can be persisted — call rebuild() first"
                .into(),
        )
    })?;
    if view.next_id > MAX_STABLE_IDS {
        return Err(PersistError::InvalidState(format!(
            "the lifetime stable-id counter ({}) exceeds the format-v1 limit of \
             {MAX_STABLE_IDS} ids",
            view.next_id
        )));
    }
    let meta = Meta {
        flavor: FileFlavor::Updatable,
        params: view.config.params,
        factorization: view.config.factorization,
        oos_config: view.oos_config,
        items: view.ids.len(),
        dim: view.base.feature_dim(),
    };
    let mut writer = SectionWriter::new(sink)?;
    write_index_sections(&mut writer, &meta, view.base)?;

    let mut payload = Vec::new();
    graph_codec::encode_graph(view.graph, &mut payload);
    writer.write_section(SectionKind::Graph, &payload)?;

    payload.clear();
    codec::put_f64(&mut payload, view.sigma);
    codec::put_usize(&mut payload, view.knn_k);
    codec::put_usize(&mut payload, view.policy.max_support);
    codec::put_f64(&mut payload, view.policy.max_support_fraction);
    codec::put_usize(&mut payload, view.config.clustering.max_levels);
    codec::put_usize(&mut payload, view.config.clustering.max_sweeps);
    codec::put_f64(&mut payload, view.config.clustering.min_gain);
    codec::put_u64(&mut payload, view.epoch);
    codec::put_usize(&mut payload, view.next_id);
    codec::put_usize_slice(&mut payload, view.ids);
    writer.write_section(SectionKind::Updatable, &payload)?;
    writer.finish()
}

/// Write the clean-epoch state of an [`UpdatableIndex`] to a file
/// (atomically, like [`save_index`]).
pub fn save_updatable(index: &UpdatableIndex, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_file(path.as_ref(), |sink| {
        save_updatable_to(index, sink).map(drop)
    })
}

/// Write the EMR baseline solver's anchor-graph state to a sink.
pub fn save_emr_to<W: Write>(solver: &EmrSolver, sink: W) -> Result<W, PersistError> {
    let (params, anchors, lambda, h, anchor_neighbors, n) = solver.persist_parts();
    let dim = anchors.first().map_or(0, |a| a.len());
    let meta = Meta {
        flavor: FileFlavor::Emr,
        params,
        factorization: Factorization::Incomplete,
        oos_config: OutOfSampleConfig::default(),
        items: n,
        dim,
    };
    let mut writer = SectionWriter::new(sink)?;
    writer.write_section(SectionKind::Meta, &encode_meta(&meta))?;
    let mut payload = Vec::new();
    codec::put_usize(&mut payload, anchor_neighbors);
    codec::put_usize(&mut payload, n);
    codec::put_f64_slice(&mut payload, lambda);
    codec::put_usize(&mut payload, anchors.len());
    codec::put_usize(&mut payload, dim);
    for anchor in anchors {
        for &v in anchor {
            codec::put_f64(&mut payload, v);
        }
    }
    codec::encode_csr(h, &mut payload);
    writer.write_section(SectionKind::Emr, &payload)?;
    writer.finish()
}

/// Write the EMR baseline solver to a file (atomically, like
/// [`save_index`]).
pub fn save_emr(solver: &EmrSolver, path: impl AsRef<Path>) -> Result<(), PersistError> {
    save_file(path.as_ref(), |sink| save_emr_to(solver, sink).map(drop))
}

/// Stream through a temp file + fsync + atomic rename so `path` only ever
/// holds a complete container — even across a crash or power loss.
///
/// The temp name embeds the process id and a per-process counter, so
/// concurrent saves (same or different target paths, same directory) never
/// interleave into one temp file. The file is `sync_all`ed *before* the
/// rename (otherwise the rename could become durable ahead of the data,
/// replacing a good previous checkpoint with a torn one), and the parent
/// directory is fsynced after it on a best-effort basis so the rename
/// itself is durable.
pub(crate) fn save_file(
    path: &Path,
    write: impl FnOnce(&mut std::io::BufWriter<&std::fs::File>) -> Result<(), PersistError>,
) -> Result<(), PersistError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SAVE_COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut tmp_name = path.file_name().map(|n| n.to_os_string()).ok_or_else(|| {
        PersistError::InvalidState(format!("'{}' has no file name", path.display()))
    })?;
    tmp_name.push(format!(
        ".tmp-{}-{}",
        std::process::id(),
        SAVE_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let tmp = path.with_file_name(tmp_name);

    let result = (|| {
        let file =
            std::fs::File::create(&tmp).map_err(|e| io_err("create index file", Some(&tmp), e))?;
        let mut sink = std::io::BufWriter::new(&file);
        write(&mut sink)?;
        drop(sink);
        file.sync_all()
            .map_err(|e| io_err("sync index file", Some(&tmp), e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err("rename index file", Some(path), e))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Durability of the rename itself; not all platforms/filesystems allow
    // fsyncing a directory handle, so failures here are non-fatal.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Loading
// ---------------------------------------------------------------------------

fn read_file(path: &Path) -> Result<Vec<u8>, PersistError> {
    std::fs::read(path).map_err(|e| io_err("read index file", Some(path), e))
}

/// Decode the sections shared by the `index` and `updatable` flavors into a
/// ready-to-serve [`OutOfSampleIndex`] — straight reconstruction, no
/// clustering and no factorization.
fn decode_oos(sections: &[RawSection<'_>], meta: &Meta) -> Result<OutOfSampleIndex, PersistError> {
    let mut r = ByteReader::new(find_section(sections, SectionKind::Ordering)?);
    let ordering = graph_codec::decode_ordering(&mut r, "ordering")
        .and_then(|o| r.finish("ordering").map(|_| o))
        .map_err(decode_err(SectionKind::Ordering))?;

    let mut r = ByteReader::new(find_section(sections, SectionKind::Factors)?);
    let factors = codec::decode_ldl_factors(&mut r, "factors")
        .and_then(|f| r.finish("factors").map(|_| f))
        .map_err(decode_err(SectionKind::Factors))?;

    let bounds = decode_bounds(find_section(sections, SectionKind::Bounds)?)?;
    let features = decode_features(find_section(sections, SectionKind::Features)?)?;
    let stats = decode_stats(find_section(sections, SectionKind::Stats)?)?;

    let n = meta.items;
    if ordering.len() != n || factors.dim() != n || features.len() != n {
        return Err(PersistError::Corrupt {
            what: "cross-section consistency",
            detail: format!(
                "meta declares {n} items but ordering covers {}, factors {}, features {}",
                ordering.len(),
                factors.dim(),
                features.len()
            ),
        });
    }
    if bounds.num_clusters() != ordering.num_clusters() {
        return Err(PersistError::Corrupt {
            what: "cross-section consistency",
            detail: format!(
                "bounds cover {} clusters but the ordering has {}",
                bounds.num_clusters(),
                ordering.num_clusters()
            ),
        });
    }
    // Border columns index the permuted score vector at query time
    // (`cluster_estimate`'s `x[j]`); an out-of-range column would defer a
    // panic into a serving worker, so reject it at load.
    for cluster in 0..bounds.num_clusters() {
        if let Some(&(j, _)) = bounds
            .border_columns(cluster)
            .iter()
            .find(|&&(j, _)| j >= n)
        {
            return Err(PersistError::SectionDecode {
                section: SectionKind::Bounds.name(),
                source: CoreError::InvalidInput(format!(
                    "cluster {cluster} references border column {j} but the index has {n} nodes"
                )),
            });
        }
    }
    if features.first().map_or(0, |f| f.len()) != meta.dim {
        return Err(PersistError::Corrupt {
            what: "cross-section consistency",
            detail: format!(
                "meta declares dimensionality {} but features have {}",
                meta.dim,
                features.first().map_or(0, |f| f.len())
            ),
        });
    }

    let index = MogulIndex {
        params: meta.params,
        factorization: meta.factorization,
        ordering,
        factors,
        bounds,
        stats,
    };
    OutOfSampleIndex::new(index, features, meta.oos_config).map_err(decode_err(SectionKind::Meta))
}

/// Load an immutable serving index from raw container bytes.
pub fn load_index_from_bytes(bytes: &[u8]) -> Result<OutOfSampleIndex, PersistError> {
    let sections = parse_container(bytes)?;
    let meta = decode_meta(find_section(&sections, SectionKind::Meta)?)?;
    if meta.flavor != FileFlavor::Index {
        return Err(PersistError::InvalidState(format!(
            "this is an {} file; load it with the matching loader \
             (load_updatable / load_emr) or serve it via load_serving",
            meta.flavor
        )));
    }
    decode_oos(&sections, &meta)
}

/// Load an immutable serving index from a file written by [`save_index`].
pub fn load_index(path: impl AsRef<Path>) -> Result<OutOfSampleIndex, PersistError> {
    load_index_from_bytes(&read_file(path.as_ref())?)
}

/// Load an [`UpdatableIndex`] from raw container bytes.
pub fn load_updatable_from_bytes(bytes: &[u8]) -> Result<UpdatableIndex, PersistError> {
    let sections = parse_container(bytes)?;
    let meta = decode_meta(find_section(&sections, SectionKind::Meta)?)?;
    load_updatable_from_sections(&sections, &meta)
}

/// The updatable-flavor loader over an already-parsed (and
/// checksum-verified) container — shared by [`load_updatable_from_bytes`]
/// and [`load_serving_from_bytes`] so the warm-start path checksums the
/// file once, not twice.
fn load_updatable_from_sections(
    sections: &[RawSection<'_>],
    meta: &Meta,
) -> Result<UpdatableIndex, PersistError> {
    if meta.flavor != FileFlavor::Updatable {
        return Err(PersistError::InvalidState(format!(
            "this is an {} file, not an updatable-index file",
            meta.flavor
        )));
    }
    let oos = Arc::new(decode_oos(sections, meta)?);

    let mut r = ByteReader::new(find_section(sections, SectionKind::Graph)?);
    // A clean epoch's graph covers exactly the indexed items; the bound
    // also keeps a hostile node count from allocating an adjacency table.
    let graph = graph_codec::decode_graph(&mut r, "graph", meta.items)
        .and_then(|g| r.finish("graph").map(|_| g))
        .map_err(decode_err(SectionKind::Graph))?;

    let u = decode_updatable_meta(find_section(sections, SectionKind::Updatable)?)?;
    let config = MogulConfig {
        params: meta.params,
        factorization: meta.factorization,
        clustering: u.clustering,
    };
    UpdatableIndex::from_persist_parts(
        config,
        u.knn_k,
        meta.oos_config,
        crate::update::RebuildPolicy {
            max_support: u.max_support,
            max_support_fraction: u.max_support_fraction,
        },
        u.sigma,
        graph,
        oos,
        u.ids,
        u.next_id,
        u.epoch,
    )
    .map_err(decode_err(SectionKind::Updatable))
}

/// Load an [`UpdatableIndex`] from a file written by [`save_updatable`].
pub fn load_updatable(path: impl AsRef<Path>) -> Result<UpdatableIndex, PersistError> {
    load_updatable_from_bytes(&read_file(path.as_ref())?)
}

/// Load an [`EmrSolver`] from raw container bytes.
pub fn load_emr_from_bytes(bytes: &[u8]) -> Result<EmrSolver, PersistError> {
    let sections = parse_container(bytes)?;
    let meta = decode_meta(find_section(&sections, SectionKind::Meta)?)?;
    if meta.flavor != FileFlavor::Emr {
        return Err(PersistError::InvalidState(format!(
            "this is an {} file, not an EMR baseline file",
            meta.flavor
        )));
    }
    let err = decode_err(SectionKind::Emr);
    let mut r = ByteReader::new(find_section(&sections, SectionKind::Emr)?);
    let anchor_neighbors = r.take_usize("emr anchor neighbours").map_err(&err)?;
    let n = r.take_usize("emr item count").map_err(&err)?;
    let lambda = r.take_f64_vec("emr anchor degrees").map_err(&err)?;
    let num_anchors = r.take_usize("emr anchor count").map_err(&err)?;
    let dim = r.take_usize("emr dimensionality").map_err(&err)?;
    match num_anchors.checked_mul(dim).and_then(|t| t.checked_mul(8)) {
        Some(total) if total <= r.remaining() => {}
        _ => {
            return Err(err(CoreError::InvalidInput(format!(
                "emr anchors declare {num_anchors} x {dim} values but the payload is shorter"
            ))))
        }
    }
    let mut anchors = Vec::with_capacity(num_anchors);
    for _ in 0..num_anchors {
        let mut anchor = Vec::with_capacity(dim);
        for _ in 0..dim {
            anchor.push(r.take_f64("emr anchor value").map_err(&err)?);
        }
        anchors.push(anchor);
    }
    let h = codec::decode_csr(&mut r, "emr factor H").map_err(&err)?;
    r.finish("emr").map_err(&err)?;
    EmrSolver::from_persist_parts(meta.params, anchors, lambda, h, anchor_neighbors, n)
        .map_err(&err)
}

/// Load an [`EmrSolver`] from a file written by [`save_emr`].
pub fn load_emr(path: impl AsRef<Path>) -> Result<EmrSolver, PersistError> {
    load_emr_from_bytes(&read_file(path.as_ref())?)
}

/// Load any serveable flavor as an epoch-stamped [`IndexSnapshot`] — the
/// warm-start entry point `mogul-serve` builds on. An `index` file becomes
/// an epoch-0 snapshot with identity ids; an `updatable` file restores its
/// persisted epoch and stable-id mapping (so ids handed out before the save
/// keep resolving after the restart).
pub fn load_serving_from_bytes(bytes: &[u8]) -> Result<Arc<IndexSnapshot>, PersistError> {
    let sections = parse_container(bytes)?;
    let meta = decode_meta(find_section(&sections, SectionKind::Meta)?)?;
    match meta.flavor {
        FileFlavor::Index => {
            let oos = decode_oos(&sections, &meta)?;
            Ok(Arc::new(IndexSnapshot::wrap(Arc::new(oos))))
        }
        // Serving needs only the snapshot: skip the writer-side state (the
        // graph decode, adjacency/degree tables and feature clone a
        // read-only snapshot never touches). `load_updatable` is the path
        // that reconstructs the full writer.
        FileFlavor::Updatable => {
            let oos = Arc::new(decode_oos(&sections, &meta)?);
            let u = decode_updatable_meta(find_section(&sections, SectionKind::Updatable)?)?;
            crate::update::snapshot_from_persist_parts(oos, u.ids, u.next_id, u.epoch)
                .map_err(decode_err(SectionKind::Updatable))
        }
        FileFlavor::Emr => Err(PersistError::InvalidState(
            "an EMR baseline file holds no serving index".into(),
        )),
    }
}

/// [`load_serving_from_bytes`] over a file path.
pub fn load_serving(path: impl AsRef<Path>) -> Result<Arc<IndexSnapshot>, PersistError> {
    load_serving_from_bytes(&read_file(path.as_ref())?)
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// One row of [`IndexFileInfo`]: a section as recorded in the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Stable name (`"unknown"` for codes this build does not know).
    pub name: &'static str,
    /// Raw kind code.
    pub code: u32,
    /// Byte offset of the payload within the file.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
    /// Recorded (and verified) FNV-1a checksum.
    pub checksum: u64,
}

/// Everything [`inspect`] reports about an index file.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexFileInfo {
    /// Format version from the header.
    pub version: u32,
    /// Total file size in bytes.
    pub file_len: usize,
    /// What the file holds.
    pub flavor: FileFlavor,
    /// Number of indexed items.
    pub items: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Manifold Ranking `α`.
    pub alpha: f64,
    /// Which factorization the stored factors came from.
    pub factorization: Factorization,
    /// The sections, in table order (checksums already verified).
    pub sections: Vec<SectionInfo>,
}

impl fmt::Display for IndexFileInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MOG1 index file: format v{}, flavor {}, {} bytes",
            self.version, self.flavor, self.file_len
        )?;
        writeln!(
            f,
            "  {} items, dim {}, alpha {}, {:?} factorization",
            self.items, self.dim, self.alpha, self.factorization
        )?;
        writeln!(
            f,
            "  {:<12} {:>10} {:>12}  checksum",
            "section", "offset", "bytes"
        )?;
        for s in &self.sections {
            writeln!(
                f,
                "  {:<12} {:>10} {:>12}  {:016x}",
                s.name, s.offset, s.len, s.checksum
            )?;
        }
        Ok(())
    }
}

/// Validate a container (all checksums included) and summarize it without
/// reconstructing the index.
pub fn inspect_bytes(bytes: &[u8]) -> Result<IndexFileInfo, PersistError> {
    let sections = parse_container(bytes)?;
    let meta = decode_meta(find_section(&sections, SectionKind::Meta)?)?;
    Ok(IndexFileInfo {
        version: FORMAT_VERSION,
        file_len: bytes.len(),
        flavor: meta.flavor,
        items: meta.items,
        dim: meta.dim,
        alpha: meta.params.alpha,
        factorization: meta.factorization,
        sections: sections
            .iter()
            .map(|s| SectionInfo {
                name: name_of_code(s.code),
                code: s.code,
                offset: s.offset,
                len: s.bytes.len(),
                checksum: checksum64(s.bytes),
            })
            .collect(),
    })
}

/// [`inspect_bytes`] over a file path.
pub fn inspect(path: impl AsRef<Path>) -> Result<IndexFileInfo, PersistError> {
    inspect_bytes(&read_file(path.as_ref())?)
}
