//! Write-ahead log for update deltas: durability *between* checkpoints.
//!
//! MOG1 checkpoints (see [`crate::persist`]) only persist **clean** epochs,
//! so every Woodbury-corrected epoch applied since the last checkpoint would
//! die with the process. This module closes that gap with the classic
//! database recipe — an append-only, checksummed log replayed over the
//! latest snapshot:
//!
//! * The writer encodes every applied [`IndexDelta`] (and every explicit
//!   refactorization, which also advances the epoch) as one
//!   length-prefixed, checksummed **record**, appends it to the open
//!   **segment** file, and fsyncs *before* mutating the index
//!   (append-before-apply). An acknowledged update is therefore on disk
//!   before any caller can observe its epoch.
//! * Recovery loads the newest checkpoint and [`replay`]s the log over it:
//!   records at or below the checkpoint epoch are skipped (the **watermark**
//!   check — this is what makes a crash *between* checkpoint save and
//!   stale-segment GC harmless), the rest must form a contiguous epoch
//!   chain and are re-applied. Because [`UpdatableIndex::apply`] is
//!   deterministic, the recovered index is bit-identical to one that never
//!   crashed.
//! * Segments **rotate** at every successful checkpoint: a fresh segment
//!   based at the checkpoint epoch is created and fsync'd, then stale
//!   segments are garbage-collected.
//!
//! # On-disk format (version 1)
//!
//! A segment file `wal-{base:020}.mwal` is a 24-byte header followed by
//! zero or more records. All integers are little-endian; the checksum is
//! the same FNV-1a-64 [`checksum64`] the MOG1 container uses.
//!
//! ```text
//! header:  magic "MWAL" (4) | version u32 (4) | base epoch u64 (8)
//!          | checksum64 of the previous 16 bytes (8)
//! record:  payload len u32 (4) | payload | checksum64 of len+payload (8)
//! payload: epoch u64 | kind u64 | body
//!          kind 1 (delta):   op count u64, then per op:
//!                            tag 1 = insert | feature f64-slice (len-prefixed)
//!                            tag 2 = remove | stable id u64
//!          kind 2 (rebuild): no body
//! ```
//!
//! Record epochs within a segment start at `base + 1` and increase by
//! exactly 1; a segment's base equals the previous segment's final epoch,
//! so the concatenated log is one contiguous epoch chain.
//!
//! # Failure semantics (fail closed, with one carve-out)
//!
//! The one defect a *crash* of the append-only writer can produce is a
//! **torn tail**: the final segment ends mid-record. That record was never
//! acknowledged, so recovery discards it (truncating the file) and reports
//! it. Everything else — a checksum mismatch, a bad magic, a future
//! version, an unknown record kind, out-of-order epochs, an incomplete
//! record in a *non-final* segment, a gap in the segment chain — is bit
//! rot or tampering, not a torn write, and recovery refuses with a typed
//! [`WalError`] rather than serve a silently wrong index. See
//! `docs/PERSISTENCE.md` for the full decision table.

use crate::persist::{self, PersistError};
use crate::update::{IndexDelta, UpdatableIndex, UpdateOp};
use mogul_sparse::persist::{checksum64, put_f64_slice, put_u64, ByteReader};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The four magic bytes every WAL segment starts with.
pub const WAL_MAGIC: [u8; 4] = *b"MWAL";

/// Current segment format version.
pub const WAL_VERSION: u32 = 1;

/// Byte length of the fixed segment header (magic, version, base epoch,
/// header checksum).
pub const SEGMENT_HEADER_LEN: usize = 24;

/// Framing overhead of one record (u32 length prefix + u64 checksum).
pub const RECORD_OVERHEAD: usize = 12;

/// File extension of WAL segments.
pub const SEGMENT_EXT: &str = "mwal";

const KIND_DELTA: u64 = 1;
const KIND_REBUILD: u64 = 2;
const OP_INSERT: u64 = 1;
const OP_REMOVE: u64 = 2;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Every way the write-ahead log can fail.
///
/// The contract mirrors [`PersistError`]: **fail closed**. Any defect in
/// the log yields one of these variants; decoding never panics and never
/// produces a silently wrong replay. The only self-healing case is a torn
/// tail record in the final segment, which is *not* an error (see
/// [`RecoveryReport::truncated_bytes`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// An underlying I/O operation failed.
    Io {
        /// What was being attempted (e.g. `"append wal record"`).
        op: &'static str,
        /// The OS error, including the path when one is known.
        detail: String,
    },
    /// A segment does not start with the `MWAL` magic.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// A segment declares a format version this build does not understand.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A structure is incomplete where a torn tail is not a legal
    /// explanation (segment header of a non-final segment, a record body in
    /// a non-final segment, ...).
    Truncated {
        /// The structure that was being read.
        what: &'static str,
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A complete record's stored checksum does not match its bytes —
    /// bit rot, not a torn write.
    ChecksumMismatch {
        /// Byte offset of the record inside its segment.
        offset: usize,
    },
    /// A structural invariant of the log is violated (header checksum,
    /// segment/filename disagreement, trailing payload garbage, ...).
    Corrupt {
        /// The structure that failed validation.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A record declares a kind this build does not understand. Records
    /// cannot be skipped (every epoch must be re-applied), so an unknown
    /// kind refuses recovery.
    UnknownRecordKind {
        /// The kind tag found.
        found: u64,
    },
    /// Record epochs are duplicated or out of order where the format
    /// requires a contiguous chain.
    EpochOrder {
        /// The epoch the chain required next.
        expected: u64,
        /// The epoch actually found.
        found: u64,
    },
    /// The log is missing epochs the checkpoint requires (a deleted or
    /// lost segment): replay cannot bridge the gap.
    EpochGap {
        /// The epoch replay needed next.
        expected: u64,
        /// The epoch actually found.
        found: u64,
    },
    /// Re-applying a logged record to the checkpoint failed — the log and
    /// the checkpoint disagree about the collection state.
    Replay {
        /// Epoch of the record that failed to apply.
        epoch: u64,
        /// The underlying index error.
        detail: String,
    },
    /// Loading or saving the checkpoint under the log failed.
    Checkpoint(PersistError),
    /// The log was driven incorrectly (non-contiguous append epoch,
    /// rotation away from the log head, an empty segment directory, ...).
    InvalidState(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { op, detail } => write!(f, "i/o failure during {op}: {detail}"),
            WalError::BadMagic { found } => write!(
                f,
                "not a wal segment: magic is {found:02x?}, expected {WAL_MAGIC:02x?} (\"MWAL\")"
            ),
            WalError::UnsupportedVersion { found } => write!(
                f,
                "unsupported wal segment version {found} (this build reads version \
                 {WAL_VERSION}; the segment was probably written by a newer release)"
            ),
            WalError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated wal segment: {what} needs {needed} bytes but only {available} remain"
            ),
            WalError::ChecksumMismatch { offset } => write!(
                f,
                "checksum mismatch in the wal record at byte offset {offset}: the segment is \
                 corrupt"
            ),
            WalError::Corrupt { what, detail } => {
                write!(f, "corrupt wal segment ({what}): {detail}")
            }
            WalError::UnknownRecordKind { found } => write!(
                f,
                "unknown wal record kind {found}: records cannot be skipped, refusing recovery"
            ),
            WalError::EpochOrder { expected, found } => write!(
                f,
                "wal epochs out of order: expected epoch {expected} next but found {found}"
            ),
            WalError::EpochGap { expected, found } => write!(
                f,
                "wal is missing epochs: replay needed epoch {expected} but the log continues at \
                 {found} (a segment was lost)"
            ),
            WalError::Replay { epoch, detail } => {
                write!(f, "replaying wal record for epoch {epoch} failed: {detail}")
            }
            WalError::Checkpoint(err) => write!(f, "checkpoint under the wal failed: {err}"),
            WalError::InvalidState(msg) => write!(f, "wal misuse: {msg}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Checkpoint(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PersistError> for WalError {
    fn from(err: PersistError) -> Self {
        WalError::Checkpoint(err)
    }
}

fn io_err(op: &'static str, path: Option<&Path>, err: std::io::Error) -> WalError {
    let detail = match path {
        Some(p) => format!("{}: {err}", p.display()),
        None => err.to_string(),
    };
    WalError::Io { op, detail }
}

fn reader_err(what: &'static str) -> impl Fn(crate::CoreError) -> WalError {
    move |err| WalError::Corrupt {
        what,
        detail: err.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// The logged operation of one record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// An applied [`IndexDelta`] (always non-empty; empty deltas do not
    /// advance the epoch and are never logged).
    Delta(IndexDelta),
    /// An explicit full refactorization ([`UpdatableIndex::rebuild`]),
    /// which advances the epoch without changing the collection.
    Rebuild,
}

/// One decoded log record: the epoch it produced and the operation that
/// produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The epoch the index is on *after* applying this record.
    pub epoch: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// Encode an [`IndexDelta`] payload body (op count, then tagged ops).
///
/// Public because it pins the v1 record layout for the format tests; the
/// framed-record entry point is [`encode_record`].
pub fn encode_delta(delta: &IndexDelta, out: &mut Vec<u8>) {
    put_u64(out, delta.len() as u64);
    for op in delta.ops() {
        match op {
            UpdateOp::Insert { feature } => {
                put_u64(out, OP_INSERT);
                put_f64_slice(out, feature);
            }
            UpdateOp::Remove { id } => {
                put_u64(out, OP_REMOVE);
                put_u64(out, *id as u64);
            }
        }
    }
}

/// Decode an [`IndexDelta`] payload body written by [`encode_delta`].
pub fn decode_delta(reader: &mut ByteReader<'_>) -> Result<IndexDelta, WalError> {
    // Each op is at least one 8-byte tag, so the count is bounded by the
    // remaining payload before anything is allocated.
    let count = reader
        .take_len(8, "wal delta op count")
        .map_err(reader_err("delta op count"))?;
    let mut delta = IndexDelta::new();
    for _ in 0..count {
        let tag = reader
            .take_u64("wal op tag")
            .map_err(reader_err("delta op tag"))?;
        match tag {
            OP_INSERT => {
                let feature = reader
                    .take_f64_vec("wal insert feature")
                    .map_err(reader_err("insert feature"))?;
                delta.insert(feature);
            }
            OP_REMOVE => {
                let id = reader
                    .take_u64("wal remove id")
                    .map_err(reader_err("remove id"))?;
                let id = usize::try_from(id).map_err(|_| WalError::Corrupt {
                    what: "remove id",
                    detail: format!("stable id {id} does not fit in usize"),
                })?;
                delta.remove(id);
            }
            other => {
                return Err(WalError::Corrupt {
                    what: "delta op tag",
                    detail: format!("unknown update op tag {other}"),
                })
            }
        }
    }
    Ok(delta)
}

/// Append the fixed segment header for `base_epoch` to `out`.
pub fn encode_segment_header(base_epoch: u64, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
    put_u64(out, base_epoch);
    let sum = checksum64(&out[start..start + 16]);
    put_u64(out, sum);
}

/// Append one framed, checksummed record to `out`.
///
/// Fails only on a record whose payload exceeds the u32 length prefix —
/// far beyond any real delta.
pub fn encode_record(epoch: u64, op: &WalOp, out: &mut Vec<u8>) -> Result<(), WalError> {
    let mut payload = Vec::new();
    put_u64(&mut payload, epoch);
    match op {
        WalOp::Delta(delta) => {
            put_u64(&mut payload, KIND_DELTA);
            encode_delta(delta, &mut payload);
        }
        WalOp::Rebuild => put_u64(&mut payload, KIND_REBUILD),
    }
    let len = u32::try_from(payload.len()).map_err(|_| {
        WalError::InvalidState(format!(
            "a single wal record cannot exceed {} payload bytes (got {})",
            u32::MAX,
            payload.len()
        ))
    })?;
    let start = out.len();
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = checksum64(&out[start..]);
    put_u64(out, sum);
    Ok(())
}

fn decode_record_payload(payload: &[u8]) -> Result<WalRecord, WalError> {
    let mut reader = ByteReader::new(payload);
    let epoch = reader
        .take_u64("wal record epoch")
        .map_err(reader_err("record epoch"))?;
    let kind = reader
        .take_u64("wal record kind")
        .map_err(reader_err("record kind"))?;
    let op = match kind {
        KIND_DELTA => WalOp::Delta(decode_delta(&mut reader)?),
        KIND_REBUILD => WalOp::Rebuild,
        other => return Err(WalError::UnknownRecordKind { found: other }),
    };
    reader
        .finish("wal record payload")
        .map_err(reader_err("record payload"))?;
    Ok(WalRecord { epoch, op })
}

// ---------------------------------------------------------------------------
// Segment reading
// ---------------------------------------------------------------------------

/// A torn tail: trailing bytes of the **final** segment that do not form a
/// complete record. The writer died mid-append before acknowledging the
/// update, so recovery discards them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset inside the segment where the incomplete record starts.
    pub offset: usize,
    /// Number of trailing bytes discarded.
    pub bytes: usize,
}

/// A fully validated in-memory view of one segment's bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// The epoch the segment is based on, or `None` when the final
    /// segment's own header is torn (the writer died during rotation,
    /// before any record could be acknowledged).
    pub base_epoch: Option<u64>,
    /// The decoded records, in epoch order (`base + 1, base + 2, ...`).
    pub records: Vec<WalRecord>,
    /// The torn tail, if the segment ends mid-record.
    pub torn: Option<TornTail>,
}

/// Decode and validate one segment's bytes.
///
/// `is_final` selects the torn-tail carve-out: only the final (newest)
/// segment of a log may legally end mid-structure, because only its tail
/// can have been interrupted by a crash. Earlier segments were fsync'd
/// complete before the log moved on, so the same defect there is
/// corruption and refuses with a typed error.
pub fn read_segment(bytes: &[u8], is_final: bool) -> Result<Segment, WalError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        if is_final {
            // A crash during segment creation: the header never finished.
            // Nothing was acknowledged against this segment.
            return Ok(Segment {
                base_epoch: None,
                records: Vec::new(),
                torn: Some(TornTail {
                    offset: 0,
                    bytes: bytes.len(),
                }),
            });
        }
        return Err(WalError::Truncated {
            what: "segment header",
            needed: SEGMENT_HEADER_LEN,
            available: bytes.len(),
        });
    }
    if bytes[..4] != WAL_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        return Err(WalError::BadMagic { found });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(WalError::UnsupportedVersion { found: version });
    }
    let stored = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if checksum64(&bytes[..16]) != stored {
        return Err(WalError::Corrupt {
            what: "segment header",
            detail: "header checksum mismatch".into(),
        });
    }
    let base_epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

    let mut records = Vec::new();
    let mut torn = None;
    let mut expected = base_epoch.wrapping_add(1);
    let mut offset = SEGMENT_HEADER_LEN;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        // An incomplete frame: either the length prefix itself is cut
        // short, or the declared payload+checksum runs past the end of the
        // file. Both read as "the file ends before the record is complete"
        // — including a hostile length prefix, which is rejected here
        // *before* any allocation.
        let needed = if remaining < 4 {
            RECORD_OVERHEAD
        } else {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
            RECORD_OVERHEAD + len as usize
        };
        if needed > remaining {
            if is_final {
                torn = Some(TornTail {
                    offset,
                    bytes: remaining,
                });
                break;
            }
            return Err(WalError::Truncated {
                what: "wal record in a non-final segment",
                needed,
                available: remaining,
            });
        }
        let framed = &bytes[offset..offset + needed - 8];
        let stored = u64::from_le_bytes(
            bytes[offset + needed - 8..offset + needed]
                .try_into()
                .expect("8 bytes"),
        );
        if checksum64(framed) != stored {
            return Err(WalError::ChecksumMismatch { offset });
        }
        let record = decode_record_payload(&framed[4..])?;
        if record.epoch != expected {
            return Err(WalError::EpochOrder {
                expected,
                found: record.epoch,
            });
        }
        expected = expected.wrapping_add(1);
        records.push(record);
        offset += needed;
    }
    Ok(Segment {
        base_epoch: Some(base_epoch),
        records,
        torn,
    })
}

// ---------------------------------------------------------------------------
// Segment files and directory layout
// ---------------------------------------------------------------------------

/// The canonical file name of the segment based at `base_epoch`.
pub fn segment_file_name(base_epoch: u64) -> String {
    format!("wal-{base_epoch:020}.{SEGMENT_EXT}")
}

fn parse_segment_name(name: &std::ffi::OsStr) -> Option<u64> {
    let name = name.to_str()?;
    let digits = name
        .strip_prefix("wal-")?
        .strip_suffix(&format!(".{SEGMENT_EXT}"))?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn sync_dir(dir: &Path) {
    // Durability of creates/renames/removes inside the directory; not all
    // platforms allow fsyncing a directory handle, so failures here are
    // non-fatal (same policy as the MOG1 saver).
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// List the segment files of a log directory, sorted by base epoch.
///
/// Fails closed on any `.mwal` file whose name does not parse — a renamed
/// segment would otherwise be silently dropped from replay. Files with
/// other extensions are ignored.
fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("list wal dir", Some(dir), e))?;
    let mut segments = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list wal dir", Some(dir), e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(SEGMENT_EXT) {
            continue;
        }
        let name = path.file_name().unwrap_or_default();
        match parse_segment_name(name) {
            Some(base) => segments.push((base, path)),
            None => {
                return Err(WalError::Corrupt {
                    what: "segment file name",
                    detail: format!(
                        "'{}' has the .{SEGMENT_EXT} extension but is not a wal-<epoch> name",
                        path.display()
                    ),
                })
            }
        }
    }
    segments.sort_by_key(|&(base, _)| base);
    Ok(segments)
}

/// Tail-segment facts the writer needs to resume appending.
struct TailState {
    path: PathBuf,
    base_epoch: u64,
    /// Valid byte length: everything past it is a torn tail to discard
    /// (`0` when the header itself is torn and must be rewritten).
    keep_len: u64,
}

/// The fully validated contents of a log directory.
struct ScannedLog {
    segments: Vec<SegmentInfo>,
    records: Vec<WalRecord>,
    truncated_bytes: u64,
    tail: TailState,
}

impl ScannedLog {
    fn report(&self) -> RecoveryReport {
        RecoveryReport {
            segments: self.segments.len(),
            records: self.records.len(),
            truncated_bytes: self.truncated_bytes,
            last_epoch: self
                .segments
                .last()
                .map(|s| s.last_epoch)
                .unwrap_or_default(),
        }
    }
}

/// Read and validate every segment of a log directory: the shared core of
/// [`Wal::recover`], [`read_log`] and [`inspect_dir`]. Applies the full
/// fail-closed rule set — header/record/chain validation, with the
/// torn-tail carve-out only on the final segment — without modifying any
/// file.
fn scan_log(dir: &Path) -> Result<ScannedLog, WalError> {
    let segments = list_segments(dir)?;
    if segments.is_empty() {
        return Err(WalError::InvalidState(format!(
            "'{}' contains no wal segments; create a fresh log instead of recovering",
            dir.display()
        )));
    }

    let mut infos = Vec::with_capacity(segments.len());
    let mut records = Vec::new();
    let mut truncated_bytes = 0u64;
    let mut chain_epoch: Option<u64> = None;
    let final_index = segments.len() - 1;
    let mut tail: Option<TailState> = None;
    for (i, (name_base, path)) in segments.iter().enumerate() {
        let is_final = i == final_index;
        let bytes = std::fs::read(path).map_err(|e| io_err("read wal segment", Some(path), e))?;
        let segment = read_segment(&bytes, is_final)?;
        if let Some(header_base) = segment.base_epoch {
            if header_base != *name_base {
                return Err(WalError::Corrupt {
                    what: "segment base epoch",
                    detail: format!(
                        "'{}' declares base epoch {header_base} in its header",
                        path.display()
                    ),
                });
            }
        }
        // Each segment must continue exactly where the previous one ended:
        // its base is the previous segment's final epoch. A hole here is a
        // lost segment, not a torn write.
        if let Some(prev_end) = chain_epoch {
            if *name_base != prev_end {
                return Err(WalError::EpochGap {
                    expected: prev_end,
                    found: *name_base,
                });
            }
        }
        let seg_last = segment
            .records
            .last()
            .map(|r| r.epoch)
            .unwrap_or(*name_base);
        chain_epoch = Some(seg_last);
        if let Some(torn) = segment.torn {
            truncated_bytes += torn.bytes as u64;
        }
        if is_final {
            let keep_len = match segment.torn {
                // A torn header: keep nothing, recovery rewrites it.
                Some(t) if segment.base_epoch.is_none() => {
                    debug_assert_eq!(t.offset, 0);
                    0
                }
                Some(t) => t.offset as u64,
                None => bytes.len() as u64,
            };
            tail = Some(TailState {
                path: path.clone(),
                base_epoch: *name_base,
                keep_len,
            });
        }
        infos.push(SegmentInfo {
            path: path.clone(),
            base_epoch: *name_base,
            bytes: bytes.len() as u64,
            records: segment.records.len(),
            last_epoch: seg_last,
            torn: segment.torn,
        });
        records.extend(segment.records);
    }
    Ok(ScannedLog {
        segments: infos,
        records,
        truncated_bytes,
        tail: tail.expect("non-empty segment list"),
    })
}

/// Read a log without taking ownership of it: every decoded record in
/// epoch order plus the scan report, with nothing on disk modified (a torn
/// tail is reported but left in place). This is the serving-only recovery
/// path — [`crate::update::UpdatableIndex`]-over-checkpoint replay for a
/// read replica that will never append.
pub fn read_log(dir: impl AsRef<Path>) -> Result<(Vec<WalRecord>, RecoveryReport), WalError> {
    let scan = scan_log(dir.as_ref())?;
    let report = scan.report();
    Ok((scan.records, report))
}

// ---------------------------------------------------------------------------
// The open log
// ---------------------------------------------------------------------------

/// Fsync policy of the open log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// `fsync` after every appended record (the default): an acknowledged
    /// update survives power loss. This is the policy the recovery
    /// exactness guarantee is stated against.
    #[default]
    EveryRecord,
    /// Leave flushing to the OS page cache: records survive a process
    /// crash (the write syscall completed) but a window of acknowledged
    /// updates can be lost to power failure. The SQLite
    /// `synchronous=NORMAL` trade: much higher update throughput on
    /// fsync-bound storage.
    OsBuffered,
}

/// What recovery found in the log directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Number of segment files scanned.
    pub segments: usize,
    /// Total records decoded across all segments (including records a
    /// later [`replay`] will skip as below its watermark).
    pub records: usize,
    /// Torn-tail bytes discarded from the final segment (0 for a clean
    /// shutdown).
    pub truncated_bytes: u64,
    /// The epoch the log ends at.
    pub last_epoch: u64,
}

/// An open write-ahead log: one append-only segment file plus the rotation
/// and garbage-collection lifecycle.
///
/// A `Wal` is single-writer by construction — [`crate::update::UpdatableIndex`]
/// has one owner, and the serve layer drives both under one mutex.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    path: PathBuf,
    file: File,
    base_epoch: u64,
    last_epoch: u64,
    len: u64,
    undo_len: Option<u64>,
    sync: WalSync,
}

impl Wal {
    /// Create a fresh log in `dir` (created if missing), based at
    /// `base_epoch` — the epoch of the checkpoint the log will be replayed
    /// over. The segment header is written and fsync'd before returning;
    /// refuses if that segment file already exists (use [`Wal::recover`]
    /// to re-open an existing log).
    pub fn create(dir: impl AsRef<Path>, base_epoch: u64, sync: WalSync) -> Result<Wal, WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create wal dir", Some(&dir), e))?;
        let path = dir.join(segment_file_name(base_epoch));
        if path.exists() {
            return Err(WalError::InvalidState(format!(
                "segment '{}' already exists; recover the existing log instead of creating over it",
                path.display()
            )));
        }
        let file = Wal::create_segment(&path, base_epoch)?;
        sync_dir(&dir);
        Ok(Wal {
            dir,
            path,
            file,
            base_epoch,
            last_epoch: base_epoch,
            len: SEGMENT_HEADER_LEN as u64,
            undo_len: None,
            sync,
        })
    }

    fn create_segment(path: &Path, base_epoch: u64) -> Result<File, WalError> {
        let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
        encode_segment_header(base_epoch, &mut header);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create wal segment", Some(path), e))?;
        file.write_all(&header)
            .map_err(|e| io_err("write wal segment header", Some(path), e))?;
        // The header is always fsync'd, whatever the record policy: a
        // rotation must not be able to out-survive the segment it rotated
        // to.
        file.sync_all()
            .map_err(|e| io_err("sync wal segment header", Some(path), e))?;
        Ok(file)
    }

    /// Re-open an existing log after a crash (or clean shutdown): scan and
    /// validate every segment, discard a torn tail from the final segment
    /// (truncating the file), and position the writer at the log head.
    ///
    /// Returns the open log, every decoded record in epoch order (stale
    /// records from not-yet-collected segments included — [`replay`]'s
    /// watermark check skips them), and a report of what was found.
    pub fn recover(
        dir: impl AsRef<Path>,
        sync: WalSync,
    ) -> Result<(Wal, Vec<WalRecord>, RecoveryReport), WalError> {
        let dir = dir.as_ref().to_path_buf();
        let scan = scan_log(&dir)?;
        let report = scan.report();
        let ScannedLog { records, tail, .. } = scan;
        let (tail_path, tail_base, last_epoch, keep_len) =
            (tail.path, tail.base_epoch, report.last_epoch, tail.keep_len);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&tail_path)
            .map_err(|e| io_err("open wal segment", Some(&tail_path), e))?;
        let actual_len = file
            .metadata()
            .map_err(|e| io_err("stat wal segment", Some(&tail_path), e))?
            .len();
        if keep_len < actual_len || keep_len == 0 {
            file.set_len(keep_len)
                .map_err(|e| io_err("truncate torn wal tail", Some(&tail_path), e))?;
            if keep_len == 0 {
                let mut header = Vec::with_capacity(SEGMENT_HEADER_LEN);
                encode_segment_header(tail_base, &mut header);
                file.write_all(&header)
                    .map_err(|e| io_err("rewrite wal segment header", Some(&tail_path), e))?;
            }
            file.sync_all()
                .map_err(|e| io_err("sync truncated wal segment", Some(&tail_path), e))?;
        }
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err("seek wal segment", Some(&tail_path), e))?;

        let wal = Wal {
            dir,
            path: tail_path,
            file,
            base_epoch: tail_base,
            last_epoch,
            len: keep_len.max(SEGMENT_HEADER_LEN as u64),
            undo_len: None,
            sync,
        };
        Ok((wal, records, report))
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the open (newest) segment file.
    pub fn segment_path(&self) -> &Path {
        &self.path
    }

    /// Base epoch of the open segment.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The epoch the log currently ends at — the last record appended (or
    /// the segment base if none).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Byte length of the open segment.
    pub fn segment_len(&self) -> u64 {
        self.len
    }

    /// The configured fsync policy.
    pub fn sync(&self) -> WalSync {
        self.sync
    }

    /// Append one record and (under [`WalSync::EveryRecord`]) fsync it.
    /// `epoch` must be exactly [`Wal::last_epoch`]` + 1` — the epoch the
    /// index will be on once the operation is applied.
    ///
    /// Call this *before* mutating the index: a record on disk that was
    /// never applied is harmlessly replayed on recovery, but an applied
    /// epoch missing from the disk is lost durability.
    pub fn append(&mut self, epoch: u64, op: &WalOp) -> Result<(), WalError> {
        if epoch != self.last_epoch + 1 {
            return Err(WalError::InvalidState(format!(
                "append epoch {epoch} is not contiguous with the log head {}",
                self.last_epoch
            )));
        }
        let mut record = Vec::new();
        encode_record(epoch, op, &mut record)?;
        let result = self
            .file
            .write_all(&record)
            .map_err(|e| io_err("append wal record", Some(&self.path), e))
            .and_then(|()| match self.sync {
                WalSync::EveryRecord => self
                    .file
                    .sync_all()
                    .map_err(|e| io_err("sync wal record", Some(&self.path), e)),
                WalSync::OsBuffered => Ok(()),
            });
        if let Err(err) = result {
            // Roll the partial write back so the segment stays clean for
            // the next append; if even that fails, recovery's torn-tail
            // truncation repairs it.
            let _ = self.file.set_len(self.len);
            let _ = self.file.seek_to_end();
            return Err(err);
        }
        self.undo_len = Some(self.len);
        self.len += record.len() as u64;
        self.last_epoch = epoch;
        Ok(())
    }

    /// Discard the most recent [`Wal::append`], truncating it off the
    /// segment. The writer calls this when applying the operation to the
    /// index fails *after* the record was already durable, so the log does
    /// not acknowledge an epoch that never happened.
    pub fn undo_last_append(&mut self) -> Result<(), WalError> {
        let undo_len = self.undo_len.take().ok_or_else(|| {
            WalError::InvalidState("no append to undo (or it was already undone)".into())
        })?;
        self.file
            .set_len(undo_len)
            .map_err(|e| io_err("truncate undone wal record", Some(&self.path), e))?;
        self.file.seek_to_end()?;
        self.file
            .sync_all()
            .map_err(|e| io_err("sync undone wal record", Some(&self.path), e))?;
        self.len = undo_len;
        self.last_epoch -= 1;
        Ok(())
    }

    /// Rotate at a just-written checkpoint: start a fresh segment based at
    /// `checkpoint_epoch` (which must be the current log head — a
    /// checkpoint persists the epoch the log ends at), then garbage-collect
    /// the now-redundant older segments.
    ///
    /// The new segment is created and fsync'd *before* anything is deleted,
    /// so a crash anywhere in between leaves a recoverable log: stale
    /// segments are skipped by [`replay`]'s watermark check. GC itself is
    /// best-effort — a segment that cannot be deleted is retried at the
    /// next rotation.
    pub fn rotate(&mut self, checkpoint_epoch: u64) -> Result<(), WalError> {
        if checkpoint_epoch != self.last_epoch {
            return Err(WalError::InvalidState(format!(
                "cannot rotate at epoch {checkpoint_epoch}: the log head is {}",
                self.last_epoch
            )));
        }
        if self.base_epoch == checkpoint_epoch {
            // The open segment is already empty and based here; nothing to
            // rotate and nothing to collect.
            return Ok(());
        }
        let path = self.dir.join(segment_file_name(checkpoint_epoch));
        if path.exists() {
            return Err(WalError::InvalidState(format!(
                "segment '{}' already exists; refusing to rotate over it",
                path.display()
            )));
        }
        let file = Wal::create_segment(&path, checkpoint_epoch)?;
        sync_dir(&self.dir);
        self.path = path;
        self.file = file;
        self.base_epoch = checkpoint_epoch;
        self.len = SEGMENT_HEADER_LEN as u64;
        self.undo_len = None;
        // last_epoch is unchanged: the log still ends at the checkpoint.
        for (base, stale) in list_segments(&self.dir)? {
            if base < checkpoint_epoch {
                let _ = std::fs::remove_file(stale);
            }
        }
        sync_dir(&self.dir);
        Ok(())
    }
}

trait SeekToEnd {
    fn seek_to_end(&mut self) -> Result<(), WalError>;
}

impl SeekToEnd for File {
    fn seek_to_end(&mut self) -> Result<(), WalError> {
        use std::io::Seek as _;
        self.seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err("seek wal segment", None, e))?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// What [`replay`] did to the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The index epoch replay started from (the checkpoint epoch).
    pub watermark: u64,
    /// Records skipped as at-or-below the watermark (stale segments that a
    /// crash caught before garbage collection).
    pub skipped: usize,
    /// Records re-applied.
    pub applied: usize,
    /// The index epoch after replay.
    pub epoch: u64,
}

/// Re-apply logged records over a checkpoint.
///
/// Records with `epoch <= index.epoch()` are skipped — the **watermark**
/// check that makes a crash between checkpoint save and stale-segment GC
/// safe (those epochs are already inside the checkpoint; re-applying them
/// would double-apply their deltas). The remaining records must start at
/// exactly `watermark + 1` and stay contiguous; any hole means a lost
/// segment and refuses with [`WalError::EpochGap`].
pub fn replay(index: &mut UpdatableIndex, records: &[WalRecord]) -> Result<ReplayReport, WalError> {
    let watermark = index.epoch();
    let mut skipped = 0usize;
    let mut applied = 0usize;
    let mut next = watermark + 1;
    for record in records {
        if record.epoch <= watermark {
            skipped += 1;
            continue;
        }
        if record.epoch != next {
            return Err(WalError::EpochGap {
                expected: next,
                found: record.epoch,
            });
        }
        let result = match &record.op {
            WalOp::Delta(delta) => index.apply(delta),
            WalOp::Rebuild => index.rebuild(),
        };
        let report = result.map_err(|e| WalError::Replay {
            epoch: record.epoch,
            detail: e.to_string(),
        })?;
        if report.epoch != record.epoch {
            return Err(WalError::Replay {
                epoch: record.epoch,
                detail: format!(
                    "index landed on epoch {} after re-applying the record",
                    report.epoch
                ),
            });
        }
        next += 1;
        applied += 1;
    }
    Ok(ReplayReport {
        watermark,
        skipped,
        applied,
        epoch: index.epoch(),
    })
}

/// Combined outcome of [`recover_updatable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// What scanning the log found.
    pub log: RecoveryReport,
    /// What replay did to the checkpoint.
    pub replay: ReplayReport,
}

/// Full crash recovery: load the checkpoint, scan the log, replay it, and
/// return the recovered index together with the re-opened log positioned
/// to keep appending.
///
/// The recovered index is on exactly [`RecoveryReport::last_epoch`] — the
/// last epoch the crashed writer acknowledged (or further, if a final
/// record was made durable but the crash hit before its apply finished;
/// either way an epoch the writer's protocol committed to). No rebuild is
/// forced: corrected epochs recover as corrected epochs, so answers are
/// bit-identical to the uncrashed writer's.
pub fn recover_updatable(
    checkpoint: impl AsRef<Path>,
    wal_dir: impl AsRef<Path>,
    sync: WalSync,
) -> Result<(UpdatableIndex, Wal, RecoveryOutcome), WalError> {
    let mut index = persist::load_updatable(checkpoint.as_ref())?;
    let (wal, records, log) = Wal::recover(wal_dir, sync)?;
    if index.epoch() > wal.last_epoch() {
        // The checkpoint is *ahead* of the log: rotation always leaves a
        // segment based at the checkpoint epoch, so this means the log's
        // newest segments were lost.
        return Err(WalError::EpochGap {
            expected: index.epoch(),
            found: wal.last_epoch(),
        });
    }
    let replay = replay(&mut index, &records)?;
    debug_assert_eq!(replay.epoch, wal.last_epoch());
    Ok((index, wal, RecoveryOutcome { log, replay }))
}

// ---------------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------------

/// Validation summary of one segment file, as produced by [`inspect_dir`].
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentInfo {
    /// Path of the segment file.
    pub path: PathBuf,
    /// Base epoch (from the file name, cross-checked against the header).
    pub base_epoch: u64,
    /// File length in bytes.
    pub bytes: u64,
    /// Number of complete, valid records.
    pub records: usize,
    /// Epoch of the last record, or the base epoch if the segment is
    /// empty.
    pub last_epoch: u64,
    /// The torn tail, if the segment ends mid-record (only legal for the
    /// final segment).
    pub torn: Option<TornTail>,
}

/// Scan and fully validate a log directory without modifying it (no
/// truncation, no replay): the read-only core of `mogul_index wal_inspect`.
/// Returns one [`SegmentInfo`] per segment, oldest first, applying exactly
/// the checks [`Wal::recover`] applies.
pub fn inspect_dir(dir: impl AsRef<Path>) -> Result<Vec<SegmentInfo>, WalError> {
    Ok(scan_log(dir.as_ref())?.segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::IndexBuilder;

    fn features(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                vec![(t * 0.37).sin(), (t * 0.11).cos(), (t % 5.0) * 0.2]
            })
            .collect()
    }

    fn temp_dir(name: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "mogul-wal-unit-{}-{}-{name}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_delta() -> IndexDelta {
        let mut delta = IndexDelta::new();
        delta.insert(vec![0.25, -1.5, 3.0]).remove(7);
        delta
    }

    #[test]
    fn record_round_trip_is_exact() {
        let ops = [
            WalOp::Delta(sample_delta()),
            WalOp::Rebuild,
            WalOp::Delta(IndexDelta::new()),
        ];
        let mut bytes = Vec::new();
        encode_segment_header(41, &mut bytes);
        for (i, op) in ops.iter().enumerate() {
            encode_record(42 + i as u64, op, &mut bytes).unwrap();
        }
        let segment = read_segment(&bytes, true).unwrap();
        assert_eq!(segment.base_epoch, Some(41));
        assert_eq!(segment.torn, None);
        assert_eq!(segment.records.len(), ops.len());
        for (record, (i, op)) in segment.records.iter().zip(ops.iter().enumerate()) {
            assert_eq!(record.epoch, 42 + i as u64);
            assert_eq!(&record.op, op);
        }
    }

    #[test]
    fn feature_bits_survive_the_round_trip() {
        let mut delta = IndexDelta::new();
        let feature = vec![f64::MIN_POSITIVE, -0.0, 1.0 + f64::EPSILON, 1e300];
        delta.insert(feature.clone());
        let mut payload = Vec::new();
        encode_delta(&delta, &mut payload);
        let mut reader = ByteReader::new(&payload);
        let decoded = decode_delta(&mut reader).unwrap();
        let UpdateOp::Insert { feature: out } = &decoded.ops()[0] else {
            panic!("expected insert");
        };
        for (a, b) in feature.iter().zip(out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn append_then_recover_round_trips() {
        let dir = temp_dir("append-recover");
        let mut wal = Wal::create(&dir, 0, WalSync::EveryRecord).unwrap();
        wal.append(1, &WalOp::Delta(sample_delta())).unwrap();
        wal.append(2, &WalOp::Rebuild).unwrap();
        assert_eq!(wal.last_epoch(), 2);
        drop(wal);

        let (wal, records, report) = Wal::recover(&dir, WalSync::EveryRecord).unwrap();
        assert_eq!(wal.last_epoch(), 2);
        assert_eq!(report.segments, 1);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].op, WalOp::Delta(sample_delta()));
        assert_eq!(records[1].op, WalOp::Rebuild);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_contiguous_append_is_misuse() {
        let dir = temp_dir("contiguous");
        let mut wal = Wal::create(&dir, 5, WalSync::OsBuffered).unwrap();
        let err = wal.append(7, &WalOp::Rebuild).unwrap_err();
        assert!(matches!(err, WalError::InvalidState(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undo_last_append_truncates_the_record() {
        let dir = temp_dir("undo");
        let mut wal = Wal::create(&dir, 0, WalSync::EveryRecord).unwrap();
        wal.append(1, &WalOp::Delta(sample_delta())).unwrap();
        let len_after_first = wal.segment_len();
        wal.append(2, &WalOp::Rebuild).unwrap();
        wal.undo_last_append().unwrap();
        assert_eq!(wal.segment_len(), len_after_first);
        assert_eq!(wal.last_epoch(), 1);
        // A second undo has nothing to discard.
        assert!(matches!(
            wal.undo_last_append().unwrap_err(),
            WalError::InvalidState(_)
        ));
        // The log continues cleanly after the undo.
        wal.append(2, &WalOp::Rebuild).unwrap();
        drop(wal);
        let (_, records, _) = Wal::recover(&dir, WalSync::EveryRecord).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].op, WalOp::Rebuild);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_collects_stale_segments() {
        let dir = temp_dir("rotate");
        let mut wal = Wal::create(&dir, 0, WalSync::EveryRecord).unwrap();
        wal.append(1, &WalOp::Rebuild).unwrap();
        wal.append(2, &WalOp::Rebuild).unwrap();
        wal.rotate(2).unwrap();
        assert_eq!(wal.base_epoch(), 2);
        assert_eq!(wal.last_epoch(), 2);
        let names: Vec<_> = list_segments(&dir).unwrap();
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].0, 2);
        // Rotating again at the same epoch is a no-op.
        wal.rotate(2).unwrap();
        // Rotating away from the head is misuse.
        assert!(matches!(
            wal.rotate(1).unwrap_err(),
            WalError::InvalidState(_)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_truncates_a_torn_tail() {
        let dir = temp_dir("torn");
        let mut wal = Wal::create(&dir, 0, WalSync::EveryRecord).unwrap();
        wal.append(1, &WalOp::Delta(sample_delta())).unwrap();
        let keep = wal.segment_len();
        wal.append(2, &WalOp::Delta(sample_delta())).unwrap();
        let path = wal.segment_path().to_path_buf();
        drop(wal);
        // Chop the final record short by 3 bytes: a torn write.
        let full = std::fs::metadata(&path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(full - 3).unwrap();
        drop(file);

        let (mut wal, records, report) = Wal::recover(&dir, WalSync::EveryRecord).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(wal.last_epoch(), 1);
        assert_eq!(report.truncated_bytes, full - 3 - keep);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep);
        // The log keeps appending where the torn record was.
        wal.append(2, &WalOp::Rebuild).unwrap();
        drop(wal);
        let (_, records, _) = Wal::recover(&dir, WalSync::EveryRecord).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_skips_the_watermark_and_applies_the_rest() {
        let mut live = IndexBuilder::new()
            .knn_k(3)
            .exact_ranking()
            .build(features(14))
            .unwrap();
        let mut recovered = IndexBuilder::new()
            .knn_k(3)
            .exact_ranking()
            .build(features(14))
            .unwrap();

        let mut records = Vec::new();
        let mut delta = IndexDelta::new();
        delta.insert(vec![0.9, -0.1, 0.4]);
        live.apply(&delta).unwrap();
        records.push(WalRecord {
            epoch: 1,
            op: WalOp::Delta(delta),
        });
        let mut delta = IndexDelta::new();
        delta.remove(3);
        live.apply(&delta).unwrap();
        records.push(WalRecord {
            epoch: 2,
            op: WalOp::Delta(delta),
        });
        live.rebuild().unwrap();
        records.push(WalRecord {
            epoch: 3,
            op: WalOp::Rebuild,
        });

        let report = replay(&mut recovered, &records).unwrap();
        assert_eq!(report.applied, 3);
        assert_eq!(report.skipped, 0);
        assert_eq!(recovered.epoch(), live.epoch());
        let a = live.snapshot();
        let b = recovered.snapshot();
        for id in a.item_ids() {
            assert_eq!(a.query_by_id(id, 5).unwrap(), b.query_by_id(id, 5).unwrap());
        }

        // Replaying the same records over the already-recovered index is a
        // pure watermark skip.
        let report = replay(&mut recovered, &records).unwrap();
        assert_eq!(report.applied, 0);
        assert_eq!(report.skipped, 3);

        // A hole in the chain refuses.
        let gapped = [records[0].clone(), records[2].clone()];
        let mut fresh = IndexBuilder::new()
            .knn_k(3)
            .exact_ranking()
            .build(features(14))
            .unwrap();
        assert!(matches!(
            replay(&mut fresh, &gapped).unwrap_err(),
            WalError::EpochGap {
                expected: 2,
                found: 3
            }
        ));
    }

    #[test]
    fn inspect_reports_every_segment() {
        let dir = temp_dir("inspect");
        let mut wal = Wal::create(&dir, 0, WalSync::EveryRecord).unwrap();
        wal.append(1, &WalOp::Rebuild).unwrap();
        wal.append(2, &WalOp::Rebuild).unwrap();
        // A second segment without collecting the first: copy the stale
        // segment back after rotation to simulate a crash before GC.
        let stale = wal.segment_path().to_path_buf();
        let stale_bytes = std::fs::read(&stale).unwrap();
        wal.rotate(2).unwrap();
        wal.append(3, &WalOp::Rebuild).unwrap();
        std::fs::write(&stale, stale_bytes).unwrap();
        drop(wal);

        let infos = inspect_dir(&dir).unwrap();
        assert_eq!(infos.len(), 2);
        assert_eq!((infos[0].base_epoch, infos[0].last_epoch), (0, 2));
        assert_eq!((infos[1].base_epoch, infos[1].last_epoch), (2, 3));
        assert_eq!(infos[0].records, 2);
        assert_eq!(infos[1].records, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn misnamed_segment_files_refuse() {
        let dir = temp_dir("misnamed");
        let mut wal = Wal::create(&dir, 0, WalSync::EveryRecord).unwrap();
        wal.append(1, &WalOp::Rebuild).unwrap();
        drop(wal);
        std::fs::write(dir.join(format!("extra.{SEGMENT_EXT}")), b"junk").unwrap();
        assert!(matches!(
            Wal::recover(&dir, WalSync::EveryRecord).unwrap_err(),
            WalError::Corrupt { .. }
        ));
        // Non-segment extensions are ignored.
        std::fs::remove_file(dir.join(format!("extra.{SEGMENT_EXT}"))).unwrap();
        std::fs::write(dir.join("notes.txt"), b"fine").unwrap();
        assert!(Wal::recover(&dir, WalSync::EveryRecord).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
