//! High-level retrieval engine: the "downstream user" API.
//!
//! The lower-level types (`MogulIndex`, `OutOfSampleIndex`, the k-NN graph
//! builders) expose every knob of the paper. Most applications, however, just
//! want "index these feature vectors, then give me the top-k for a query" —
//! that is what [`RetrievalEngine`] provides: one builder call performs the
//! whole precomputation pipeline (k-NN graph → clustering → ordering →
//! factorization → centroids) and the engine then answers both in-database
//! and out-of-sample queries.

use crate::mogul::{Factorization, MogulConfig, MogulIndex, PrecomputeStats, SearchWorkspace};
use crate::out_of_sample::{OosWorkspace, OutOfSampleConfig, OutOfSampleIndex, OutOfSampleResult};
use crate::params::MrParams;
use crate::ranking::TopKResult;
use crate::{CoreError, Result};
use mogul_graph::knn::{approximate_knn_graph, knn_graph, KnnConfig};

/// How the k-NN graph is constructed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphConstruction {
    /// Exact (threaded brute-force) k-NN search.
    Exact,
    /// Partition-based approximate k-NN search; `partitions` random centers,
    /// `probes` partitions scanned per query point.
    Approximate {
        /// Number of random partitions.
        partitions: usize,
        /// Partitions scanned per point.
        probes: usize,
    },
}

/// Builder for [`RetrievalEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrievalEngineBuilder {
    /// Manifold Ranking α.
    pub alpha: f64,
    /// Number of nearest neighbours of the k-NN graph.
    pub knn_k: usize,
    /// Exact or approximate graph construction.
    pub graph: GraphConstruction,
    /// Incomplete (Mogul) or complete (MogulE) factorization.
    pub factorization: Factorization,
    /// Number of database neighbours used for out-of-sample queries.
    pub out_of_sample_neighbors: usize,
    /// Seed used by the approximate graph construction.
    pub seed: u64,
}

impl Default for RetrievalEngineBuilder {
    fn default() -> Self {
        RetrievalEngineBuilder {
            alpha: 0.99,
            knn_k: 5,
            graph: GraphConstruction::Exact,
            factorization: Factorization::Incomplete,
            out_of_sample_neighbors: 5,
            seed: 2014,
        }
    }
}

impl RetrievalEngineBuilder {
    /// Use the exact (MogulE) factorization.
    pub fn exact_ranking(mut self) -> Self {
        self.factorization = Factorization::Complete;
        self
    }

    /// Override the Manifold Ranking α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Override the k-NN graph degree.
    pub fn knn_k(mut self, k: usize) -> Self {
        self.knn_k = k;
        self
    }

    /// Use approximate k-NN graph construction (for larger collections).
    pub fn approximate_graph(mut self, partitions: usize, probes: usize) -> Self {
        self.graph = GraphConstruction::Approximate { partitions, probes };
        self
    }

    /// Build the engine, consuming the feature vectors (one per item).
    pub fn build(self, features: Vec<Vec<f64>>) -> Result<RetrievalEngine> {
        if features.is_empty() {
            return Err(CoreError::InvalidInput(
                "cannot build a retrieval engine over zero items".into(),
            ));
        }
        let params = MrParams::new(self.alpha)?;
        let knn_config = KnnConfig::with_k(self.knn_k);
        let graph = match self.graph {
            GraphConstruction::Exact => knn_graph(&features, knn_config)?,
            GraphConstruction::Approximate { partitions, probes } => {
                // The low-level builder silently clamps out-of-range values;
                // at this level a nonsensical configuration is a caller bug
                // and deserves a loud, descriptive error.
                if partitions == 0 || probes == 0 {
                    return Err(CoreError::InvalidInput(format!(
                        "approximate graph construction needs at least one partition and one \
                         probe (got partitions = {partitions}, probes = {probes})"
                    )));
                }
                if probes > partitions {
                    return Err(CoreError::InvalidInput(format!(
                        "approximate graph construction cannot probe {probes} partitions when \
                         only {partitions} exist (probes must be ≤ partitions)"
                    )));
                }
                approximate_knn_graph(&features, knn_config, partitions, probes, self.seed)?
            }
        };
        let index = MogulIndex::build(
            &graph,
            MogulConfig {
                params,
                factorization: self.factorization,
                ..MogulConfig::default()
            },
        )?;
        let oos = OutOfSampleIndex::new(
            index,
            features,
            OutOfSampleConfig {
                num_neighbors: self.out_of_sample_neighbors,
                cluster_probes: 1,
            },
        )?;
        Ok(RetrievalEngine { oos })
    }
}

/// A ready-to-query retrieval engine over a fixed collection of items.
///
/// The engine is immutable after construction and `Send + Sync`, so one
/// instance can be shared across threads (see the `mogul-serve` crate for a
/// ready-made concurrent serving layer on top of it).
///
/// ```
/// use mogul_core::RetrievalEngine;
///
/// // Twelve items along a line: nearby items rank highest.
/// let features: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 0.0]).collect();
/// let engine = RetrievalEngine::builder().knn_k(3).build(features)?;
///
/// let top = engine.query_by_id(0, 3)?;       // query with an indexed item
/// assert_eq!(top.len(), 3);
/// assert!(!top.contains(0));                 // the query itself is excluded
///
/// let oos = engine.query_by_feature(&[2.5, 0.0], 3)?; // query with a new vector
/// assert_eq!(oos.top_k.len(), 3);
/// # Ok::<(), mogul_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RetrievalEngine {
    oos: OutOfSampleIndex,
}

impl RetrievalEngine {
    /// Start building an engine with the paper's default parameters.
    pub fn builder() -> RetrievalEngineBuilder {
        RetrievalEngineBuilder::default()
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.oos.index().num_nodes()
    }

    /// `true` when the engine indexes zero items (never constructed that way).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The underlying Mogul index (ordering, factors, statistics).
    pub fn index(&self) -> &MogulIndex {
        self.oos.index()
    }

    /// The underlying out-of-sample index (Mogul index + database features
    /// and per-cluster centroids).
    pub fn out_of_sample(&self) -> &OutOfSampleIndex {
        &self.oos
    }

    /// Consume the engine, yielding the out-of-sample index — the form the
    /// `mogul-serve` crate shares behind an `Arc` across query workers.
    pub fn into_out_of_sample(self) -> OutOfSampleIndex {
        self.oos
    }

    /// Precomputation statistics of the underlying index.
    pub fn precompute_stats(&self) -> PrecomputeStats {
        self.oos.index().precompute_stats()
    }

    /// Top-k items for a query that is part of the collection (the query
    /// itself is excluded from the result).
    pub fn query_by_id(&self, item: usize, k: usize) -> Result<TopKResult> {
        self.oos.index().search(item, k)
    }

    /// [`RetrievalEngine::query_by_id`] with caller-owned scratch:
    /// bit-identical results, zero allocation on the hot substitution and
    /// pruning path once the workspace is warm.
    pub fn query_by_id_in(
        &self,
        ws: &mut SearchWorkspace,
        item: usize,
        k: usize,
    ) -> Result<TopKResult> {
        self.oos.index().search_in(ws, item, k)
    }

    /// Top-k items for an arbitrary feature vector (out-of-sample query).
    pub fn query_by_feature(&self, feature: &[f64], k: usize) -> Result<OutOfSampleResult> {
        self.oos.query(feature, k)
    }

    /// [`RetrievalEngine::query_by_feature`] with caller-owned scratch (see
    /// [`OosWorkspace`]).
    pub fn query_by_feature_in(
        &self,
        ws: &mut OosWorkspace,
        feature: &[f64],
        k: usize,
    ) -> Result<OutOfSampleResult> {
        self.oos.query_in(ws, feature, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mogul_data::coil::{coil_like, CoilLikeConfig};

    fn features() -> (mogul_data::Dataset, Vec<Vec<f64>>) {
        let data = coil_like(&CoilLikeConfig {
            num_objects: 6,
            poses_per_object: 18,
            dim: 12,
            ..Default::default()
        })
        .unwrap();
        let features = data.features().to_vec();
        (data, features)
    }

    #[test]
    fn default_engine_answers_both_query_kinds() {
        let (data, feats) = features();
        let engine = RetrievalEngine::builder().build(feats).unwrap();
        assert_eq!(engine.len(), data.len());
        assert!(!engine.is_empty());
        assert!(engine.precompute_stats().l_nnz > 0);

        let in_sample = engine.query_by_id(0, 5).unwrap();
        assert_eq!(in_sample.len(), 5);
        assert!(!in_sample.contains(0));
        let same_object = in_sample
            .nodes()
            .iter()
            .filter(|&&n| data.label(n) == data.label(0))
            .count();
        assert!(same_object >= 4);

        let oos = engine.query_by_feature(data.feature(7), 5).unwrap();
        assert_eq!(oos.top_k.len(), 5);
        let same_object = oos
            .top_k
            .nodes()
            .iter()
            .filter(|&&n| data.label(n) == data.label(7))
            .count();
        assert!(same_object >= 3);
    }

    #[test]
    fn builder_options_are_respected() {
        let (_, feats) = features();
        let engine = RetrievalEngine::builder()
            .exact_ranking()
            .alpha(0.9)
            .knn_k(8)
            .build(feats.clone())
            .unwrap();
        assert_eq!(engine.index().factorization(), Factorization::Complete);
        assert!((engine.index().params().alpha - 0.9).abs() < 1e-12);

        let approx = RetrievalEngine::builder()
            .approximate_graph(10, 3)
            .build(feats)
            .unwrap();
        let top = approx.query_by_id(3, 4).unwrap();
        assert_eq!(top.len(), 4);
    }

    #[test]
    fn builder_validation() {
        assert!(RetrievalEngine::builder().build(vec![]).is_err());
        let (_, feats) = features();
        assert!(RetrievalEngine::builder().alpha(1.5).build(feats).is_err());
    }

    #[test]
    fn approximate_graph_parameters_are_validated() {
        let (_, feats) = features();
        // probes > partitions used to silently degrade (the low-level builder
        // clamps); the engine now rejects it up front with a clear message.
        for (partitions, probes) in [(4, 5), (0, 1), (4, 0), (0, 0)] {
            let err = RetrievalEngine::builder()
                .approximate_graph(partitions, probes)
                .build(feats.clone())
                .unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("partition") || msg.contains("probe"),
                "unhelpful error for partitions={partitions}, probes={probes}: {msg}"
            );
        }
        // A valid configuration still builds.
        assert!(RetrievalEngine::builder()
            .approximate_graph(5, 5)
            .build(feats)
            .is_ok());
    }

    #[test]
    fn workspace_entry_points_match_allocating_queries() {
        let (data, feats) = features();
        let engine = RetrievalEngine::builder().build(feats).unwrap();
        let mut search_ws = crate::mogul::SearchWorkspace::new();
        let mut oos_ws = OosWorkspace::new();
        for item in [0usize, 5, 17] {
            assert_eq!(
                engine.query_by_id(item, 4).unwrap(),
                engine.query_by_id_in(&mut search_ws, item, 4).unwrap()
            );
        }
        let fresh = engine.query_by_feature(data.feature(3), 4).unwrap();
        let reused = engine
            .query_by_feature_in(&mut oos_ws, data.feature(3), 4)
            .unwrap();
        assert_eq!(fresh.top_k, reused.top_k);
        assert_eq!(fresh.neighbors, reused.neighbors);
    }
}
