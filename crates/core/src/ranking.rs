//! Ranking results and the common solver interface.

use crate::{CoreError, Result};

/// A single ranked node with its (approximate or exact) Manifold Ranking
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedNode {
    /// Original node id in the k-NN graph.
    pub node: usize,
    /// Ranking score (larger is more relevant).
    pub score: f64,
}

/// An ordered top-k result (descending score; ties broken by node id).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopKResult {
    items: Vec<RankedNode>,
}

impl TopKResult {
    /// Build a result from already-ranked items (they are re-sorted
    /// defensively so every constructor yields the same ordering).
    pub fn new(mut items: Vec<RankedNode>) -> Self {
        items.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        TopKResult { items }
    }

    /// Build the top-k result from a full score vector.
    ///
    /// `exclude` optionally removes one node (typically the query itself,
    /// which always ranks first) before taking the top k.
    pub fn from_scores(scores: &[f64], k: usize, exclude: Option<usize>) -> Self {
        let mut items: Vec<RankedNode> = scores
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i) != exclude)
            .map(|(node, &score)| RankedNode { node, score })
            .collect();
        items.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        items.truncate(k);
        TopKResult { items }
    }

    /// Ranked items, best first.
    pub fn items(&self) -> &[RankedNode] {
        &self.items
    }

    /// Node ids in rank order.
    pub fn nodes(&self) -> Vec<usize> {
        self.items.iter().map(|r| r.node).collect()
    }

    /// Number of returned nodes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when `node` appears anywhere in the result.
    pub fn contains(&self, node: usize) -> bool {
        self.items.iter().any(|r| r.node == node)
    }

    /// Score of `node` if it appears in the result.
    pub fn score_of(&self, node: usize) -> Option<f64> {
        self.items.iter().find(|r| r.node == node).map(|r| r.score)
    }
}

/// The interface shared by every top-k Manifold Ranking solver in this crate.
pub trait Ranker {
    /// Human-readable solver name used in experiment reports
    /// ("Mogul", "EMR", "FMR", "Iterative", "Inverse", …).
    fn name(&self) -> &'static str;

    /// Number of nodes in the underlying graph.
    fn num_nodes(&self) -> usize;

    /// Return the top-k nodes for a query node that is part of the database.
    /// The query node itself is excluded from the result.
    fn top_k(&self, query: usize, k: usize) -> Result<TopKResult>;

    /// Full ranking-score vector for a query node (may be approximate).
    fn scores(&self, query: usize) -> Result<Vec<f64>>;
}

/// Validate that a query index is inside the graph.
pub(crate) fn check_query(query: usize, n: usize) -> Result<()> {
    if query >= n {
        return Err(CoreError::IndexOutOfBounds {
            index: (query, 0),
            shape: (n, 1),
        });
    }
    Ok(())
}

/// Validate that `k` is positive.
pub(crate) fn check_k(k: usize) -> Result<()> {
    if k == 0 {
        return Err(CoreError::InvalidInput(
            "the number of requested answer nodes k must be at least 1".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scores_orders_and_truncates() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.0];
        let top = TopKResult::from_scores(&scores, 3, None);
        assert_eq!(top.nodes(), vec![1, 3, 2]);
        assert_eq!(top.len(), 3);
        assert!(top.contains(2));
        assert!(!top.contains(0));
        assert_eq!(top.score_of(2), Some(0.5));
        assert_eq!(top.score_of(4), None);
    }

    #[test]
    fn exclusion_removes_query() {
        let scores = [0.9, 0.1, 0.5];
        let top = TopKResult::from_scores(&scores, 2, Some(0));
        assert_eq!(top.nodes(), vec![2, 1]);
    }

    #[test]
    fn k_larger_than_n() {
        let scores = [0.3, 0.2];
        let top = TopKResult::from_scores(&scores, 10, None);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn new_resorts_items() {
        let top = TopKResult::new(vec![
            RankedNode {
                node: 2,
                score: 0.1,
            },
            RankedNode {
                node: 1,
                score: 0.7,
            },
        ]);
        assert_eq!(top.nodes(), vec![1, 2]);
        assert!(!top.is_empty());
    }

    #[test]
    fn validators() {
        assert!(check_query(2, 3).is_ok());
        assert!(check_query(3, 3).is_err());
        assert!(check_k(1).is_ok());
        assert!(check_k(0).is_err());
    }
}
