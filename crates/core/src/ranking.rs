//! Ranking results and the common solver interface.

use crate::topk::{f64_sort_key, BoundedTopK, Entry};
use crate::{CoreError, Result};
use std::cmp::Reverse;

/// A single ranked node with its (approximate or exact) Manifold Ranking
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedNode {
    /// Original node id in the k-NN graph.
    pub node: usize,
    /// Ranking score (larger is more relevant).
    pub score: f64,
}

/// An ordered top-k result (descending score; ties broken by node id).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopKResult {
    items: Vec<RankedNode>,
}

impl TopKResult {
    /// Build a result from already-ranked items (they are re-sorted
    /// defensively so every constructor yields the same ordering).
    pub fn new(mut items: Vec<RankedNode>) -> Self {
        items.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.node.cmp(&b.node))
        });
        TopKResult { items }
    }

    /// Build the top-k result from a full score vector.
    ///
    /// `exclude` optionally removes one node (typically the query itself,
    /// which always ranks first) before taking the top k.
    ///
    /// Selection is `O(n log k)` through the shared [`BoundedTopK`]
    /// collector instead of a full sort; the ordering is pinned to
    /// descending score with ties broken by the smaller node id (NaN scores
    /// rank below every real score).
    pub fn from_scores(scores: &[f64], k: usize, exclude: Option<usize>) -> Self {
        let mut top = BoundedTopK::new(k);
        for (node, &score) in scores.iter().enumerate() {
            if Some(node) == exclude {
                continue;
            }
            // NaN would sort *above* +inf under the IEEE total order; pin it
            // below -inf instead so broken scores never displace real ones.
            // Normalize -0.0 so both zeros tie (falling to the node-id
            // tie-break), matching the partial_cmp sort this replaced.
            let rank = if score.is_nan() {
                0
            } else if score == 0.0 {
                f64_sort_key(0.0)
            } else {
                f64_sort_key(score)
            };
            top.offer(Entry {
                key: (Reverse(rank), node),
                value: score,
            });
        }
        TopKResult {
            items: top
                .into_sorted_vec()
                .into_iter()
                .map(|e| RankedNode {
                    node: e.key.1,
                    score: e.value,
                })
                .collect(),
        }
    }

    /// Ranked items, best first.
    pub fn items(&self) -> &[RankedNode] {
        &self.items
    }

    /// Node ids in rank order.
    pub fn nodes(&self) -> Vec<usize> {
        self.items.iter().map(|r| r.node).collect()
    }

    /// Number of returned nodes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when `node` appears anywhere in the result.
    pub fn contains(&self, node: usize) -> bool {
        self.items.iter().any(|r| r.node == node)
    }

    /// Score of `node` if it appears in the result.
    pub fn score_of(&self, node: usize) -> Option<f64> {
        self.items.iter().find(|r| r.node == node).map(|r| r.score)
    }
}

/// The interface shared by every top-k Manifold Ranking solver in this crate.
pub trait Ranker {
    /// Human-readable solver name used in experiment reports
    /// ("Mogul", "EMR", "FMR", "Iterative", "Inverse", …).
    fn name(&self) -> &'static str;

    /// Number of nodes in the underlying graph.
    fn num_nodes(&self) -> usize;

    /// Return the top-k nodes for a query node that is part of the database.
    /// The query node itself is excluded from the result.
    fn top_k(&self, query: usize, k: usize) -> Result<TopKResult>;

    /// Full ranking-score vector for a query node (may be approximate).
    fn scores(&self, query: usize) -> Result<Vec<f64>>;
}

/// Validate that a query index is inside the graph.
pub(crate) fn check_query(query: usize, n: usize) -> Result<()> {
    if query >= n {
        return Err(CoreError::IndexOutOfBounds {
            index: (query, 0),
            shape: (n, 1),
        });
    }
    Ok(())
}

/// Validate that `k` is positive.
pub(crate) fn check_k(k: usize) -> Result<()> {
    if k == 0 {
        return Err(CoreError::InvalidInput(
            "the number of requested answer nodes k must be at least 1".into(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_scores_orders_and_truncates() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.0];
        let top = TopKResult::from_scores(&scores, 3, None);
        assert_eq!(top.nodes(), vec![1, 3, 2]);
        assert_eq!(top.len(), 3);
        assert!(top.contains(2));
        assert!(!top.contains(0));
        assert_eq!(top.score_of(2), Some(0.5));
        assert_eq!(top.score_of(4), None);
    }

    #[test]
    fn exclusion_removes_query() {
        let scores = [0.9, 0.1, 0.5];
        let top = TopKResult::from_scores(&scores, 2, Some(0));
        assert_eq!(top.nodes(), vec![2, 1]);
    }

    #[test]
    fn k_larger_than_n() {
        let scores = [0.3, 0.2];
        let top = TopKResult::from_scores(&scores, 10, None);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn new_resorts_items() {
        let top = TopKResult::new(vec![
            RankedNode {
                node: 2,
                score: 0.1,
            },
            RankedNode {
                node: 1,
                score: 0.7,
            },
        ]);
        assert_eq!(top.nodes(), vec![1, 2]);
        assert!(!top.is_empty());
    }

    #[test]
    fn tie_break_order_is_pinned() {
        // Equal scores rank by ascending node id, both inside the kept set
        // and at the truncation boundary (nodes 1/3/4 tie at 0.9; k = 2 must
        // keep the two smallest ids).
        let scores = [0.5, 0.9, 0.9, 0.9, 0.9, 0.1];
        let top = TopKResult::from_scores(&scores, 2, None);
        assert_eq!(top.nodes(), vec![1, 2]);
        let wide = TopKResult::from_scores(&scores, 5, None);
        assert_eq!(wide.nodes(), vec![1, 2, 3, 4, 0]);
        // Negative and NaN scores: finite ordering holds, NaN ranks last.
        let messy = [f64::NAN, -1.0, -3.0, 2.0];
        let all = TopKResult::from_scores(&messy, 4, None);
        assert_eq!(all.nodes(), vec![3, 1, 2, 0]);
        // Signed zeros tie (node-id order decides), as with the sort-based
        // implementation this replaced.
        let zeros = [-0.0, 0.0];
        assert_eq!(TopKResult::from_scores(&zeros, 1, None).nodes(), vec![0]);
    }

    #[test]
    fn validators() {
        assert!(check_query(2, 3).is_ok());
        assert!(check_query(3, 3).is_err());
        assert!(check_k(1).is_ok());
        assert!(check_k(0).is_err());
    }
}
