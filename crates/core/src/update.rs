//! Incremental index updates with epoch-versioned snapshots.
//!
//! The paper factorizes the ranking system matrix `W = I − α C^{-1/2} A
//! C^{-1/2}` **once per database** — every query afterwards is substitution
//! over immutable factors. That design leaves no room for a corpus that
//! changes: one inserted image would invalidate `A`, `C` and the `L D Lᵀ`
//! factors and force a full precomputation.
//!
//! This module closes that gap without abandoning the factorization.  The
//! observation is that an insert or removal perturbs only a handful of rows
//! of `W` (the touched item and its graph neighbours, whose degrees change),
//! so the *current* system matrix is always
//!
//! ```text
//! W  =  W₀ + Δ,        Δ = E_R A_R + B E_Rᵀ   (symmetric, support rows R)
//! ```
//!
//! where `W₀` is the matrix factorized at the last **rebuild** (inserted
//! items appended as implicit identity rows) and `R` is the set of rows
//! touched since then. `Δ` has rank at most `2|R|`, so queries are answered
//! through the Woodbury identity against the *existing* factors
//! ([`mogul_sparse::WoodburyCorrection`], the same identity the EMR baseline
//! uses for its anchor factorization):
//!
//! ```text
//! W⁻¹ b = x₀ − Z (I + Vᵀ Z)⁻¹ Vᵀ x₀,   x₀ = W₀⁻¹ b,  Z = W₀⁻¹ U,
//! U = [E_R | B],  V = [A_Rᵀ | E_R].
//! ```
//!
//! Each applied [`IndexDelta`] therefore costs `2|R|` substitutions against
//! the old factors instead of a clustering + ordering + factorization pass,
//! and each query pays `O(n · 2|R|)` extra — the **rebuild debt**. A
//! configurable [`RebuildPolicy`] bounds that debt: when the support `|R|`
//! grows past the threshold, [`UpdatableIndex::apply`] performs a full
//! refactorization of the current graph (off the query path — readers keep
//! using the previous snapshot until the new one is published).
//!
//! Every apply publishes an immutable, epoch-stamped [`IndexSnapshot`]
//! behind an [`Arc`]: queries run against a snapshot, writers never mutate
//! one. The `mogul-serve` crate swaps these snapshots atomically under its
//! `QueryServer`, which is what makes updates zero-downtime: in-flight
//! queries finish on the epoch they started with.
//!
//! Items are addressed by **stable ids** (`usize`, assigned at insert,
//! never reused); dense node indices are an internal detail that changes at
//! every rebuild.

use crate::engine::RetrievalEngineBuilder;
use crate::mogul::{
    BatchWorkspace, MogulConfig, MogulIndex, SearchMode, SearchStats, SearchWorkspace, PANEL_WIDTH,
};
use crate::out_of_sample::{OosWorkspace, OutOfSampleConfig, OutOfSampleIndex, OutOfSampleResult};
use crate::ranking::{check_k, RankedNode, TopKResult};
use crate::topk::BoundedTopK;
use crate::{CoreError, Result};
use mogul_graph::knn::{
    estimate_sigma, exact_knn_indices, graph_from_neighbor_lists, EdgeWeighting,
};
use mogul_graph::Graph;
use mogul_sparse::{CorrectionWorkspace, WoodburyCorrection};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Deltas and policy
// ---------------------------------------------------------------------------

/// One staged mutation of the indexed collection.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Insert a new item with the given feature vector.
    Insert {
        /// Feature vector of the new item (must match the index dimension).
        feature: Vec<f64>,
    },
    /// Remove the item with the given stable id.
    Remove {
        /// Stable id returned when the item was inserted (initial items get
        /// ids `0..n` in input order).
        id: usize,
    },
}

/// An ordered batch of inserts and removals, applied atomically by
/// [`UpdatableIndex::apply`]: either every operation takes effect in one new
/// snapshot epoch, or (on validation failure) none does.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexDelta {
    ops: Vec<UpdateOp>,
}

impl IndexDelta {
    /// An empty delta.
    pub fn new() -> Self {
        IndexDelta::default()
    }

    /// Stage an insert; the new item's stable id is reported by
    /// [`UpdateReport::inserted`] once the delta is applied.
    pub fn insert(&mut self, feature: Vec<f64>) -> &mut Self {
        self.ops.push(UpdateOp::Insert { feature });
        self
    }

    /// Stage a removal by stable id. Within one delta, operations apply in
    /// order, so a removal may reference an id inserted earlier in the same
    /// delta.
    pub fn remove(&mut self, id: usize) -> &mut Self {
        self.ops.push(UpdateOp::Remove { id });
        self
    }

    /// The staged operations in application order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of staged operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// When accumulated corrections trigger a full refactorization.
///
/// The correction support `|R|` (rows of `W` that differ from the factorized
/// base) is the debt currency: query overhead grows as `O(n · 2|R|)` and the
/// correction stores a dense `n × 2|R|` block, so both thresholds bound
/// query latency *and* memory. A rebuild resets the support to zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Absolute ceiling on the support `|R|`.
    pub max_support: usize,
    /// Relative ceiling: rebuild when `|R| > fraction · live items`.
    pub max_support_fraction: f64,
}

impl Default for RebuildPolicy {
    fn default() -> Self {
        RebuildPolicy {
            max_support: 1024,
            max_support_fraction: 0.10,
        }
    }
}

impl RebuildPolicy {
    /// A policy that never triggers an automatic rebuild (callers refactorize
    /// explicitly through [`UpdatableIndex::rebuild`]). Used by the
    /// equivalence tests to keep corrections accumulating.
    pub fn never() -> Self {
        RebuildPolicy {
            max_support: usize::MAX,
            max_support_fraction: f64::INFINITY,
        }
    }

    /// `true` when the given debt exceeds either threshold.
    pub fn should_rebuild(&self, debt: RebuildDebt) -> bool {
        debt.support > self.max_support
            || (debt.support as f64) > self.max_support_fraction * debt.live_items as f64
    }
}

/// Snapshot of the accumulated rebuild debt (see [`RebuildPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebuildDebt {
    /// Rows of `W` that differ from the factorized base (`|R|`).
    pub support: usize,
    /// Rank of the active Woodbury correction (`≤ 2 · support`).
    pub correction_rank: usize,
    /// Live (queryable) items.
    pub live_items: usize,
}

impl RebuildDebt {
    /// Support as a fraction of the live collection.
    pub fn support_fraction(&self) -> f64 {
        if self.live_items == 0 {
            0.0
        } else {
            self.support as f64 / self.live_items as f64
        }
    }
}

/// What one [`UpdatableIndex::apply`] (or [`UpdatableIndex::rebuild`]) did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReport {
    /// Epoch of the snapshot published by this application.
    pub epoch: u64,
    /// Stable ids assigned to the delta's inserts, in staging order.
    pub inserted: Vec<usize>,
    /// Number of items removed by the delta.
    pub removed: usize,
    /// `true` when the rebuild-debt policy (or an explicit
    /// [`UpdatableIndex::rebuild`]) triggered a full refactorization.
    pub rebuilt: bool,
    /// Rebuild debt after this application (zero after a rebuild).
    pub debt: RebuildDebt,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Builder for [`UpdatableIndex`] — the updatable counterpart of
/// [`RetrievalEngineBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IndexBuilder {
    engine: RetrievalEngineBuilder,
    policy: RebuildPolicy,
}

impl IndexBuilder {
    /// Start from the paper's default parameters.
    pub fn new() -> Self {
        IndexBuilder::default()
    }

    /// Override the Manifold Ranking `α`.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.engine.alpha = alpha;
        self
    }

    /// Override the k-NN degree used both for the initial graph and for
    /// connecting inserted items.
    pub fn knn_k(mut self, k: usize) -> Self {
        self.engine.knn_k = k;
        self
    }

    /// Use the exact (MogulE, complete factorization) configuration; with it
    /// incremental answers match a from-scratch refactorization exactly.
    pub fn exact_ranking(mut self) -> Self {
        self.engine = self.engine.exact_ranking();
        self
    }

    /// Override the number of database neighbours used by out-of-sample
    /// queries.
    pub fn out_of_sample_neighbors(mut self, neighbors: usize) -> Self {
        self.engine.out_of_sample_neighbors = neighbors;
        self
    }

    /// Override the rebuild-debt policy.
    pub fn rebuild_policy(mut self, policy: RebuildPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Build the updatable index over the initial collection. Initial items
    /// receive stable ids `0..features.len()` in input order.
    pub fn build(self, features: Vec<Vec<f64>>) -> Result<UpdatableIndex> {
        if features.is_empty() {
            return Err(CoreError::InvalidInput(
                "cannot build an updatable index over zero items".into(),
            ));
        }
        let params = crate::MrParams::new(self.engine.alpha)?;
        let lists = exact_knn_indices(&features, self.engine.knn_k, 0)?;
        // Pin the heat-kernel bandwidth now: inserted edges must be weighted
        // on the same scale as the initial graph.
        let sigma = estimate_sigma(&lists);
        let graph =
            graph_from_neighbor_lists(&lists, EdgeWeighting::HeatKernel { sigma: Some(sigma) })?;
        let config = MogulConfig {
            params,
            factorization: self.engine.factorization,
            ..MogulConfig::default()
        };
        let oos_config = OutOfSampleConfig {
            num_neighbors: self.engine.out_of_sample_neighbors,
            cluster_probes: 1,
        };
        let n = features.len();
        let dim = features[0].len();
        let index = MogulIndex::build(&graph, config)?;
        let oos = Arc::new(OutOfSampleIndex::new(index, features.clone(), oos_config)?);

        let ids: Vec<usize> = (0..n).collect();
        let node_of_id: Vec<Option<usize>> = (0..n).map(Some).collect();
        let snapshot = Arc::new(IndexSnapshot {
            epoch: 0,
            oos: Arc::clone(&oos),
            state: SnapshotState::Clean,
            ids: ids.clone(),
            node_of_id: node_of_id.clone(),
            live_count: n,
            dim,
        });
        let base_neighbors = (0..n).map(|u| graph.neighbors(u).to_vec()).collect();
        let base_degrees = (0..n).map(|u| graph.weighted_degree(u)).collect();
        Ok(UpdatableIndex {
            config,
            knn_k: self.engine.knn_k,
            oos_config,
            policy: self.policy,
            sigma,
            graph,
            features,
            live: vec![true; n],
            ids,
            node_of_id,
            next_id: n,
            dim,
            live_count: n,
            base: oos,
            base_neighbors,
            base_degrees,
            dirty: BTreeSet::new(),
            epoch: 0,
            snapshot,
        })
    }
}

// ---------------------------------------------------------------------------
// The updatable index (writer side)
// ---------------------------------------------------------------------------

/// A Mogul index that accepts inserts and removals after construction.
///
/// The writer state lives here; queries run against the immutable
/// [`IndexSnapshot`]s it publishes ([`UpdatableIndex::snapshot`]). See the
/// [module docs](self) for the lifecycle and `docs/UPDATES.md` for the
/// operator's view.
///
/// ```
/// use mogul_core::update::{IndexBuilder, IndexDelta};
///
/// // Ten items along a line.
/// let features: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 0.0]).collect();
/// let mut index = IndexBuilder::new().knn_k(3).build(features)?;
///
/// // Insert one item near the start of the line, remove item 9.
/// let mut delta = IndexDelta::new();
/// delta.insert(vec![0.5, 0.0]).remove(9);
/// let report = index.apply(&delta)?;
/// let new_id = report.inserted[0];
///
/// // The published snapshot sees both changes.
/// let snapshot = index.snapshot();
/// let top = snapshot.query_by_id(0, 3)?;
/// assert!(top.contains(new_id));
/// assert!(snapshot.query_by_id(9, 3).is_err()); // removed
/// # Ok::<(), mogul_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct UpdatableIndex {
    // Fixed configuration.
    config: MogulConfig,
    knn_k: usize,
    oos_config: OutOfSampleConfig,
    policy: RebuildPolicy,
    /// Heat-kernel bandwidth pinned at initial construction so incremental
    /// edges share the weight scale of the initial graph.
    sigma: f64,
    // Current collection state in dense node space (tombstones included).
    graph: Graph,
    features: Vec<Vec<f64>>,
    live: Vec<bool>,
    /// Dense node → stable id.
    ids: Vec<usize>,
    /// Stable id → dense node (`None` = removed).
    node_of_id: Vec<Option<usize>>,
    next_id: usize,
    dim: usize,
    live_count: usize,
    // Base epoch: the factorized state of the last rebuild.
    base: Arc<OutOfSampleIndex>,
    /// Adjacency rows of the base graph (dense nodes `0..base_len`).
    base_neighbors: Vec<Vec<(usize, f64)>>,
    /// Weighted degrees of the base graph.
    base_degrees: Vec<f64>,
    /// Rows of `W` that differ from the base (the correction support `R`).
    dirty: BTreeSet<usize>,
    // Published state.
    epoch: u64,
    snapshot: Arc<IndexSnapshot>,
}

impl UpdatableIndex {
    /// Start building an updatable index with the paper's defaults.
    pub fn builder() -> IndexBuilder {
        IndexBuilder::new()
    }

    /// The currently published snapshot (cheap `Arc` clone).
    pub fn snapshot(&self) -> Arc<IndexSnapshot> {
        Arc::clone(&self.snapshot)
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live (queryable) items.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` when no live items remain (never: the last item cannot be
    /// removed).
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// `true` when the stable id refers to a live item.
    pub fn contains(&self, id: usize) -> bool {
        self.node_of_id.get(id).copied().flatten().is_some()
    }

    /// The configured rebuild policy.
    pub fn policy(&self) -> RebuildPolicy {
        self.policy
    }

    /// Current rebuild debt.
    pub fn debt(&self) -> RebuildDebt {
        RebuildDebt {
            support: self.dirty.len(),
            correction_rank: self.snapshot.correction_rank(),
            live_items: self.live_count,
        }
    }

    /// `true` when the next [`UpdatableIndex::apply`] would trigger a full
    /// refactorization even without further changes.
    pub fn needs_rebuild(&self) -> bool {
        !self.dirty.is_empty() && self.policy.should_rebuild(self.debt())
    }

    /// Apply a delta: validate every operation, mutate the collection, and
    /// publish a new snapshot epoch.
    ///
    /// The new snapshot reuses the existing factorization through a Woodbury
    /// correction unless the accumulated debt exceeds the
    /// [`RebuildPolicy`], in which case the current graph is refactorized
    /// from scratch (still off the query path — readers keep the previous
    /// snapshot until this method returns the new one).
    ///
    /// An empty delta is a no-op and does not advance the epoch.
    pub fn apply(&mut self, delta: &IndexDelta) -> Result<UpdateReport> {
        if delta.is_empty() {
            return Ok(UpdateReport {
                epoch: self.epoch,
                inserted: Vec::new(),
                removed: 0,
                rebuilt: false,
                debt: self.debt(),
            });
        }
        self.validate(delta)?;

        let mut inserted = Vec::new();
        let mut removed = 0usize;
        for op in delta.ops() {
            match op {
                UpdateOp::Insert { feature } => inserted.push(self.insert_item(feature.clone())?),
                UpdateOp::Remove { id } => {
                    self.remove_item(*id)?;
                    removed += 1;
                }
            }
        }

        let mut rebuilt = self.policy.should_rebuild(RebuildDebt {
            support: self.dirty.len(),
            correction_rank: 0,
            live_items: self.live_count,
        });
        if rebuilt {
            self.rebuild_epoch()?;
        } else if self.publish_corrected().is_err() {
            // The correction could not be built (e.g. a numerically singular
            // capacitance matrix under the incomplete factorization's
            // approximate base solves). The collection state is already
            // mutated, so recover by refactorizing — always well-defined —
            // instead of surfacing an error that would leave the writer
            // state ahead of the published snapshot.
            self.rebuild_epoch()?;
            rebuilt = true;
        }
        Ok(UpdateReport {
            epoch: self.epoch,
            inserted,
            removed,
            rebuilt,
            debt: self.debt(),
        })
    }

    /// Force a full refactorization of the current graph and publish it as a
    /// fresh (debt-free) snapshot epoch. This is the "background" half of the
    /// lifecycle: run it from a maintenance thread while queries keep hitting
    /// the previous snapshot.
    pub fn rebuild(&mut self) -> Result<UpdateReport> {
        self.rebuild_epoch()?;
        Ok(UpdateReport {
            epoch: self.epoch,
            inserted: Vec::new(),
            removed: 0,
            rebuilt: true,
            debt: self.debt(),
        })
    }

    /// The next stable id this index would assign (ids are never reused).
    /// The sharded manifest loader pins this against the recorded overflow
    /// history to reject stale or swapped shard files.
    pub(crate) fn next_stable_id(&self) -> usize {
        self.next_id
    }

    // -- persistence hooks (see `crate::persist`) -----------------------------

    /// Borrow the state the persistence layer stores, or `None` unless the
    /// current epoch is **clean** (fresh factorization, no tombstones, no
    /// correction). Clean is the only state worth writing: a corrected epoch
    /// would persist a dense `n × 2|R|` Woodbury block that a rebuild-on-load
    /// makes obsolete, so callers checkpoint right after rebuilds instead.
    pub(crate) fn persist_view(&self) -> Option<PersistView<'_>> {
        if !self.snapshot.is_clean() || !self.dirty.is_empty() {
            return None;
        }
        debug_assert!(self.live.iter().all(|&l| l), "clean epoch has tombstones");
        Some(PersistView {
            config: self.config,
            knn_k: self.knn_k,
            oos_config: self.oos_config,
            policy: self.policy,
            sigma: self.sigma,
            graph: &self.graph,
            base: &self.base,
            ids: &self.ids,
            next_id: self.next_id,
            epoch: self.epoch,
        })
    }

    /// Reassemble an updatable index from persisted parts (the loader of
    /// `crate::persist`). The reconstructed index is on a clean epoch: the
    /// supplied `base` is both the factorized base and the current
    /// collection state.
    #[allow(clippy::too_many_arguments)] // mirrors the persisted field list 1:1
    pub(crate) fn from_persist_parts(
        config: MogulConfig,
        knn_k: usize,
        oos_config: OutOfSampleConfig,
        policy: RebuildPolicy,
        sigma: f64,
        graph: Graph,
        base: Arc<OutOfSampleIndex>,
        ids: Vec<usize>,
        next_id: usize,
        epoch: u64,
    ) -> Result<Self> {
        let n = base.index().num_nodes();
        if graph.num_nodes() != n {
            return Err(CoreError::InvalidInput(format!(
                "persisted graph covers {} nodes but the index covers {n}",
                graph.num_nodes()
            )));
        }
        if ids.len() != n {
            return Err(CoreError::InvalidInput(format!(
                "persisted id map covers {} nodes but the index covers {n}",
                ids.len()
            )));
        }
        if knn_k == 0 {
            return Err(CoreError::InvalidInput(
                "persisted k-NN degree must be at least 1".into(),
            ));
        }
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(CoreError::InvalidInput(format!(
                "persisted heat-kernel bandwidth must be positive and finite, got {sigma}"
            )));
        }
        let node_of_id = node_map_from_ids(&ids, next_id)?;
        let features = base.features().to_vec();
        let dim = base.feature_dim();
        let snapshot = Arc::new(IndexSnapshot {
            epoch,
            oos: Arc::clone(&base),
            state: SnapshotState::Clean,
            ids: ids.clone(),
            node_of_id: node_of_id.clone(),
            live_count: n,
            dim,
        });
        let base_neighbors = (0..n).map(|u| graph.neighbors(u).to_vec()).collect();
        let base_degrees = (0..n).map(|u| graph.weighted_degree(u)).collect();
        Ok(UpdatableIndex {
            config,
            knn_k,
            oos_config,
            policy,
            sigma,
            graph,
            features,
            live: vec![true; n],
            ids,
            node_of_id,
            next_id,
            dim,
            live_count: n,
            base,
            base_neighbors,
            base_degrees,
            dirty: BTreeSet::new(),
            epoch,
            snapshot,
        })
    }

    // -- validation ---------------------------------------------------------

    fn validate(&self, delta: &IndexDelta) -> Result<()> {
        let mut sim_next = self.next_id;
        let mut sim_removed: BTreeSet<usize> = BTreeSet::new();
        let mut sim_live = self.live_count;
        for op in delta.ops() {
            match op {
                UpdateOp::Insert { feature } => {
                    if feature.len() != self.dim {
                        return Err(CoreError::DimensionMismatch {
                            op: "update insert feature",
                            left: (1, self.dim),
                            right: (1, feature.len()),
                        });
                    }
                    if !feature.iter().all(|v| v.is_finite()) {
                        return Err(CoreError::InvalidInput(
                            "inserted feature contains non-finite values".into(),
                        ));
                    }
                    sim_next += 1;
                    sim_live += 1;
                }
                UpdateOp::Remove { id } => {
                    let known = *id < sim_next
                        && !sim_removed.contains(id)
                        && (*id >= self.next_id || self.contains(*id));
                    if !known {
                        return Err(CoreError::InvalidInput(format!(
                            "cannot remove item {id}: unknown or already removed"
                        )));
                    }
                    if sim_live == 1 {
                        return Err(CoreError::InvalidInput(
                            "cannot remove the last live item".into(),
                        ));
                    }
                    sim_removed.insert(*id);
                    sim_live -= 1;
                }
            }
        }
        Ok(())
    }

    // -- mutation -----------------------------------------------------------

    fn insert_item(&mut self, feature: Vec<f64>) -> Result<usize> {
        let node = self.graph.add_node();
        let id = self.next_id;
        self.next_id += 1;

        // k nearest live items of the new feature: one O(n·d) scan through
        // the shared bounded top-k collector (no full sort). Candidates are
        // ordered by (distance, id); distances are finite and non-negative,
        // so their IEEE bit patterns order like the values.
        let k = self.knn_k;
        let mut nearest: BoundedTopK<(u64, usize)> = BoundedTopK::new(k);
        for u in 0..self.features.len() {
            if !self.live[u] {
                continue;
            }
            let d2 = mogul_sparse::vector::squared_euclidean_unchecked(&feature, &self.features[u]);
            nearest.offer((d2.to_bits(), u));
        }
        let mut scored: Vec<(usize, f64)> = nearest
            .into_sorted_vec()
            .into_iter()
            .map(|(bits, u)| (u, f64::from_bits(bits).sqrt()))
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });

        self.features.push(feature);
        self.live.push(true);
        self.ids.push(id);
        self.node_of_id.push(Some(node));
        self.live_count += 1;

        for &(u, d) in &scored {
            // Same heat-kernel weighting (and pinned bandwidth) as the
            // initial graph construction.
            let weight = (-d * d / (2.0 * self.sigma * self.sigma)).exp().max(1e-300);
            self.graph.add_edge(node, u, weight)?;
            self.dirty.insert(u);
        }
        self.dirty.insert(node);
        Ok(id)
    }

    fn remove_item(&mut self, id: usize) -> Result<()> {
        let node = self.node_of_id[id].take().ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "cannot remove item {id}: unknown or already removed"
            ))
        })?;
        self.live[node] = false;
        self.live_count -= 1;
        let removed = self.graph.disconnect_node(node)?;
        self.dirty.insert(node);
        for (v, _) in removed {
            self.dirty.insert(v);
        }
        Ok(())
    }

    // -- snapshot production ------------------------------------------------

    /// The entry `W(u, v)` of the current ranking system for an edge of
    /// weight `w` between nodes of weighted degrees `cu`, `cv`.
    fn system_entry(alpha: f64, w: f64, cu: f64, cv: f64) -> f64 {
        if cu > 0.0 && cv > 0.0 {
            -alpha * w / (cu * cv).sqrt()
        } else {
            0.0
        }
    }

    /// Sparse row `Δ_u = W_current(u, ·) − W_base(u, ·)` (off-diagonal only;
    /// the unit diagonal never changes).
    fn delta_row(&self, u: usize, degrees: &[f64]) -> Vec<(usize, f64)> {
        let alpha = self.config.params.alpha;
        let cur = self.graph.neighbors(u);
        let base: &[(usize, f64)] = if u < self.base_neighbors.len() {
            &self.base_neighbors[u]
        } else {
            &[]
        };
        let cu_cur = degrees[u];
        let cu_base = self.base_degrees.get(u).copied().unwrap_or(0.0);
        let base_degree = |v: usize| self.base_degrees.get(v).copied().unwrap_or(0.0);

        let mut out = Vec::with_capacity(cur.len() + base.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < cur.len() || b < base.len() {
            let next_cur = cur.get(a).map(|&(v, _)| v);
            let next_base = base.get(b).map(|&(v, _)| v);
            let (v, cur_w, base_w) = match (next_cur, next_base) {
                (Some(cv), Some(bv)) if cv == bv => {
                    let entry = (cv, Some(cur[a].1), Some(base[b].1));
                    a += 1;
                    b += 1;
                    entry
                }
                (Some(cv), Some(bv)) if cv < bv => {
                    let entry = (cv, Some(cur[a].1), None);
                    a += 1;
                    entry
                }
                (Some(_), Some(bv)) => {
                    let entry = (bv, None, Some(base[b].1));
                    b += 1;
                    entry
                }
                (Some(cv), None) => {
                    let entry = (cv, Some(cur[a].1), None);
                    a += 1;
                    entry
                }
                (None, Some(bv)) => {
                    let entry = (bv, None, Some(base[b].1));
                    b += 1;
                    entry
                }
                (None, None) => unreachable!("loop condition"),
            };
            let value_cur = cur_w.map_or(0.0, |w| Self::system_entry(alpha, w, cu_cur, degrees[v]));
            let value_base = base_w.map_or(0.0, |w| {
                Self::system_entry(alpha, w, cu_base, base_degree(v))
            });
            let delta = value_cur - value_base;
            if delta != 0.0 {
                out.push((v, delta));
            }
        }
        out
    }

    /// Publish a corrected snapshot: decompose the accumulated `Δ` into
    /// `U Vᵀ` and precompute the Woodbury correction against the base
    /// factors.
    fn publish_corrected(&mut self) -> Result<()> {
        let total = self.graph.num_nodes();
        let base_len = self.base.index().num_nodes();
        let degrees: Vec<f64> = (0..total).map(|u| self.graph.weighted_degree(u)).collect();
        let support: Vec<usize> = self.dirty.iter().copied().collect();
        let mut in_support = vec![false; total];
        for &u in &support {
            in_support[u] = true;
        }

        // Δ = E_R A_R + B E_Rᵀ → U = [E_R | B], V = [A_Rᵀ | E_R].
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(2 * support.len());
        let mut v_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(2 * support.len());
        let mut settled = Vec::new();
        for &row in &support {
            let delta_row = self.delta_row(row, &degrees);
            if delta_row.is_empty() {
                // The row reverted to its base value (e.g. insert-then-remove
                // churn): it contributes nothing and carries no debt. Since Δ
                // is symmetric, its column is all-zero too, so dropping it
                // from the support loses no entries.
                settled.push(row);
                continue;
            }
            let b_col: Vec<(usize, f64)> = delta_row
                .iter()
                .copied()
                .filter(|&(v, _)| !in_support[v])
                .collect();
            u_cols.push(vec![(row, 1.0)]);
            v_cols.push(delta_row);
            if !b_col.is_empty() {
                u_cols.push(b_col);
                v_cols.push(vec![(row, 1.0)]);
            }
        }
        for row in settled {
            self.dirty.remove(&row);
        }

        let base = Arc::clone(&self.base);
        let mut solve_ws = SearchWorkspace::with_capacity(base_len);
        let mut base_part = Vec::with_capacity(base_len);
        let correction = WoodburyCorrection::new(total, &u_cols, v_cols, |rhs, out| {
            base.index().solve_ranking_system_in(
                &mut solve_ws,
                &rhs[..base_len],
                &mut base_part,
            )?;
            out.clear();
            out.extend_from_slice(&base_part);
            out.extend_from_slice(&rhs[base_len..]);
            Ok(())
        })?;

        self.epoch += 1;
        self.snapshot = Arc::new(IndexSnapshot {
            epoch: self.epoch,
            oos: Arc::clone(&self.base),
            state: SnapshotState::Corrected {
                correction,
                features: self.features.clone(),
                live: self.live.clone(),
            },
            ids: self.ids.clone(),
            node_of_id: self.node_of_id.clone(),
            live_count: self.live_count,
            dim: self.dim,
        });
        Ok(())
    }

    /// Full refactorization of the current graph: compact tombstones,
    /// recluster, reorder, refactorize, and publish a debt-free snapshot.
    /// Stable ids survive; dense node indices are reassigned.
    fn rebuild_epoch(&mut self) -> Result<()> {
        let total = self.graph.num_nodes();
        let mut new_of_old = vec![usize::MAX; total];
        let mut new_features = Vec::with_capacity(self.live_count);
        let mut new_ids = Vec::with_capacity(self.live_count);
        for old in 0..total {
            if self.live[old] {
                new_of_old[old] = new_features.len();
                new_features.push(self.features[old].clone());
                new_ids.push(self.ids[old]);
            }
        }
        let m = new_features.len();
        let mut new_graph = Graph::empty(m);
        for old in 0..total {
            if !self.live[old] {
                continue;
            }
            for &(v, w) in self.graph.neighbors(old) {
                debug_assert!(self.live[v], "tombstones are always disconnected");
                if v > old {
                    new_graph.add_edge(new_of_old[old], new_of_old[v], w)?;
                }
            }
        }

        let index = MogulIndex::build(&new_graph, self.config)?;
        let oos = Arc::new(OutOfSampleIndex::new(
            index,
            new_features.clone(),
            self.oos_config,
        )?);

        self.base_neighbors = (0..m).map(|u| new_graph.neighbors(u).to_vec()).collect();
        self.base_degrees = (0..m).map(|u| new_graph.weighted_degree(u)).collect();
        self.graph = new_graph;
        self.features = new_features;
        self.live = vec![true; m];
        for slot in self.node_of_id.iter_mut() {
            *slot = None;
        }
        for (new, &id) in new_ids.iter().enumerate() {
            self.node_of_id[id] = Some(new);
        }
        self.ids = new_ids;
        self.base = Arc::clone(&oos);
        self.dirty.clear();

        self.epoch += 1;
        self.snapshot = Arc::new(IndexSnapshot {
            epoch: self.epoch,
            oos,
            state: SnapshotState::Clean,
            ids: self.ids.clone(),
            node_of_id: self.node_of_id.clone(),
            live_count: self.live_count,
            dim: self.dim,
        });
        Ok(())
    }
}

/// Invert a dense-node → stable-id map, validating that every id is below
/// the `next_id` counter and assigned to exactly one node (shared by the
/// persistence loaders).
fn node_map_from_ids(ids: &[usize], next_id: usize) -> Result<Vec<Option<usize>>> {
    let mut node_of_id: Vec<Option<usize>> = vec![None; next_id];
    for (node, &id) in ids.iter().enumerate() {
        let slot = node_of_id.get_mut(id).ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "persisted stable id {id} is not below the next-id counter {next_id}"
            ))
        })?;
        if slot.replace(node).is_some() {
            return Err(CoreError::InvalidInput(format!(
                "persisted stable id {id} is assigned to two nodes"
            )));
        }
    }
    Ok(node_of_id)
}

/// Reassemble a read-only clean snapshot from persisted parts — the
/// serving-only loader of `crate::persist::load_serving`, which skips the
/// writer-side state (graph, adjacency tables, feature clone) a pure
/// [`IndexSnapshot`] never touches.
pub(crate) fn snapshot_from_persist_parts(
    oos: Arc<OutOfSampleIndex>,
    ids: Vec<usize>,
    next_id: usize,
    epoch: u64,
) -> Result<Arc<IndexSnapshot>> {
    let n = oos.index().num_nodes();
    if ids.len() != n {
        return Err(CoreError::InvalidInput(format!(
            "persisted id map covers {} nodes but the index covers {n}",
            ids.len()
        )));
    }
    let node_of_id = node_map_from_ids(&ids, next_id)?;
    let dim = oos.feature_dim();
    Ok(Arc::new(IndexSnapshot {
        epoch,
        oos,
        state: SnapshotState::Clean,
        ids,
        node_of_id,
        live_count: n,
        dim,
    }))
}

/// Borrowed clean-epoch state handed to the persistence writer
/// (see [`UpdatableIndex::persist_view`]).
#[derive(Debug)]
pub(crate) struct PersistView<'a> {
    pub config: MogulConfig,
    pub knn_k: usize,
    pub oos_config: OutOfSampleConfig,
    pub policy: RebuildPolicy,
    pub sigma: f64,
    pub graph: &'a Graph,
    pub base: &'a Arc<OutOfSampleIndex>,
    pub ids: &'a [usize],
    pub next_id: usize,
    pub epoch: u64,
}

// ---------------------------------------------------------------------------
// Snapshots (reader side)
// ---------------------------------------------------------------------------

/// How an [`IndexSnapshot`] answers queries.
#[derive(Debug)]
enum SnapshotState {
    /// The snapshot *is* the factorized index: no tombstones, no appended
    /// items, queries run the ordinary pruned Algorithm 2 paths.
    Clean,
    /// Items changed since the last rebuild: queries solve against the base
    /// factors plus a Woodbury correction (full substitution, no pruning),
    /// filtered through the live set.
    Corrected {
        correction: WoodburyCorrection,
        /// Current features in dense node space (phase 1 of out-of-sample
        /// queries scans these).
        features: Vec<Vec<f64>>,
        /// Live flags in dense node space.
        live: Vec<bool>,
    },
}

/// Reusable scratch for the snapshot query paths (one per serving worker).
///
/// Wraps an [`OosWorkspace`] (whose embedded search scratch also drives the
/// base solves) plus the correction buffers. Carries no snapshot state: any
/// workspace works with any snapshot and results are identical either way.
#[derive(Debug, Clone, Default)]
pub struct SnapshotWorkspace {
    /// Scratch of the clean (pruned Algorithm 2) paths.
    oos: OosWorkspace,
    /// Scratch of the batched (panel) query paths.
    batch: BatchWorkspace,
    /// Densified right-hand side of the corrected solve (a panel of up to
    /// [`PANEL_WIDTH`] columns on the batched path).
    rhs: Vec<f64>,
    /// Corrected score vector.
    scores: Vec<f64>,
    /// Output panel of the batched corrected base solve.
    solved: Vec<f64>,
    /// Woodbury scratch.
    corr: CorrectionWorkspace,
    /// Phase-1 `(node, distance)` pairs of corrected out-of-sample queries.
    scored: Vec<(usize, f64)>,
    /// Phase-1 weighted query vector.
    weights: Vec<(usize, f64)>,
}

impl SnapshotWorkspace {
    /// An empty workspace; buffers grow to the index size on first use.
    pub fn new() -> Self {
        SnapshotWorkspace::default()
    }

    /// The embedded out-of-sample / search scratch.
    pub fn oos_mut(&mut self) -> &mut OosWorkspace {
        &mut self.oos
    }

    /// The embedded batched (panel) scratch.
    pub fn batch_mut(&mut self) -> &mut BatchWorkspace {
        &mut self.batch
    }
}

/// An immutable, epoch-stamped view of the collection: the unit the serving
/// layer swaps atomically.
///
/// A snapshot is either **clean** (fresh factorization — queries take the
/// ordinary pruned paths at full speed) or **corrected** (base factorization
/// plus a Woodbury update — queries pay `O(n · rank)` extra). Results always
/// reference items by stable id.
#[derive(Debug)]
pub struct IndexSnapshot {
    epoch: u64,
    oos: Arc<OutOfSampleIndex>,
    state: SnapshotState,
    /// Dense node → stable id.
    ids: Vec<usize>,
    /// Stable id → dense node.
    node_of_id: Vec<Option<usize>>,
    live_count: usize,
    dim: usize,
}

impl IndexSnapshot {
    /// Wrap a plain immutable [`OutOfSampleIndex`] as epoch-0 clean snapshot
    /// with identity ids — how `mogul-serve` adapts indexes that never
    /// update.
    pub fn wrap(oos: Arc<OutOfSampleIndex>) -> Self {
        let n = oos.index().num_nodes();
        let dim = oos.feature_dim();
        IndexSnapshot {
            epoch: 0,
            oos,
            state: SnapshotState::Clean,
            ids: (0..n).collect(),
            node_of_id: (0..n).map(Some).collect(),
            live_count: n,
            dim,
        }
    }

    /// Epoch counter (0 for the initial build, +1 per published update).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live (queryable) items.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` when no live items remain (cannot happen through the public
    /// API; kept for completeness).
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// `true` when the stable id refers to a live item in this snapshot.
    pub fn contains(&self, id: usize) -> bool {
        self.node_of_id.get(id).copied().flatten().is_some()
    }

    /// Stable ids of every live item (ascending).
    pub fn item_ids(&self) -> Vec<usize> {
        let mut ids = self.ids.clone();
        match &self.state {
            SnapshotState::Clean => {}
            SnapshotState::Corrected { live, .. } => {
                ids = ids
                    .iter()
                    .zip(live.iter())
                    .filter(|&(_, &l)| l)
                    .map(|(&id, _)| id)
                    .collect();
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Rank of the active Woodbury correction (0 for a clean snapshot).
    pub fn correction_rank(&self) -> usize {
        match &self.state {
            SnapshotState::Clean => 0,
            SnapshotState::Corrected { correction, .. } => correction.rank(),
        }
    }

    /// `true` when this snapshot carries no correction (fresh
    /// factorization).
    pub fn is_clean(&self) -> bool {
        matches!(self.state, SnapshotState::Clean)
    }

    /// The factorized base index this snapshot answers from.
    pub fn base(&self) -> &OutOfSampleIndex {
        &self.oos
    }

    /// Dimensionality of the indexed feature vectors.
    pub fn feature_dim(&self) -> usize {
        self.dim
    }

    /// Top-k for a live item, by stable id (the item itself is excluded).
    pub fn query_by_id(&self, id: usize, k: usize) -> Result<TopKResult> {
        self.query_by_id_in(&mut SnapshotWorkspace::new(), id, k)
    }

    /// [`IndexSnapshot::query_by_id`] with caller-owned scratch.
    pub fn query_by_id_in(
        &self,
        ws: &mut SnapshotWorkspace,
        id: usize,
        k: usize,
    ) -> Result<TopKResult> {
        check_k(k)?;
        let node = self.node_of_id.get(id).copied().flatten().ok_or_else(|| {
            CoreError::InvalidInput(format!(
                "item {id} is not in this snapshot (never inserted, or removed)"
            ))
        })?;
        match &self.state {
            SnapshotState::Clean => {
                let top = self.oos.index().search_in(ws.oos.search_mut(), node, k)?;
                Ok(self.remap_top_k(&top))
            }
            SnapshotState::Corrected {
                correction, live, ..
            } => {
                let SnapshotWorkspace {
                    oos,
                    rhs,
                    scores,
                    corr,
                    ..
                } = ws;
                self.corrected_scores(
                    oos.search_mut(),
                    rhs,
                    scores,
                    corr,
                    correction,
                    &[(node, 1.0)],
                )?;
                Ok(self.select_top_k(scores, live, k, Some(node)))
            }
        }
    }

    /// Batched [`IndexSnapshot::query_by_id`]: one call answers many
    /// in-database queries, panel-blocked through the batched Algorithm 2
    /// engine (clean snapshots) or the multi-RHS `L D Lᵀ` solve plus
    /// per-lane Woodbury corrections (corrected snapshots). Results are
    /// bit-identical to the scalar path per query.
    ///
    /// One unknown id fails the whole call (callers needing per-request
    /// error isolation, like `mogul-serve`, fall back to scalar queries for
    /// the affected batch).
    pub fn query_batch_by_id_in(
        &self,
        ws: &mut SnapshotWorkspace,
        ids: &[usize],
        k: usize,
    ) -> Result<Vec<TopKResult>> {
        check_k(k)?;
        let mut nodes = Vec::with_capacity(ids.len());
        for &id in ids {
            nodes.push(self.node_of_id.get(id).copied().flatten().ok_or_else(|| {
                CoreError::InvalidInput(format!(
                    "item {id} is not in this snapshot (never inserted, or removed)"
                ))
            })?);
        }
        match &self.state {
            SnapshotState::Clean => {
                let results = self.oos.index().search_batch_in(
                    &mut ws.batch,
                    &nodes,
                    k,
                    SearchMode::Pruned,
                )?;
                Ok(results
                    .into_iter()
                    .map(|(top, _)| self.remap_top_k(&top))
                    .collect())
            }
            SnapshotState::Corrected {
                correction, live, ..
            } => {
                let total = correction.dim();
                let base_len = self.oos.index().num_nodes();
                let scale = self.oos.index().params().query_scale();
                let mut out = Vec::with_capacity(ids.len());
                let SnapshotWorkspace {
                    batch,
                    rhs,
                    scores,
                    solved,
                    corr,
                    ..
                } = ws;
                for chunk in nodes.chunks(PANEL_WIDTH) {
                    let width = chunk.len();
                    // Panel of `(1 − α)`-scaled unit queries in dense node
                    // space; rows `0..base_len` form the contiguous prefix
                    // handed to the factorized base solve.
                    rhs.clear();
                    rhs.resize(total * width, 0.0);
                    for (lane, &node) in chunk.iter().enumerate() {
                        rhs[node * width + lane] += scale;
                    }
                    self.oos.index().solve_ranking_system_batch_in(
                        batch,
                        &rhs[..base_len * width],
                        width,
                        solved,
                    )?;
                    for (lane, &node) in chunk.iter().enumerate() {
                        scores.clear();
                        scores.extend((0..base_len).map(|i| solved[i * width + lane]));
                        scores.extend((base_len..total).map(|i| rhs[i * width + lane]));
                        correction.apply_in(corr, scores)?;
                        out.push(self.select_top_k(scores, live, k, Some(node)));
                    }
                }
                Ok(out)
            }
        }
    }

    /// Top-k for an arbitrary feature vector (out-of-sample query).
    ///
    /// On a corrected snapshot, phase 1 (neighbour collection) is an exact
    /// nearest-neighbour scan over the live features instead of the
    /// centroid-probe of [`OutOfSampleIndex`]: inserted items are not part
    /// of the base clustering, so the centroids cannot see them.
    pub fn query_by_feature(&self, feature: &[f64], k: usize) -> Result<OutOfSampleResult> {
        self.query_by_feature_in(&mut SnapshotWorkspace::new(), feature, k)
    }

    /// [`IndexSnapshot::query_by_feature`] with caller-owned scratch.
    pub fn query_by_feature_in(
        &self,
        ws: &mut SnapshotWorkspace,
        feature: &[f64],
        k: usize,
    ) -> Result<OutOfSampleResult> {
        match &self.state {
            SnapshotState::Clean => {
                let mut result = self.oos.query_in(&mut ws.oos, feature, k)?;
                result.top_k = self.remap_top_k(&result.top_k);
                for node in result.neighbors.iter_mut() {
                    *node = self.ids[*node];
                }
                Ok(result)
            }
            SnapshotState::Corrected {
                correction,
                features,
                live,
            } => {
                check_k(k)?;
                if feature.len() != self.dim {
                    return Err(CoreError::DimensionMismatch {
                        op: "out-of-sample query feature",
                        left: (1, self.dim),
                        right: (1, feature.len()),
                    });
                }
                if !feature.iter().all(|v| v.is_finite()) {
                    return Err(CoreError::InvalidInput(
                        "query feature contains non-finite values".into(),
                    ));
                }

                // Phase 1: exact nearest neighbours among live items, then
                // normalized heat-kernel weights (mirrors
                // `OutOfSampleIndex::query_in`). The shared bounded top-k
                // collector keeps the scan at O(n log num_neighbors) instead
                // of sorting all n candidates; finite non-negative distances
                // order by their IEEE bit patterns, so the key is
                // `(bits, node)`.
                let nn_start = Instant::now();
                let num_neighbors = self.oos.config().num_neighbors;
                let mut nearest: BoundedTopK<(u64, usize)> = BoundedTopK::new(num_neighbors);
                for u in 0..features.len() {
                    if !live[u] {
                        continue;
                    }
                    let d2 =
                        mogul_sparse::vector::squared_euclidean_unchecked(feature, &features[u]);
                    nearest.offer((d2.to_bits(), u));
                }
                ws.scored.clear();
                ws.scored.extend(
                    nearest
                        .into_sorted_vec()
                        .into_iter()
                        .map(|(bits, u)| (u, f64::from_bits(bits).sqrt())),
                );
                let sigma = {
                    let mean: f64 = ws.scored.iter().map(|&(_, d)| d).sum::<f64>()
                        / ws.scored.len().max(1) as f64;
                    mean.max(1e-12)
                };
                ws.weights.clear();
                ws.weights.extend(
                    ws.scored
                        .iter()
                        .map(|&(node, d)| (node, (-d * d / (2.0 * sigma * sigma)).exp())),
                );
                let total: f64 = ws.weights.iter().map(|&(_, w)| w).sum();
                if total > 1e-300 {
                    for w in ws.weights.iter_mut() {
                        w.1 /= total;
                    }
                } else {
                    let uniform = 1.0 / ws.weights.len().max(1) as f64;
                    for w in ws.weights.iter_mut() {
                        w.1 = uniform;
                    }
                }
                let nearest_neighbor_secs = nn_start.elapsed().as_secs_f64();

                // Phase 2: corrected solve over the weighted query vector.
                let search_start = Instant::now();
                let SnapshotWorkspace {
                    oos,
                    rhs,
                    scores,
                    corr,
                    scored,
                    weights,
                    ..
                } = ws;
                self.corrected_scores(oos.search_mut(), rhs, scores, corr, correction, weights)?;
                let top_k = self.select_top_k(scores, live, k, None);
                let top_k_secs = search_start.elapsed().as_secs_f64();

                Ok(OutOfSampleResult {
                    top_k,
                    neighbors: scored.iter().map(|&(node, _)| self.ids[node]).collect(),
                    nearest_neighbor_secs,
                    top_k_secs,
                    stats: SearchStats {
                        clusters_considered: 0,
                        clusters_pruned: 0,
                        nodes_scored: scores.len(),
                        bound_evaluations: 0,
                    },
                })
            }
        }
    }

    /// Batched [`IndexSnapshot::query_by_feature`]: on a clean snapshot the
    /// batch runs through the panel-blocked
    /// [`OutOfSampleIndex::query_batch_in`]; on a corrected snapshot each
    /// feature takes the scalar corrected path (phase 1 — the exact
    /// nearest-neighbour scan — dominates there, and it is per-query work
    /// either way). Results are bit-identical to the scalar path per query.
    pub fn query_batch_by_feature_in(
        &self,
        ws: &mut SnapshotWorkspace,
        features: &[&[f64]],
        k: usize,
    ) -> Result<Vec<OutOfSampleResult>> {
        match &self.state {
            SnapshotState::Clean => {
                let mut results = self.oos.query_batch_in(&mut ws.batch, features, k)?;
                for result in results.iter_mut() {
                    result.top_k = self.remap_top_k(&result.top_k);
                    for node in result.neighbors.iter_mut() {
                        *node = self.ids[*node];
                    }
                }
                Ok(results)
            }
            SnapshotState::Corrected { .. } => features
                .iter()
                .map(|feature| self.query_by_feature_in(ws, feature, k))
                .collect(),
        }
    }

    // -- internals ----------------------------------------------------------

    /// `(1 − α)`-scaled corrected score vector for a sparse weighted query
    /// (dense node space): base solve on the factorized block, identity on
    /// the appended block, then the Woodbury correction.
    fn corrected_scores(
        &self,
        solve_ws: &mut SearchWorkspace,
        rhs: &mut Vec<f64>,
        scores: &mut Vec<f64>,
        corr: &mut CorrectionWorkspace,
        correction: &WoodburyCorrection,
        query_weights: &[(usize, f64)],
    ) -> Result<()> {
        let total = correction.dim();
        let base_len = self.oos.index().num_nodes();
        let scale = self.oos.index().params().query_scale();
        rhs.clear();
        rhs.resize(total, 0.0);
        for &(node, weight) in query_weights {
            rhs[node] += weight * scale;
        }
        self.oos
            .index()
            .solve_ranking_system_in(solve_ws, &rhs[..base_len], scores)?;
        scores.extend_from_slice(&rhs[base_len..]);
        correction.apply_in(corr, scores)?;
        Ok(())
    }

    /// Top-k over a dense score vector, filtered to live nodes, excluding
    /// the query node, reported by stable id. Mirrors Algorithm 2's
    /// threshold semantics: only non-negative scores are eligible.
    fn select_top_k(
        &self,
        scores: &[f64],
        live: &[bool],
        k: usize,
        exclude: Option<usize>,
    ) -> TopKResult {
        // The shared bounded top-k collector — O(n log k), not a full sort.
        // Keys are `(Reverse(score_bits), stable_id)` so "smaller key" means
        // "better" (higher score, ties to the lower id); eligible scores are
        // finite and ≥ 0, so their IEEE bit patterns order like the values
        // once −0.0 is normalized.
        use std::cmp::Reverse;
        let mut top: BoundedTopK<(Reverse<u64>, usize)> = BoundedTopK::new(k);
        for (node, &score) in scores.iter().enumerate() {
            if !live[node] || Some(node) == exclude || !score.is_finite() || score < 0.0 {
                continue;
            }
            let score = if score == 0.0 { 0.0 } else { score };
            top.offer((Reverse(score.to_bits()), self.ids[node]));
        }
        TopKResult::new(
            top.into_sorted_vec()
                .into_iter()
                .map(|(Reverse(bits), id)| RankedNode {
                    node: id,
                    score: f64::from_bits(bits),
                })
                .collect(),
        )
    }

    /// Translate a dense-node top-k into stable ids.
    fn remap_top_k(&self, top: &TopKResult) -> TopKResult {
        TopKResult::new(
            top.items()
                .iter()
                .map(|item| RankedNode {
                    node: self.ids[item.node],
                    score: item.score,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters of 2-D points.
    fn two_cluster_features() -> Vec<Vec<f64>> {
        let mut features = Vec::new();
        for i in 0..8 {
            features.push(vec![0.1 * i as f64, 0.05 * (i % 3) as f64]);
        }
        for i in 0..8 {
            features.push(vec![10.0 + 0.1 * i as f64, 5.0 + 0.05 * (i % 3) as f64]);
        }
        features
    }

    fn builder() -> IndexBuilder {
        IndexBuilder::new()
            .knn_k(3)
            .exact_ranking()
            .rebuild_policy(RebuildPolicy::never())
    }

    #[test]
    fn insert_is_visible_and_old_snapshots_are_not_disturbed() {
        let mut index = builder().build(two_cluster_features()).unwrap();
        assert_eq!(index.epoch(), 0);
        assert_eq!(index.len(), 16);
        let before = index.snapshot();

        // Insert an item in the middle of cluster 0.
        let mut delta = IndexDelta::new();
        delta.insert(vec![0.35, 0.05]);
        let report = index.apply(&delta).unwrap();
        assert_eq!(report.epoch, 1);
        assert!(!report.rebuilt);
        assert_eq!(report.inserted, vec![16]);
        assert!(report.debt.support > 0);
        assert!(index.contains(16));

        let after = index.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.len(), 17);
        assert!(!after.is_clean());
        assert!(after.correction_rank() > 0);

        // The new item ranks among the neighbours of a cluster-0 query...
        let top = after.query_by_id(3, 5).unwrap();
        assert!(top.contains(16), "inserted item missing from {top:?}");
        // ... and the new item's own query stays inside cluster 0.
        let own = after.query_by_id(16, 4).unwrap();
        for item in own.items() {
            assert!(item.node < 8, "unexpected neighbour {item:?}");
        }

        // The pre-insert snapshot is immutable: same epoch, no new item.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.len(), 16);
        assert!(!before.query_by_id(3, 5).unwrap().contains(16));
        assert!(before.query_by_id(16, 3).is_err());
    }

    #[test]
    fn corrected_queries_match_a_full_refactorization_exactly() {
        // MogulE mode: the Woodbury-corrected scores must equal the scores
        // of a from-scratch refactorization of the same graph.
        let mut incremental = builder().build(two_cluster_features()).unwrap();
        let mut delta = IndexDelta::new();
        delta
            .insert(vec![0.22, 0.02])
            .insert(vec![10.4, 5.08])
            .remove(5)
            .remove(12);
        incremental.apply(&delta).unwrap();
        let corrected = incremental.snapshot();
        assert!(!corrected.is_clean());

        // Same collection state, refactorized.
        incremental.rebuild().unwrap();
        let rebuilt = incremental.snapshot();
        assert!(rebuilt.is_clean());
        assert_eq!(corrected.item_ids(), rebuilt.item_ids());

        for &id in corrected.item_ids().iter() {
            let a = corrected.query_by_id(id, 3).unwrap();
            let b = rebuilt.query_by_id(id, 3).unwrap();
            assert_eq!(a.nodes(), b.nodes(), "query {id}");
            for (x, y) in a.items().iter().zip(b.items().iter()) {
                assert!(
                    (x.score - y.score).abs() < 1e-9,
                    "query {id}: {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn removals_disappear_from_results() {
        let mut index = builder().build(two_cluster_features()).unwrap();
        let mut delta = IndexDelta::new();
        delta.remove(4);
        let report = index.apply(&delta).unwrap();
        assert_eq!(report.removed, 1);
        assert!(!index.contains(4));
        assert_eq!(index.len(), 15);

        let snapshot = index.snapshot();
        assert!(snapshot.query_by_id(4, 3).is_err());
        for &id in &[0usize, 3, 7] {
            assert!(!snapshot.query_by_id(id, 6).unwrap().contains(4));
        }
        // Remove twice → error, state unchanged.
        let mut again = IndexDelta::new();
        again.remove(4);
        assert!(index.apply(&again).is_err());
        assert_eq!(index.epoch(), 1);
    }

    #[test]
    fn debt_policy_triggers_automatic_rebuild() {
        let mut index = IndexBuilder::new()
            .knn_k(3)
            .rebuild_policy(RebuildPolicy {
                max_support: 2,
                max_support_fraction: 1.0,
            })
            .build(two_cluster_features())
            .unwrap();
        let mut delta = IndexDelta::new();
        delta.insert(vec![0.3, 0.01]); // dirties the item + 3 neighbours
        let report = index.apply(&delta).unwrap();
        assert!(report.rebuilt);
        assert_eq!(report.debt.support, 0);
        let snapshot = index.snapshot();
        assert!(snapshot.is_clean());
        assert_eq!(snapshot.correction_rank(), 0);
        // The inserted item survived the rebuild under its stable id.
        assert!(snapshot.contains(16));
        assert!(snapshot.query_by_id(16, 3).is_ok());
        assert!(!index.needs_rebuild());
    }

    #[test]
    fn out_of_sample_queries_see_inserted_items() {
        let mut index = builder().build(two_cluster_features()).unwrap();
        let probe = vec![0.33, 0.04];
        let mut delta = IndexDelta::new();
        delta.insert(probe.clone());
        let id = index.apply(&delta).unwrap().inserted[0];

        let snapshot = index.snapshot();
        let result = snapshot.query_by_feature(&probe, 4).unwrap();
        assert!(
            result.top_k.contains(id),
            "inserted item missing from {:?}",
            result.top_k
        );
        assert!(result.neighbors.contains(&id));
        assert!(result.total_secs() >= 0.0);

        // Workspace reuse matches fresh scratch on both query kinds.
        let mut ws = SnapshotWorkspace::new();
        let fresh = snapshot.query_by_feature(&probe, 4).unwrap();
        let reused = snapshot.query_by_feature_in(&mut ws, &probe, 4).unwrap();
        assert_eq!(fresh.top_k, reused.top_k);
        assert_eq!(fresh.neighbors, reused.neighbors);
        assert_eq!(
            snapshot.query_by_id(0, 5).unwrap(),
            snapshot.query_by_id_in(&mut ws, 0, 5).unwrap()
        );
    }

    #[test]
    fn validation_rejects_bad_deltas_atomically() {
        let mut index = builder().build(two_cluster_features()).unwrap();
        // Wrong dimension.
        let mut bad_dim = IndexDelta::new();
        bad_dim.insert(vec![1.0]);
        assert!(index.apply(&bad_dim).is_err());
        // Non-finite feature.
        let mut bad_value = IndexDelta::new();
        bad_value.insert(vec![f64::NAN, 0.0]);
        assert!(index.apply(&bad_value).is_err());
        // Unknown id.
        let mut bad_id = IndexDelta::new();
        bad_id.remove(99);
        assert!(index.apply(&bad_id).is_err());
        // A good insert staged before a bad removal must not leak through.
        let mut mixed = IndexDelta::new();
        mixed.insert(vec![0.5, 0.0]).remove(99);
        assert!(index.apply(&mixed).is_err());
        assert_eq!(index.len(), 16);
        assert_eq!(index.epoch(), 0);
        assert!(index.snapshot().is_clean());
        // Empty delta: no-op, same epoch.
        let report = index.apply(&IndexDelta::new()).unwrap();
        assert_eq!(report.epoch, 0);

        // Removing everything is rejected at the last item.
        let mut drain = IndexDelta::new();
        for id in 0..16 {
            drain.remove(id);
        }
        assert!(index.apply(&drain).is_err());
        assert_eq!(index.len(), 16);

        // In-delta insert-then-remove of the same item is legal — and leaves
        // zero rebuild debt: every touched row reverts to its base value, so
        // the support settles back to empty instead of counting phantom debt.
        let mut churn = IndexDelta::new();
        churn.insert(vec![0.5, 0.0]);
        churn.remove(16);
        let report = index.apply(&churn).unwrap();
        assert_eq!(report.inserted, vec![16]);
        assert_eq!(report.removed, 1);
        assert_eq!(index.len(), 16);
        assert!(!index.contains(16));
        assert_eq!(report.debt.support, 0);
        let snapshot = index.snapshot();
        // The tombstoned slot keeps the snapshot on the corrected path, but
        // with a rank-0 correction, and queries still exclude the tombstone.
        assert_eq!(snapshot.correction_rank(), 0);
        assert!(snapshot.query_by_id(16, 3).is_err());
        assert!(!snapshot.query_by_id(0, 10).unwrap().contains(16));
    }

    #[test]
    fn wrapped_snapshot_matches_the_underlying_index() {
        let features = two_cluster_features();
        let engine = crate::RetrievalEngine::builder()
            .knn_k(3)
            .build(features.clone())
            .unwrap();
        let oos = Arc::new(engine.into_out_of_sample());
        let snapshot = IndexSnapshot::wrap(Arc::clone(&oos));
        assert_eq!(snapshot.epoch(), 0);
        assert!(snapshot.is_clean());
        assert_eq!(snapshot.len(), features.len());
        assert_eq!(snapshot.feature_dim(), 2);
        // Identity ids: snapshot answers equal the raw index answers.
        assert_eq!(
            snapshot.query_by_id(2, 4).unwrap(),
            oos.index().search(2, 4).unwrap()
        );
        let a = snapshot.query_by_feature(&features[5], 4).unwrap();
        let b = oos.query(&features[5], 4).unwrap();
        assert_eq!(a.top_k, b.top_k);
        assert_eq!(a.neighbors, b.neighbors);
    }
}
