//! Batched-vs-scalar equivalence: the panel engine must reproduce the
//! scalar Algorithm 2 paths per lane.
//!
//! In exact (MogulE, complete factorization) mode the comparison is
//! **bit-identical** — `TopKResult`s are compared with `==`, which compares
//! `f64` scores exactly — and the per-lane work counters (`SearchStats`,
//! including pruning decisions) must match too. With the incomplete
//! factorization the same bit-level agreement is expected by construction
//! (each lane performs the same floating-point operations in the same
//! order); the suite asserts it, which is stricter than the documented
//! 1e-9 tolerance contract of `docs/PERFORMANCE.md`.

use mogul_core::{
    BatchWorkspace, MogulConfig, MogulIndex, OosWorkspace, OutOfSampleConfig, OutOfSampleIndex,
    SearchMode, SearchWorkspace, PANEL_WIDTH,
};
use mogul_data::coil::{coil_like, CoilLikeConfig};
use mogul_graph::knn::{knn_graph, KnnConfig};

fn build_indices() -> (mogul_data::Dataset, MogulIndex, MogulIndex) {
    let data = coil_like(&CoilLikeConfig {
        num_objects: 8,
        poses_per_object: 18,
        dim: 12,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let approx = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
    let exact = MogulIndex::build(&graph, MogulConfig::exact()).unwrap();
    (data, approx, exact)
}

/// Batch sizes covering singletons, one full panel, ragged final panels and
/// several panels.
fn batch_sizes() -> Vec<usize> {
    vec![
        1,
        2,
        PANEL_WIDTH - 1,
        PANEL_WIDTH,
        PANEL_WIDTH + 3,
        3 * PANEL_WIDTH + 5,
    ]
}

#[test]
fn in_database_batches_match_scalar_bit_for_bit() {
    let (_, approx, exact) = build_indices();
    let mut batch_ws = BatchWorkspace::new();
    let mut scalar_ws = SearchWorkspace::new();
    for (label, index) in [("incomplete", &approx), ("exact", &exact)] {
        let n = index.num_nodes();
        for size in batch_sizes() {
            // Deterministic spread of queries, including duplicates.
            let queries: Vec<usize> = (0..size).map(|i| (i * 37 + size) % n).collect();
            for mode in [
                SearchMode::Pruned,
                SearchMode::NoPruning,
                SearchMode::FullSubstitution,
            ] {
                for k in [1usize, 5, 10] {
                    let batched = index
                        .search_batch_in(&mut batch_ws, &queries, k, mode)
                        .unwrap();
                    assert_eq!(batched.len(), queries.len());
                    for (lane, &query) in queries.iter().enumerate() {
                        let (scalar, scalar_stats) = index
                            .search_with_stats_in(&mut scalar_ws, query, k, mode)
                            .unwrap();
                        assert_eq!(
                            batched[lane].0, scalar,
                            "{label}: size {size} lane {lane} query {query} k {k} mode {mode:?}"
                        );
                        assert_eq!(
                            batched[lane].1, scalar_stats,
                            "{label}: stats diverge for size {size} lane {lane} mode {mode:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn panels_with_pruned_out_columns_are_exercised_and_match() {
    // On a clustered dataset the pruned mode must actually prune for some
    // lanes (otherwise the masked shrinking-width path is never covered),
    // and the pruning decisions must match the scalar search per lane.
    let (_, approx, _) = build_indices();
    let n = approx.num_nodes();
    let queries: Vec<usize> = (0..PANEL_WIDTH).map(|i| (i * 19) % n).collect();
    let batched = approx
        .search_batch(&queries, 3, SearchMode::Pruned)
        .unwrap();
    let pruned_lanes = batched
        .iter()
        .filter(|(_, stats)| stats.clusters_pruned > 0)
        .count();
    assert!(
        pruned_lanes > 0,
        "expected at least one lane to prune clusters: {:?}",
        batched
            .iter()
            .map(|(_, s)| s.clusters_pruned)
            .collect::<Vec<_>>()
    );
    // Heterogeneous pruning across lanes (not all-or-nothing) is the
    // interesting masked case; assert per-lane agreement either way.
    for (lane, &query) in queries.iter().enumerate() {
        let (scalar, stats) = approx
            .search_with_stats(query, 3, SearchMode::Pruned)
            .unwrap();
        assert_eq!(batched[lane].0, scalar);
        assert_eq!(batched[lane].1, stats);
    }
}

#[test]
fn all_scores_batches_match_scalar_bit_for_bit() {
    let (_, approx, exact) = build_indices();
    let mut batch_ws = BatchWorkspace::new();
    let mut scalar_ws = SearchWorkspace::new();
    for index in [&approx, &exact] {
        let n = index.num_nodes();
        let queries: Vec<usize> = (0..(PANEL_WIDTH + 3)).map(|i| (i * 29 + 1) % n).collect();
        let batched = index.all_scores_batch_in(&mut batch_ws, &queries).unwrap();
        for (lane, &query) in queries.iter().enumerate() {
            let scalar = index.all_scores_in(&mut scalar_ws, query).unwrap();
            assert_eq!(batched[lane], scalar, "lane {lane} query {query}");
        }
    }
}

#[test]
fn weighted_batches_match_scalar_bit_for_bit() {
    let (_, approx, exact) = build_indices();
    let mut batch_ws = BatchWorkspace::new();
    let mut scalar_ws = SearchWorkspace::new();
    for index in [&approx, &exact] {
        let n = index.num_nodes();
        // Multi-node weighted lanes touching one or several clusters.
        let lanes: Vec<Vec<(usize, f64)>> = (0..(PANEL_WIDTH + 2))
            .map(|i| {
                vec![
                    ((i * 13) % n, 0.6),
                    ((i * 31 + 7) % n, 0.3),
                    ((i * 53 + 11) % n, 0.1),
                ]
            })
            .collect();
        let lane_refs: Vec<&[(usize, f64)]> = lanes.iter().map(|l| l.as_slice()).collect();
        let batched = index
            .search_weighted_batch_in(&mut batch_ws, &lane_refs, 6, SearchMode::Pruned)
            .unwrap();
        for (lane, weights) in lanes.iter().enumerate() {
            let (scalar, stats) = index
                .search_weighted_in(&mut scalar_ws, weights, 6, SearchMode::Pruned)
                .unwrap();
            assert_eq!(batched[lane].0, scalar, "lane {lane}");
            assert_eq!(batched[lane].1, stats, "lane {lane}");
        }
    }
}

#[test]
fn out_of_sample_batches_match_scalar() {
    let data = coil_like(&CoilLikeConfig {
        num_objects: 7,
        poses_per_object: 16,
        dim: 12,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap();
    let (db, held_out) = data.split_out_queries(7, 11).unwrap();
    let graph = knn_graph(db.features(), KnnConfig::with_k(5)).unwrap();
    for config in [MogulConfig::default(), MogulConfig::exact()] {
        let index = MogulIndex::build(&graph, config).unwrap();
        let oos =
            OutOfSampleIndex::new(index, db.features().to_vec(), OutOfSampleConfig::default())
                .unwrap();
        let features: Vec<&[f64]> = held_out.iter().map(|(f, _)| f.as_slice()).collect();
        let mut batch_ws = BatchWorkspace::new();
        let mut scalar_ws = OosWorkspace::new();
        // Ragged sub-batches too.
        for size in [1usize, PANEL_WIDTH, features.len()] {
            let slice = &features[..size.min(features.len())];
            let batched = oos.query_batch_in(&mut batch_ws, slice, 5).unwrap();
            assert_eq!(batched.len(), slice.len());
            for (lane, &feature) in slice.iter().enumerate() {
                let scalar = oos.query_in(&mut scalar_ws, feature, 5).unwrap();
                assert_eq!(batched[lane].top_k, scalar.top_k, "lane {lane}");
                assert_eq!(batched[lane].neighbors, scalar.neighbors, "lane {lane}");
                assert_eq!(batched[lane].stats, scalar.stats, "lane {lane}");
            }
        }
    }
}

#[test]
fn snapshot_batches_match_scalar_on_clean_and_corrected_epochs() {
    use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy, SnapshotWorkspace};

    // Two well-separated clusters, exact (MogulE) ranking so corrected
    // answers are exact too.
    let mut features: Vec<Vec<f64>> = Vec::new();
    for i in 0..14 {
        features.push(vec![0.15 * i as f64, 0.07 * (i % 4) as f64]);
    }
    for i in 0..14 {
        features.push(vec![9.0 + 0.15 * i as f64, 5.0 + 0.07 * (i % 4) as f64]);
    }
    let dim = 2usize;
    let mut index = IndexBuilder::new()
        .knn_k(3)
        .exact_ranking()
        .rebuild_policy(RebuildPolicy::never())
        .build(features)
        .unwrap();

    let mut ws = SnapshotWorkspace::new();
    let mut scalar_ws = SnapshotWorkspace::new();
    for corrected in [false, true] {
        if corrected {
            let mut delta = IndexDelta::new();
            delta
                .insert(vec![0.5, 0.1])
                .insert(vec![9.4, 5.2])
                .remove(3);
            index.apply(&delta).unwrap();
        }
        let snapshot = index.snapshot();
        assert_eq!(snapshot.is_clean(), !corrected);

        // In-database batches by stable id (spanning several panels).
        let ids: Vec<usize> = snapshot.item_ids();
        let batched = snapshot.query_batch_by_id_in(&mut ws, &ids, 4).unwrap();
        for (lane, &id) in ids.iter().enumerate() {
            let scalar = snapshot.query_by_id_in(&mut scalar_ws, id, 4).unwrap();
            assert_eq!(batched[lane], scalar, "corrected={corrected} id {id}");
        }

        // Out-of-sample feature batches.
        let probes: Vec<Vec<f64>> = (0..(PANEL_WIDTH + 2))
            .map(|i| vec![0.1 * i as f64 + 0.03, 0.05])
            .collect();
        let probe_refs: Vec<&[f64]> = probes.iter().map(|f| f.as_slice()).collect();
        let batched = snapshot
            .query_batch_by_feature_in(&mut ws, &probe_refs, 3)
            .unwrap();
        for (lane, &feature) in probe_refs.iter().enumerate() {
            let scalar = snapshot
                .query_by_feature_in(&mut scalar_ws, feature, 3)
                .unwrap();
            assert_eq!(batched[lane].top_k, scalar.top_k, "corrected={corrected}");
            assert_eq!(batched[lane].neighbors, scalar.neighbors);
        }

        // Unknown ids and bad features fail the whole batch.
        assert!(snapshot
            .query_batch_by_id_in(&mut ws, &[0, 10_000], 3)
            .is_err());
        let bad = vec![f64::NAN; dim];
        let bad_refs: Vec<&[f64]> = vec![&bad];
        assert!(snapshot
            .query_batch_by_feature_in(&mut ws, &bad_refs, 3)
            .is_err());
    }
}

#[test]
fn batch_validation_and_edge_cases() {
    let (_, approx, _) = build_indices();
    let n = approx.num_nodes();
    // Invalid query id / k = 0 / non-finite weight are rejected.
    assert!(approx.search_batch(&[0, n], 3, SearchMode::Pruned).is_err());
    assert!(approx.search_batch(&[0, 1], 0, SearchMode::Pruned).is_err());
    let bad: Vec<&[(usize, f64)]> = vec![&[(0, f64::NAN)]];
    assert!(approx
        .search_weighted_batch_in(&mut BatchWorkspace::new(), &bad, 3, SearchMode::Pruned)
        .is_err());
    // Empty batches succeed and return nothing.
    assert!(approx
        .search_batch(&[], 3, SearchMode::Pruned)
        .unwrap()
        .is_empty());
    assert!(approx.all_scores_batch(&[]).unwrap().is_empty());
    // A warm workspace from a previous (larger) batch gives identical
    // results on a fresh small batch.
    let mut ws = BatchWorkspace::with_capacity(10_000);
    let big: Vec<usize> = (0..3 * PANEL_WIDTH).map(|i| i % n).collect();
    approx
        .search_batch_in(&mut ws, &big, 4, SearchMode::Pruned)
        .unwrap();
    let warm = approx
        .search_batch_in(&mut ws, &[5, 9], 4, SearchMode::Pruned)
        .unwrap();
    let fresh = approx.search_batch(&[5, 9], 4, SearchMode::Pruned).unwrap();
    assert_eq!(warm, fresh);
}
