//! Property tests: incremental delta application is equivalent to a
//! from-scratch refactorization of the same collection.
//!
//! For random feature sets and random insert/remove sequences, the
//! Woodbury-corrected snapshot must answer top-k queries like a snapshot
//! whose factors were rebuilt from scratch over the identical graph:
//!
//! * **exactly** (identical top-k id sequences, scores to 1e-9) in MogulE
//!   mode, where `L D Lᵀ = W` holds without dropped fill-in, and
//! * **within a documented tolerance** in default (incomplete) mode, where
//!   the corrected path and the refactorized path are two *different*
//!   incomplete approximations of the same `W⁻¹`: every item the corrected
//!   snapshot returns must rank within `TOLERANCE` of the rebuilt snapshot's
//!   k-th best score.

use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy, UpdatableIndex};
use proptest::collection::vec;
use proptest::prelude::*;

/// Score slack allowed in incomplete (default Mogul) mode: both paths
/// approximate `W⁻¹` with errors of this order (compare the 0.02 bound the
/// seed's `approximate_scores_track_the_exact_solution` test uses).
const TOLERANCE: f64 = 0.05;

/// Keep at least this many live items so queries always have answers.
const MIN_LIVE: usize = 8;

/// Query depth; stays ≤ the k-NN degree so every answer set is filled with
/// strictly-positive-score items (see `knn_k` below).
const QUERY_K: usize = 3;

#[derive(Debug, Clone)]
struct Scenario {
    features: Vec<Vec<f64>>,
    /// `(kind, feature_values, removal_selector)` — kind 0 removes, other
    /// values insert.
    ops: Vec<(u8, Vec<f64>, usize)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (18usize..32, 3usize..6).prop_flat_map(|(n, dim)| {
        let features = vec(vec(0.0f64..1.0, dim..(dim + 1)), n..(n + 1));
        let ops = vec((0u8..4, vec(0.0f64..1.0, 8..9), 0usize..1_000_000), 3..11);
        (features, ops).prop_map(|(features, ops)| Scenario { features, ops })
    })
}

/// Apply the scenario's operations in chunked deltas, tracking live ids.
/// Returns the live stable ids.
fn apply_ops(index: &mut UpdatableIndex, scenario: &Scenario) -> Vec<usize> {
    let dim = scenario.features[0].len();
    let mut live_ids: Vec<usize> = (0..scenario.features.len()).collect();
    for chunk in scenario.ops.chunks(4) {
        let mut delta = IndexDelta::new();
        let mut staged_removals = Vec::new();
        let mut staged_inserts = 0usize;
        for (kind, values, selector) in chunk {
            if *kind == 0 && live_ids.len() - staged_removals.len() > MIN_LIVE {
                // Remove a pseudo-random live id not already staged.
                let mut pos = selector % live_ids.len();
                while staged_removals.contains(&live_ids[pos]) {
                    pos = (pos + 1) % live_ids.len();
                }
                staged_removals.push(live_ids[pos]);
                delta.remove(live_ids[pos]);
            } else {
                delta.insert(values[..dim].to_vec());
                staged_inserts += 1;
            }
        }
        let report = index.apply(&delta).unwrap();
        assert_eq!(report.inserted.len(), staged_inserts);
        live_ids.retain(|id| !staged_removals.contains(id));
        live_ids.extend(report.inserted);
    }
    live_ids.sort_unstable();
    live_ids
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MogulE (complete factorization): zero top-k divergence between the
    /// Woodbury-corrected snapshot and a from-scratch refactorization.
    #[test]
    fn exact_mode_incremental_matches_rebuild(s in scenario()) {
        let mut index = IndexBuilder::new()
            .knn_k(QUERY_K)
            .exact_ranking()
            .rebuild_policy(RebuildPolicy::never())
            .build(s.features.clone())
            .unwrap();
        let live_ids = apply_ops(&mut index, &s);
        let corrected = index.snapshot();
        prop_assert!(live_ids.len() >= MIN_LIVE);
        prop_assert_eq!(corrected.item_ids(), live_ids.clone());

        index.rebuild().unwrap();
        let rebuilt = index.snapshot();
        prop_assert!(rebuilt.is_clean());
        prop_assert_eq!(rebuilt.item_ids(), live_ids.clone());

        for &id in &live_ids {
            let a = corrected.query_by_id(id, QUERY_K).unwrap();
            let b = rebuilt.query_by_id(id, QUERY_K).unwrap();
            // Zero divergence: identical ranked id sequences...
            prop_assert_eq!(a.nodes(), b.nodes(), "query {}", id);
            // ... and identical scores up to solver round-off.
            for (x, y) in a.items().iter().zip(b.items().iter()) {
                prop_assert!(
                    (x.score - y.score).abs() < 1e-9,
                    "query {}: {:?} vs {:?}", id, x, y
                );
            }
        }
    }

    /// Default Mogul (incomplete factorization): every corrected answer
    /// ranks within the documented tolerance of the rebuilt answer set.
    #[test]
    fn approximate_mode_incremental_matches_rebuild_within_tolerance(s in scenario()) {
        let mut index = IndexBuilder::new()
            .knn_k(QUERY_K)
            .rebuild_policy(RebuildPolicy::never())
            .build(s.features.clone())
            .unwrap();
        let live_ids = apply_ops(&mut index, &s);
        let corrected = index.snapshot();
        index.rebuild().unwrap();
        let rebuilt = index.snapshot();

        for &id in &live_ids {
            let a = corrected.query_by_id(id, QUERY_K).unwrap();
            let b = rebuilt.query_by_id(id, QUERY_K).unwrap();
            prop_assert!(!b.is_empty());
            let kth_best = b.items().last().unwrap().score;
            // Rebuilt scores of every live item, by stable id.
            let all = rebuilt.query_by_id(id, live_ids.len()).unwrap();
            for item in a.items() {
                let rebuilt_score = all.score_of(item.node).unwrap_or(0.0);
                prop_assert!(
                    rebuilt_score >= kth_best - TOLERANCE,
                    "query {}: corrected pick {:?} scores {} under rebuilt threshold {}",
                    id, item, rebuilt_score, kth_best
                );
                // The two approximations agree on the score value itself.
                prop_assert!(
                    (item.score - rebuilt_score).abs() < TOLERANCE,
                    "query {}: score drift {:?} vs {}", id, item, rebuilt_score
                );
            }
        }
    }

    /// Epoch bookkeeping: every applied delta advances the epoch by one and
    /// earlier snapshots remain queryable and unchanged.
    #[test]
    fn snapshots_are_immutable_across_epochs(s in scenario()) {
        let mut index = IndexBuilder::new()
            .knn_k(QUERY_K)
            .exact_ranking()
            .rebuild_policy(RebuildPolicy::never())
            .build(s.features.clone())
            .unwrap();
        let initial = index.snapshot();
        let probe = 0usize; // id 0 is never removed (ops keep MIN_LIVE items)
        let before = initial.query_by_id(probe, QUERY_K).unwrap();

        let mut expected_epoch = 0u64;
        for chunk in s.ops.chunks(4) {
            let mut delta = IndexDelta::new();
            for (_, values, _) in chunk {
                delta.insert(values[..s.features[0].len()].to_vec());
            }
            let report = index.apply(&delta).unwrap();
            expected_epoch += 1;
            prop_assert_eq!(report.epoch, expected_epoch);
            prop_assert_eq!(index.epoch(), expected_epoch);
        }
        // The epoch-0 snapshot still answers exactly as before.
        prop_assert_eq!(initial.epoch(), 0);
        prop_assert_eq!(initial.query_by_id(probe, QUERY_K).unwrap(), before);
        prop_assert_eq!(initial.len(), s.features.len());
    }
}
