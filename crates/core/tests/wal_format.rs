//! Format-level hardening of the WAL segment format, in the MOG1
//! corruption-matrix idiom (`persist_format.rs`): truncation at every byte,
//! bit flips in every record field, hostile declared lengths, future
//! versions, duplicate/out-of-order epochs — every defect either recovers
//! by discarding a *reported, strict-prefix* torn tail (the one thing a
//! crashed append can legally produce, final segment only) or refuses with
//! a typed [`WalError`]. Never a panic, never a silently wrong replay.
//!
//! The committed `fixtures/golden_v1.wal` pins the v1 record layout and
//! its replay result, mirroring `golden_v1.mog1`.

use mogul_core::persist;
use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy, UpdatableIndex};
use mogul_core::wal::{
    self, encode_record, encode_segment_header, read_segment, Wal, WalError, WalOp, WalSync,
    SEGMENT_HEADER_LEN,
};
use mogul_sparse::persist::{checksum64, put_u64};
use std::path::PathBuf;

/// Small deterministic corpus shared by every test here (same shape as the
/// MOG1 format tests).
fn features() -> Vec<Vec<f64>> {
    (0..24)
        .map(|i| {
            let blob = (i % 2) as f64;
            vec![
                blob * 7.0 + ((i * 31) % 13) as f64 / 13.0,
                blob * 7.0 + ((i * 17) % 11) as f64 / 11.0,
                0.1 * (i % 5) as f64,
            ]
        })
        .collect()
}

fn build_index(exact: bool) -> UpdatableIndex {
    let builder = IndexBuilder::new()
        .knn_k(3)
        .rebuild_policy(RebuildPolicy::never());
    let builder = if exact {
        builder.exact_ranking()
    } else {
        builder
    };
    builder.build(features()).unwrap()
}

/// The deterministic delta sequence logged by every segment built here.
fn deltas() -> Vec<IndexDelta> {
    let mut d1 = IndexDelta::new();
    d1.insert(vec![0.45, 0.3, 0.2]);
    let mut d2 = IndexDelta::new();
    d2.insert(vec![6.9, 7.2, 0.35]).remove(7);
    let mut d3 = IndexDelta::new();
    d3.remove(2);
    vec![d1, d2, d3]
}

/// One valid single-segment log: header (base 0) + the three delta
/// records, plus the byte offsets where each record ends (the legal
/// truncation points).
fn segment_bytes() -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    encode_segment_header(0, &mut bytes);
    let mut boundaries = vec![bytes.len()];
    for (i, delta) in deltas().iter().enumerate() {
        encode_record(i as u64 + 1, &WalOp::Delta(delta.clone()), &mut bytes).unwrap();
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

/// Frame arbitrary payload bytes as one record with a *valid* checksum —
/// for crafting structurally hostile but checksum-clean records.
fn frame_raw(payload: &[u8], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = checksum64(&out[start..]);
    put_u64(out, sum);
}

fn temp_dir(name: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mogul-wal-format-{}-{}-{name}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// Corruption matrix
// ---------------------------------------------------------------------------

#[test]
fn truncation_at_every_byte_recovers_or_refuses() {
    let (bytes, boundaries) = segment_bytes();
    let original = read_segment(&bytes, true).unwrap().records;
    assert_eq!(original.len(), 3);
    for cut in 0..bytes.len() {
        let prefix = &bytes[..cut];

        // Final segment: every truncation point is a legal crash and must
        // recover — the complete records survive, the torn tail is
        // discarded and reported.
        let segment = read_segment(prefix, true)
            .unwrap_or_else(|e| panic!("final-segment cut at byte {cut} must recover: {e}"));
        if cut < SEGMENT_HEADER_LEN {
            assert_eq!(segment.base_epoch, None, "cut {cut}");
            assert!(segment.records.is_empty(), "cut {cut}");
            let torn = segment.torn.expect("torn header must be reported");
            assert_eq!((torn.offset, torn.bytes), (0, cut));
        } else {
            assert_eq!(segment.base_epoch, Some(0), "cut {cut}");
            let complete = boundaries.iter().skip(1).filter(|&&b| b <= cut).count();
            assert_eq!(
                segment.records.as_slice(),
                &original[..complete],
                "cut {cut}"
            );
            let at_boundary = boundaries.contains(&cut);
            assert_eq!(
                segment.torn.is_some(),
                !at_boundary,
                "cut {cut}: torn tail must be reported iff the cut is mid-record"
            );
        }

        // Non-final segment: the torn-tail carve-out does not apply — the
        // log moved past this segment only after fsyncing it complete, so
        // anything but a record boundary refuses.
        match read_segment(prefix, false) {
            Ok(segment) => {
                assert!(
                    cut >= SEGMENT_HEADER_LEN && boundaries.contains(&cut),
                    "cut {cut} is mid-record but parsed as a complete non-final segment"
                );
                assert!(segment.torn.is_none());
            }
            Err(WalError::Truncated { .. }) => {
                assert!(
                    !boundaries.contains(&cut) || cut < SEGMENT_HEADER_LEN,
                    "cut {cut} is a record boundary but refused"
                );
            }
            Err(other) => panic!("cut {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn every_bit_flip_fails_closed_or_discards_a_reported_prefix() {
    let (bytes, _) = segment_bytes();
    let original = read_segment(&bytes, true).unwrap().records;
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;

            // Final segment: a flip either yields a typed error, or — when
            // it mimics a torn tail (e.g. a record length now running past
            // the end of the file) — a *reported*, strict-prefix recovery.
            // There is no silent path to the original (or any wrong)
            // record set: every byte is under a checksum.
            match read_segment(&mutated, true) {
                Err(_) => {}
                Ok(segment) => {
                    assert!(
                        segment.torn.is_some(),
                        "byte {i} bit {bit}: flip accepted without a torn-tail report"
                    );
                    assert!(
                        segment.records.len() < original.len(),
                        "byte {i} bit {bit}: flip accepted with all records intact"
                    );
                    assert_eq!(
                        segment.records.as_slice(),
                        &original[..segment.records.len()],
                        "byte {i} bit {bit}: surviving records diverged"
                    );
                }
            }

            // Non-final segment: every flip refuses.
            assert!(
                read_segment(&mutated, false).is_err(),
                "byte {i} bit {bit}: flip accepted in a non-final segment"
            );
        }
    }
}

#[test]
fn hostile_declared_lengths_never_allocate_or_panic() {
    let (bytes, boundaries) = segment_bytes();
    let original = read_segment(&bytes, true).unwrap().records;

    // A middle record claiming u32::MAX payload bytes swallows the rest of
    // the file: in the final segment that reads as a torn tail (strict
    // prefix, reported); in a non-final segment it refuses.
    let second_record = boundaries[1];
    let mut hostile = bytes.clone();
    hostile[second_record..second_record + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let segment = read_segment(&hostile, true).unwrap();
    assert_eq!(segment.records.as_slice(), &original[..1]);
    let torn = segment.torn.expect("hostile length must be reported");
    assert_eq!(torn.offset, second_record);
    match read_segment(&hostile, false) {
        Err(WalError::Truncated {
            needed, available, ..
        }) => {
            assert!(needed > available);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }

    // A length nudged to overlap the next record keeps the byte count in
    // bounds but breaks the checksum span: refused in both positions.
    let len = u32::from_le_bytes(bytes[second_record..second_record + 4].try_into().unwrap());
    let mut overlap = bytes.clone();
    overlap[second_record..second_record + 4].copy_from_slice(&(len + 8).to_le_bytes());
    for is_final in [true, false] {
        match read_segment(&overlap, is_final) {
            Err(WalError::ChecksumMismatch { offset }) => assert_eq!(offset, second_record),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    // The only record hostile: the final segment recovers to empty.
    let mut lone = Vec::new();
    encode_segment_header(9, &mut lone);
    lone.extend_from_slice(&u32::MAX.to_le_bytes());
    lone.extend_from_slice(&[0xAB; 16]);
    let segment = read_segment(&lone, true).unwrap();
    assert_eq!(segment.base_epoch, Some(9));
    assert!(segment.records.is_empty());
    assert!(segment.torn.is_some());
}

#[test]
fn bad_magic_and_future_versions_refuse() {
    let (bytes, _) = segment_bytes();

    let mut wrong_magic = bytes.clone();
    wrong_magic[0..4].copy_from_slice(b"NOPE");
    for is_final in [true, false] {
        match read_segment(&wrong_magic, is_final) {
            Err(WalError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    for future in [2u32, 7, u32::MAX] {
        let mut versioned = bytes.clone();
        versioned[4..8].copy_from_slice(&future.to_le_bytes());
        // Re-seal the header checksum so the *only* defect is the version.
        let sum = checksum64(&versioned[..16]);
        versioned[16..24].copy_from_slice(&sum.to_le_bytes());
        for is_final in [true, false] {
            match read_segment(&versioned, is_final) {
                Err(WalError::UnsupportedVersion { found }) => assert_eq!(found, future),
                other => panic!("expected UnsupportedVersion({future}), got {other:?}"),
            }
        }
    }
}

#[test]
fn unknown_record_kinds_and_op_tags_refuse() {
    // Records cannot be skipped (every epoch must be re-applied), so an
    // unknown-but-checksum-valid kind is a hard refusal, not a torn tail.
    let mut unknown_kind = Vec::new();
    encode_segment_header(0, &mut unknown_kind);
    let mut payload = Vec::new();
    put_u64(&mut payload, 1); // epoch
    put_u64(&mut payload, 99); // kind
    frame_raw(&payload, &mut unknown_kind);
    for is_final in [true, false] {
        match read_segment(&unknown_kind, is_final) {
            Err(WalError::UnknownRecordKind { found }) => assert_eq!(found, 99),
            other => panic!("expected UnknownRecordKind, got {other:?}"),
        }
    }

    let mut unknown_op = Vec::new();
    encode_segment_header(0, &mut unknown_op);
    let mut payload = Vec::new();
    put_u64(&mut payload, 1); // epoch
    put_u64(&mut payload, 1); // kind = delta
    put_u64(&mut payload, 1); // one op
    put_u64(&mut payload, 77); // unknown op tag
    frame_raw(&payload, &mut unknown_op);
    match read_segment(&unknown_op, true) {
        Err(WalError::Corrupt { what, .. }) => assert_eq!(what, "delta op tag"),
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // A checksum-valid payload with trailing garbage (declared length too
    // long for its own content) refuses too.
    let mut padded = Vec::new();
    encode_segment_header(0, &mut padded);
    let mut payload = Vec::new();
    put_u64(&mut payload, 1); // epoch
    put_u64(&mut payload, 2); // kind = rebuild (no body)
    payload.extend_from_slice(&[0u8; 5]);
    frame_raw(&payload, &mut padded);
    match read_segment(&padded, true) {
        Err(WalError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn duplicate_and_out_of_order_epochs_refuse() {
    let cases: [(&[u64], u64, u64); 4] = [
        (&[1, 1], 2, 1), // duplicate
        (&[1, 3], 2, 3), // skipped ahead
        (&[2], 1, 2),    // does not start at base + 1
        (&[0], 1, 0),    // repeats the base epoch itself
    ];
    for (epochs, want_expected, want_found) in cases {
        let mut bytes = Vec::new();
        encode_segment_header(0, &mut bytes);
        for &epoch in epochs {
            encode_record(epoch, &WalOp::Rebuild, &mut bytes).unwrap();
        }
        for is_final in [true, false] {
            match read_segment(&bytes, is_final) {
                Err(WalError::EpochOrder { expected, found }) => {
                    assert_eq!((expected, found), (want_expected, want_found), "{epochs:?}");
                }
                other => panic!("{epochs:?}: expected EpochOrder, got {other:?}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end recovery exactness (both factorization flavors)
// ---------------------------------------------------------------------------

#[test]
fn recovery_lands_on_the_exact_epoch_for_both_flavors() {
    for exact in [false, true] {
        let dir = temp_dir(if exact {
            "recover-exact"
        } else {
            "recover-inc"
        });
        let ckpt = dir.join("ckpt.mog1");
        let wal_dir = dir.join("wal");
        std::fs::create_dir_all(&dir).unwrap();

        let mut live = build_index(exact);
        persist::save_updatable(&live, &ckpt).unwrap();
        let mut log = Wal::create(&wal_dir, live.epoch(), WalSync::EveryRecord).unwrap();
        for (i, delta) in deltas().iter().enumerate() {
            log.append(i as u64 + 1, &WalOp::Delta(delta.clone()))
                .unwrap();
            live.apply(delta).unwrap();
        }
        drop(log);

        let (recovered, log, outcome) =
            wal::recover_updatable(&ckpt, &wal_dir, WalSync::EveryRecord).unwrap();
        assert_eq!(outcome.replay.applied, 3);
        assert_eq!(outcome.replay.skipped, 0);
        assert_eq!(outcome.log.truncated_bytes, 0);
        assert_eq!(recovered.epoch(), live.epoch());
        assert_eq!(log.last_epoch(), live.epoch());

        // Bit-identical answers — `==` covers ranks, scores and
        // SearchStats — for every live item, in both the corrected
        // (incomplete-factor) and the exact (MogulE) flavor.
        let live_snap = live.snapshot();
        let recovered_snap = recovered.snapshot();
        assert_eq!(live_snap.item_ids(), recovered_snap.item_ids());
        assert_eq!(live_snap.is_clean(), recovered_snap.is_clean());
        for id in live_snap.item_ids() {
            assert_eq!(
                live_snap.query_by_id(id, 6).unwrap(),
                recovered_snap.query_by_id(id, 6).unwrap(),
                "recovered answers diverged at id {id} (exact = {exact})"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn checkpoint_ahead_of_the_log_refuses() {
    // A checkpoint newer than the log's final epoch means the newest
    // segments were lost: rotation always leaves a segment based at the
    // checkpoint epoch, so recovery must refuse rather than silently serve
    // the stale checkpoint state as if it were current.
    let dir = temp_dir("ckpt-ahead");
    let ckpt = dir.join("ckpt.mog1");
    let wal_dir = dir.join("wal");
    std::fs::create_dir_all(&dir).unwrap();

    let mut index = build_index(false);
    let mut log = Wal::create(&wal_dir, 0, WalSync::EveryRecord).unwrap();
    log.append(1, &WalOp::Delta(deltas()[0].clone())).unwrap();
    index.apply(&deltas()[0]).unwrap();
    // Move the index two epochs past the log, then checkpoint it clean.
    index.apply(&deltas()[1]).unwrap();
    index.rebuild().unwrap();
    persist::save_updatable(&index, &ckpt).unwrap();
    drop(log);

    match wal::recover_updatable(&ckpt, &wal_dir, WalSync::EveryRecord) {
        Err(WalError::EpochGap { expected, found }) => {
            assert_eq!((expected, found), (3, 1));
        }
        other => panic!("expected EpochGap, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Golden fixture: WAL format v1 compatibility pin
// ---------------------------------------------------------------------------

/// The committed golden fixture (written by `regenerate_golden_wal_fixture`
/// below). Every future build must keep reading this byte-for-byte
/// segment; an incompatible record-layout change must bump
/// [`wal::WAL_VERSION`] and add a new fixture instead of breaking this one.
const GOLDEN: &[u8] = include_bytes!("fixtures/golden_v1.wal");

/// The exact record sequence the fixture holds (kept for regeneration and
/// the replay-equivalence assertion below): the three deltas, then an
/// explicit refactorization.
fn golden_records() -> Vec<(u64, WalOp)> {
    let mut records: Vec<(u64, WalOp)> = deltas()
        .into_iter()
        .enumerate()
        .map(|(i, d)| (i as u64 + 1, WalOp::Delta(d)))
        .collect();
    records.push((4, WalOp::Rebuild));
    records
}

fn golden_bytes() -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_segment_header(0, &mut bytes);
    for (epoch, op) in golden_records() {
        encode_record(epoch, &op, &mut bytes).unwrap();
    }
    bytes
}

/// Regenerate the golden fixture. Run manually after an *intentional*,
/// version-bumped format change:
/// `cargo test -p mogul-core --test wal_format -- --ignored regenerate`
#[test]
#[ignore = "writes the committed fixture; run only on intentional format changes"]
fn regenerate_golden_wal_fixture() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v1.wal");
    std::fs::write(path, golden_bytes()).unwrap();
    eprintln!("wrote {path}");
}

#[test]
fn golden_wal_fixture_pins_format_v1() {
    // Byte-for-byte: the encoder is deterministic, so any layout change —
    // framing, field order, checksum definition — breaks this first.
    assert_eq!(
        GOLDEN,
        golden_bytes().as_slice(),
        "v1 record layout changed — bump WAL_VERSION instead"
    );

    // Structure: base epoch, record count, epochs and kinds.
    let segment = read_segment(GOLDEN, true).unwrap();
    assert_eq!(segment.base_epoch, Some(0));
    assert_eq!(segment.torn, None);
    let expected = golden_records();
    assert_eq!(segment.records.len(), expected.len());
    for (record, (epoch, op)) in segment.records.iter().zip(&expected) {
        assert_eq!(record.epoch, *epoch);
        assert_eq!(&record.op, op);
    }

    // Semantics: replaying the fixture over the deterministic base corpus
    // answers exactly like applying the same operations directly.
    let mut replayed = build_index(true);
    wal::replay(&mut replayed, &segment.records).unwrap();
    let mut reference = build_index(true);
    for delta in deltas() {
        reference.apply(&delta).unwrap();
    }
    reference.rebuild().unwrap();
    assert_eq!(replayed.epoch(), reference.epoch());
    let replayed_snap = replayed.snapshot();
    let reference_snap = reference.snapshot();
    assert_eq!(replayed_snap.item_ids(), reference_snap.item_ids());
    for id in replayed_snap.item_ids() {
        assert_eq!(
            replayed_snap.query_by_id(id, 5).unwrap(),
            reference_snap.query_by_id(id, 5).unwrap(),
            "golden fixture replay diverged at id {id}"
        );
    }
}
