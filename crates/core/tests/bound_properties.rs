//! Property-based verification of the paper's bounding lemmas on random
//! k-NN-like graphs: the cluster estimation of Section 4.3 really is an upper
//! bound on every approximate score in the cluster (Lemma 7), which is what
//! makes pruning safe.

use mogul_core::{MogulConfig, MogulIndex, MrParams, SearchMode};
use mogul_graph::Graph;
use proptest::prelude::*;

fn build_graph(n: usize, raw_edges: &[(usize, usize, u8)]) -> Graph {
    let mut graph = Graph::empty(n);
    for i in 1..n {
        graph.add_edge(i - 1, i, 0.4).unwrap();
    }
    for &(a, b, w) in raw_edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        graph.add_edge(a, b, 0.1 + f64::from(w) / 64.0).unwrap();
    }
    graph
}

fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (8usize..30).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0u8..64), 0..(2 * n));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 7, verified exhaustively: for every query and every k the pruned
    /// search returns the same set as the unpruned search, and the pruned
    /// search never computes more scores than the unpruned one.
    #[test]
    fn pruning_is_safe_and_never_more_expensive(
        (n, edges) in graph_strategy(),
        alpha_pct in 50u32..99,
    ) {
        let graph = build_graph(n, &edges);
        let params = MrParams::new(f64::from(alpha_pct) / 100.0).unwrap();
        let index = MogulIndex::build(&graph, MogulConfig { params, ..MogulConfig::default() }).unwrap();
        for query in 0..n.min(6) {
            for k in [1usize, 3, 7] {
                let (pruned, stats_pruned) =
                    index.search_with_stats(query, k, SearchMode::Pruned).unwrap();
                let (unpruned, stats_unpruned) =
                    index.search_with_stats(query, k, SearchMode::NoPruning).unwrap();
                prop_assert_eq!(pruned.nodes(), unpruned.nodes());
                prop_assert!(stats_pruned.nodes_scored <= stats_unpruned.nodes_scored);
                prop_assert!(stats_pruned.clusters_pruned <= stats_pruned.clusters_considered);
            }
        }
    }

    /// The scores returned by the top-k search agree with the full
    /// approximate-score vector: the reported score of every returned node
    /// equals its entry in `all_scores`, and no skipped node scores strictly
    /// higher than the worst returned node.
    #[test]
    fn top_k_is_consistent_with_the_full_score_vector(
        (n, edges) in graph_strategy(),
        query_raw in 0usize..1000,
    ) {
        let graph = build_graph(n, &edges);
        let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
        let query = query_raw % n;
        let k = 5usize;
        let top = index.search(query, k).unwrap();
        let scores = index.all_scores(query).unwrap();
        for item in top.items() {
            prop_assert!((scores[item.node] - item.score).abs() < 1e-9);
        }
        // No non-returned node (other than the query) may beat the k-th
        // returned score by more than numerical noise — unless the returned
        // list is shorter than k because the remaining scores are negative.
        if top.len() == k {
            let worst = top.items().last().unwrap().score;
            for (node, &score) in scores.iter().enumerate() {
                if node == query || top.contains(node) {
                    continue;
                }
                prop_assert!(
                    score <= worst + 1e-9,
                    "node {node} (score {score}) should have been returned (threshold {worst})"
                );
            }
        }
    }
}
