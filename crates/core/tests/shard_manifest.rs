//! Sharded-manifest corruption matrix, in the PR-5/PR-7 fail-closed idiom:
//! every probed mutation of the manifest or its shard files must surface a
//! **typed** [`PersistError`] — never a panic, never a silently wrong index.
//!
//! Layers probed:
//!
//! * **container**: truncation at every byte prefix, a single-bit flip at
//!   every bit of every byte (all bytes of the manifest are covered by the
//!   magic/version check, the section checksums, the table checksum, or the
//!   footer validation), wrong magic, future container versions;
//! * **payload semantics**: future manifest schema versions, hostile shard
//!   counts/dimensions/probe counts, hostile file-name lengths, non-UTF-8 /
//!   path-traversal / duplicate / colliding file names, empty files, zero
//!   and oversized id ranges, overlapping and gapped id ranges, hostile
//!   overflow entries, trailing bytes;
//! * **cross-file**: missing, truncated, bit-flipped, swapped and stale
//!   shard files — each pinned by the manifest's recorded length, checksum
//!   and epoch before any shard bytes are decoded.
//!
//! A committed `golden_shards_v1` fixture pins the on-disk layout: future
//! builds must keep loading it byte-for-byte (regenerate only through the
//! `#[ignore]` test below after an intentional, version-bumped change).

use std::path::{Path, PathBuf};

use mogul_core::persist::PersistError;
use mogul_core::persist::{SectionKind, SectionWriter};
use mogul_core::shard::{
    inspect_manifest_bytes, load_sharded, save_sharded, shard_file_name, ShardedConfig,
    ShardedIndex, ShardedWorkspace, MANIFEST_FILE_NAME,
};
use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy};
use mogul_sparse::persist::put_u64;

// ---------------------------------------------------------------------------
// Fixture corpus
// ---------------------------------------------------------------------------

fn features() -> Vec<Vec<f64>> {
    (0..20)
        .map(|i| {
            vec![
                (i % 5) as f64 / 5.0 + if i >= 10 { 50.0 } else { 0.0 },
                (i % 7) as f64 / 7.0,
                (i % 3) as f64 / 3.0,
            ]
        })
        .collect()
}

/// Deterministic two-shard index with post-build history: inserts routed to
/// both shards, one removal, then a clean checkpoint (non-trivial epochs
/// and a non-empty overflow table).
fn fixture_index() -> ShardedIndex {
    let config = ShardedConfig::with_shards(2).builder(
        IndexBuilder::new()
            .knn_k(3)
            .rebuild_policy(RebuildPolicy::never()),
    );
    let (mut index, _) = ShardedIndex::build(features(), config).unwrap();
    let mut delta = IndexDelta::new();
    delta
        .insert(vec![0.4, 0.5, 0.6])
        .insert(vec![50.3, 0.5, 0.6])
        .remove(3);
    index.apply(&delta).unwrap();
    index.checkpoint_clean().unwrap();
    index
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mogul_shard_manifest_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn saved_fixture(tag: &str) -> PathBuf {
    let dir = temp_dir(tag);
    save_sharded(&fixture_index(), &dir).unwrap();
    dir
}

fn manifest_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join(MANIFEST_FILE_NAME)).unwrap()
}

// ---------------------------------------------------------------------------
// Round trip & warm start
// ---------------------------------------------------------------------------

#[test]
fn round_trip_answers_bit_identically() {
    let index = fixture_index();
    let dir = temp_dir("roundtrip");
    let info = save_sharded(&index, &dir).unwrap();
    assert_eq!(info.shards.len(), 2);
    assert_eq!(info.overflow.len(), 2);

    let loaded = load_sharded(&dir).unwrap();
    assert_eq!(loaded.epoch(), index.epoch());
    assert_eq!(loaded.shard_epochs(), index.shard_epochs());
    assert_eq!(loaded.len(), index.len());
    assert_eq!(loaded.router(), index.router());

    let (a, b) = (index.snapshot(), loaded.snapshot());
    assert_eq!(a.item_ids(), b.item_ids());
    let mut ws = ShardedWorkspace::new();
    for id in a.item_ids() {
        let x = a.query_by_id_in(&mut ws, id, 4).unwrap();
        let y = b.query_by_id_in(&mut ws, id, 4).unwrap();
        assert_eq!(x.nodes(), y.nodes(), "id {id}");
        for (i, j) in x.items().iter().zip(y.items()) {
            assert_eq!(i.score.to_bits(), j.score.to_bits(), "id {id}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_and_serial_warm_starts_agree() {
    let config = ShardedConfig::with_shards(2)
        .builder(IndexBuilder::new().knn_k(3))
        .parallel(false);
    let (serial_index, _) = ShardedIndex::build(features(), config).unwrap();
    let dir_serial = temp_dir("warm_serial");
    save_sharded(&serial_index, &dir_serial).unwrap();

    let (parallel_index, _) = ShardedIndex::build(features(), config.parallel(true)).unwrap();
    let dir_parallel = temp_dir("warm_parallel");
    save_sharded(&parallel_index, &dir_parallel).unwrap();

    // The parallel flag is a pure wall-clock knob: both warm starts answer
    // bit-identically.
    let a = load_sharded(&dir_serial).unwrap();
    let b = load_sharded(&dir_parallel).unwrap();
    assert!(!a.parallel() && b.parallel());
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.item_ids(), sb.item_ids());
    let mut ws = ShardedWorkspace::new();
    for id in sa.item_ids() {
        let x = sa.query_by_id_in(&mut ws, id, 4).unwrap();
        let y = sb.query_by_id_in(&mut ws, id, 4).unwrap();
        assert_eq!(x, y, "id {id}");
    }
    std::fs::remove_dir_all(&dir_serial).unwrap();
    std::fs::remove_dir_all(&dir_parallel).unwrap();
}

#[test]
fn saving_a_dirty_index_is_rejected() {
    let config = ShardedConfig::with_shards(2).builder(
        IndexBuilder::new()
            .knn_k(3)
            .rebuild_policy(RebuildPolicy::never()),
    );
    let (mut index, _) = ShardedIndex::build(features(), config).unwrap();
    let mut delta = IndexDelta::new();
    delta.insert(vec![0.1, 0.1, 0.1]);
    index.apply(&delta).unwrap();
    let dir = temp_dir("dirty");
    match save_sharded(&index, &dir) {
        Err(PersistError::InvalidState(msg)) => {
            assert!(msg.contains("checkpoint_clean"), "unhelpful message: {msg}")
        }
        other => panic!("expected InvalidState, got {other:?}"),
    }
    assert!(!dir.exists(), "rejected save must not create the directory");
}

// ---------------------------------------------------------------------------
// Container-level corruption
// ---------------------------------------------------------------------------

#[test]
fn truncation_at_every_byte_fails_closed() {
    let dir = saved_fixture("trunc");
    let bytes = manifest_bytes(&dir);
    for len in 0..bytes.len() {
        let err = inspect_manifest_bytes(&bytes[..len])
            .expect_err(&format!("truncation to {len} bytes must fail"));
        match err {
            PersistError::Truncated { .. }
            | PersistError::Corrupt { .. }
            | PersistError::BadMagic { .. }
            | PersistError::ChecksumMismatch { .. }
            | PersistError::MissingSection { .. }
            | PersistError::SectionDecode { .. } => {}
            other => panic!("truncation to {len}: unexpected error {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_single_bit_flip_fails_closed() {
    let dir = saved_fixture("flip");
    let bytes = manifest_bytes(&dir);
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 1 << bit;
            inspect_manifest_bytes(&corrupted)
                .expect_err(&format!("bit {bit} of byte {i} flipped undetected"));
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn future_container_versions_are_rejected() {
    let dir = saved_fixture("future");
    let bytes = manifest_bytes(&dir);
    for version in [2u32, 7, u32::MAX] {
        let mut corrupted = bytes.clone();
        corrupted[4..8].copy_from_slice(&version.to_le_bytes());
        match inspect_manifest_bytes(&corrupted) {
            Err(PersistError::UnsupportedVersion { found }) => assert_eq!(found, version),
            other => panic!("version {version}: expected UnsupportedVersion, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_container_without_the_manifest_section_is_rejected() {
    // A perfectly valid MOG1 container of the wrong flavor.
    let index = IndexBuilder::new().knn_k(3).build(features()).unwrap();
    let bytes = mogul_core::persist::save_updatable_to(&index, Vec::new()).unwrap();
    match inspect_manifest_bytes(&bytes) {
        Err(PersistError::MissingSection { section }) => assert_eq!(section, "shard-manifest"),
        other => panic!("expected MissingSection, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Payload-level hostility (crafted manifests; no shard files involved)
// ---------------------------------------------------------------------------

/// `(name bytes, declared name len, checksum, file len, id base, id len, epoch)`
type SpecShard = (Vec<u8>, u64, u64, u64, u64, u64, u64);

/// A decoded-form manifest the test can mutate field-by-field before
/// re-encoding into a structurally valid container — every rejection below
/// is therefore attributable to payload *semantics*, not checksums.
#[derive(Clone)]
struct Spec {
    version: u64,
    epoch: u64,
    dim: u64,
    seed: u64,
    probes: u64,
    parallel: u64,
    /// `(name bytes, declared name len, checksum, file len, id base, id len, epoch)`
    shards: Vec<SpecShard>,
    overflow: Vec<u64>,
    declared_overflow: Option<u64>,
    trailing: Vec<u8>,
}

fn valid_spec() -> Spec {
    Spec {
        version: 1,
        epoch: 3,
        dim: 3,
        seed: 42,
        probes: 1,
        parallel: 1,
        shards: vec![
            (b"shard-0000.mog1".to_vec(), 15, 0xabcd, 900, 0, 10, 2),
            (b"shard-0001.mog1".to_vec(), 15, 0x1234, 900, 10, 10, 2),
        ],
        overflow: vec![0, 1],
        declared_overflow: None,
        trailing: Vec::new(),
    }
}

fn encode_spec(spec: &Spec) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, spec.version);
    put_u64(&mut payload, spec.epoch);
    put_u64(&mut payload, spec.dim);
    put_u64(&mut payload, spec.seed);
    put_u64(&mut payload, spec.probes);
    put_u64(&mut payload, spec.parallel);
    put_u64(&mut payload, spec.shards.len() as u64);
    for (name, name_len, checksum, file_len, base, id_len, epoch) in &spec.shards {
        put_u64(&mut payload, *name_len);
        payload.extend_from_slice(name);
        put_u64(&mut payload, *checksum);
        put_u64(&mut payload, *file_len);
        put_u64(&mut payload, *base);
        put_u64(&mut payload, *id_len);
        put_u64(&mut payload, *epoch);
    }
    put_u64(
        &mut payload,
        spec.declared_overflow.unwrap_or(spec.overflow.len() as u64),
    );
    for &shard in &spec.overflow {
        put_u64(&mut payload, shard);
    }
    payload.extend_from_slice(&spec.trailing);

    let mut writer = SectionWriter::new(Vec::new()).unwrap();
    writer
        .write_section(SectionKind::ShardManifest, &payload)
        .unwrap();
    writer.finish().unwrap()
}

fn expect_rejected(mutate: impl FnOnce(&mut Spec), what: &str) {
    let mut spec = valid_spec();
    mutate(&mut spec);
    let bytes = encode_spec(&spec);
    match inspect_manifest_bytes(&bytes) {
        Err(
            PersistError::Corrupt { .. }
            | PersistError::SectionDecode { .. }
            | PersistError::UnsupportedVersion { .. },
        ) => {}
        other => panic!("{what}: expected a typed rejection, got {other:?}"),
    }
}

#[test]
fn the_crafted_baseline_spec_is_accepted() {
    let info = inspect_manifest_bytes(&encode_spec(&valid_spec())).unwrap();
    assert_eq!(info.shards.len(), 2);
    assert_eq!(info.overflow, vec![0, 1]);
    assert_eq!(info.epoch, 3);
    assert!(info.parallel);
}

#[test]
fn hostile_payload_fields_are_rejected() {
    expect_rejected(|s| s.version = 2, "future manifest schema version");
    expect_rejected(|s| s.version = u64::MAX, "huge manifest schema version");
    expect_rejected(|s| s.dim = 0, "zero dimension");
    expect_rejected(|s| s.dim = 1 << 21, "oversized dimension");
    expect_rejected(|s| s.probes = 0, "zero probe count");
    expect_rejected(|s| s.probes = 3, "probe count above shard count");
    expect_rejected(|s| s.parallel = 2, "non-boolean parallel flag");
    expect_rejected(|s| s.shards.clear(), "zero shards");
    expect_rejected(
        |s| {
            let entry = s.shards[0].clone();
            s.shards = vec![entry; 4097];
        },
        "shard count above MAX_SHARDS",
    );
}

#[test]
fn hostile_file_names_are_rejected() {
    expect_rejected(
        |s| {
            s.shards[0].0 = Vec::new();
            s.shards[0].1 = 0;
        },
        "empty file name",
    );
    expect_rejected(|s| s.shards[0].1 = u64::MAX, "huge declared name length");
    expect_rejected(
        |s| {
            s.shards[0].0 = b"../escape.mog1".to_vec();
            s.shards[0].1 = 14;
        },
        "path traversal (parent)",
    );
    expect_rejected(
        |s| {
            s.shards[0].0 = b"a/b.mog1".to_vec();
            s.shards[0].1 = 8;
        },
        "path separator",
    );
    expect_rejected(
        |s| {
            s.shards[0].0 = b"a\\b.mog1".to_vec();
            s.shards[0].1 = 8;
        },
        "backslash separator",
    );
    expect_rejected(
        |s| {
            s.shards[0].0 = vec![0xff, 0xfe, 0x41];
            s.shards[0].1 = 3;
        },
        "non-UTF-8 name",
    );
    expect_rejected(
        |s| {
            s.shards[1].0 = s.shards[0].0.clone();
            s.shards[1].1 = s.shards[0].1;
        },
        "duplicate file names",
    );
    expect_rejected(
        |s| {
            s.shards[0].0 = MANIFEST_FILE_NAME.as_bytes().to_vec();
            s.shards[0].1 = MANIFEST_FILE_NAME.len() as u64;
        },
        "collision with the manifest file",
    );
}

#[test]
fn hostile_id_ranges_and_lengths_are_rejected() {
    expect_rejected(|s| s.shards[0].3 = 0, "zero file length");
    expect_rejected(|s| s.shards[0].5 = 0, "zero id range length");
    expect_rejected(|s| s.shards[0].5 = 1 << 29, "oversized id range length");
    expect_rejected(|s| s.shards[1].4 = 5, "overlapping id ranges");
    expect_rejected(|s| s.shards[1].4 = 15, "gapped id ranges");
    expect_rejected(|s| s.shards[0].4 = 1, "nonzero first base");
    expect_rejected(
        |s| s.overflow[1] = 2,
        "overflow entry naming a missing shard",
    );
    expect_rejected(|s| s.overflow[0] = u64::MAX, "hostile overflow shard index");
    expect_rejected(
        |s| s.declared_overflow = Some(u64::MAX),
        "overflow count far beyond the payload",
    );
    expect_rejected(
        |s| s.trailing = vec![0; 8],
        "trailing bytes after the payload",
    );
    expect_rejected(
        |s| s.declared_overflow = Some(1),
        "declared overflow shorter than encoded entries",
    );
}

// ---------------------------------------------------------------------------
// Cross-file corruption (manifest intact, shard files hostile)
// ---------------------------------------------------------------------------

fn expect_shard_file_corrupt(dir: &Path, what: &str) {
    match load_sharded(dir) {
        Err(PersistError::Corrupt { what: w, .. }) => assert_eq!(w, "shard file", "{what}"),
        other => panic!("{what}: expected Corrupt shard file, got {other:?}"),
    }
}

#[test]
fn missing_shard_file_fails_closed() {
    let dir = saved_fixture("missing");
    std::fs::remove_file(dir.join(shard_file_name(1))).unwrap();
    match load_sharded(&dir) {
        Err(PersistError::Io { op, .. }) => assert_eq!(op, "read shard file"),
        other => panic!("expected Io, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_shard_file_fails_closed() {
    let dir = saved_fixture("shard_trunc");
    let path = dir.join(shard_file_name(0));
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
    expect_shard_file_corrupt(&dir, "truncated shard file");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flipped_shard_file_fails_closed() {
    let dir = saved_fixture("shard_flip");
    let path = dir.join(shard_file_name(0));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    expect_shard_file_corrupt(&dir, "bit-flipped shard file");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn swapped_shard_files_fail_closed() {
    let dir = saved_fixture("swap");
    let a = dir.join(shard_file_name(0));
    let b = dir.join(shard_file_name(1));
    let bytes_a = std::fs::read(&a).unwrap();
    let bytes_b = std::fs::read(&b).unwrap();
    std::fs::write(&a, &bytes_b).unwrap();
    std::fs::write(&b, &bytes_a).unwrap();
    expect_shard_file_corrupt(&dir, "swapped shard files");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_shard_file_fails_closed() {
    // Checkpoint, mutate + checkpoint again into a second directory, then
    // smuggle the stale first-generation shard file under the new manifest.
    let mut index = fixture_index();
    let dir_old = temp_dir("stale_old");
    save_sharded(&index, &dir_old).unwrap();

    let mut delta = IndexDelta::new();
    delta.insert(vec![0.2, 0.2, 0.2]);
    let report = index.apply(&delta).unwrap();
    index.checkpoint_clean().unwrap();
    let dir_new = temp_dir("stale_new");
    save_sharded(&index, &dir_new).unwrap();

    let touched = index
        .router()
        .locate(report.inserted[0])
        .map_or(0, |(s, _)| s);
    std::fs::copy(
        dir_old.join(shard_file_name(touched)),
        dir_new.join(shard_file_name(touched)),
    )
    .unwrap();
    expect_shard_file_corrupt(&dir_new, "stale shard file");
    std::fs::remove_dir_all(&dir_old).unwrap();
    std::fs::remove_dir_all(&dir_new).unwrap();
}

// ---------------------------------------------------------------------------
// Golden fixture: sharded layout v1 compatibility pin
// ---------------------------------------------------------------------------

const GOLDEN_MANIFEST: &[u8] = include_bytes!("fixtures/golden_shards_v1/manifest.mog1");
const GOLDEN_SHARD_0: &[u8] = include_bytes!("fixtures/golden_shards_v1/shard-0000.mog1");
const GOLDEN_SHARD_1: &[u8] = include_bytes!("fixtures/golden_shards_v1/shard-0001.mog1");

/// Regenerate the committed fixture. Run manually after an *intentional*,
/// version-bumped layout change:
/// `cargo test -p mogul-core --test shard_manifest -- --ignored regenerate`
#[test]
#[ignore = "writes the committed fixture; run only on intentional format changes"]
fn regenerate_golden_fixture() {
    let dir = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_shards_v1"
    );
    save_sharded(&fixture_index(), dir).unwrap();
    eprintln!("wrote {dir}");
}

#[test]
fn golden_fixture_pins_sharded_layout_v1() {
    let info = inspect_manifest_bytes(GOLDEN_MANIFEST).expect("golden manifest must stay loadable");
    assert_eq!(info.shards.len(), 2, "fixture shard count changed");
    assert_eq!(info.dim, 3);
    assert_eq!(info.overflow.len(), 2);
    assert_eq!(
        info.shards
            .iter()
            .map(|e| e.file_name.as_str())
            .collect::<Vec<_>>(),
        ["shard-0000.mog1", "shard-0001.mog1"]
    );

    // Materialize the committed bytes and warm-start from them: answers
    // must match a from-scratch build of the identical corpus (the build
    // is deterministic), overflow ids and all.
    let dir = temp_dir("golden");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(MANIFEST_FILE_NAME), GOLDEN_MANIFEST).unwrap();
    std::fs::write(dir.join(shard_file_name(0)), GOLDEN_SHARD_0).unwrap();
    std::fs::write(dir.join(shard_file_name(1)), GOLDEN_SHARD_1).unwrap();
    let loaded = load_sharded(&dir).unwrap();
    let reference = fixture_index();
    assert_eq!(loaded.epoch(), reference.epoch());
    assert_eq!(loaded.router(), reference.router());
    let (a, b) = (loaded.snapshot(), reference.snapshot());
    assert_eq!(a.item_ids(), b.item_ids());
    assert!(!a.contains(3), "removed id resurfaced");
    let mut ws = ShardedWorkspace::new();
    for id in a.item_ids() {
        assert_eq!(
            a.query_by_id_in(&mut ws, id, 5).unwrap(),
            b.query_by_id_in(&mut ws, id, 5).unwrap(),
            "golden fixture answers diverged at id {id}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
