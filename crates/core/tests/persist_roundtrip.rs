//! Round-trip property suite for the `MOG1` persistence layer: a saved and
//! reloaded index must be **bit-identical** to the in-memory index under
//! every query path — same scores (exact `==` on the IEEE bits), same
//! rankings, same `SearchStats` work counters, same pruning decisions —
//! across both factorizations, all query modes, the scalar and batched
//! engines, and post-update clean epochs of an `UpdatableIndex`.

use mogul_core::persist;
use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy, SnapshotWorkspace};
use mogul_core::{
    BatchWorkspace, MogulConfig, MogulIndex, OutOfSampleConfig, OutOfSampleIndex, SearchMode,
};
use mogul_graph::knn::{knn_graph, KnnConfig};
use proptest::prelude::*;

/// Deterministic two-blob features: enough cluster structure for pruning to
/// fire, parameterized so every case sees a different geometry.
fn blob_features(n: usize, dim: usize, spread: f64, split: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let blob = (i % 2) as f64;
            (0..dim)
                .map(|d| {
                    let wave = ((i * 31 + d * 17) % 13) as f64 / 13.0;
                    blob * split + spread * wave + 0.05 * d as f64
                })
                .collect()
        })
        .collect()
}

fn build_oos(features: &[Vec<f64>], exact: bool) -> OutOfSampleIndex {
    let graph = knn_graph(features, KnnConfig::with_k(4)).unwrap();
    let config = if exact {
        MogulConfig::exact()
    } else {
        MogulConfig::default()
    };
    let index = MogulIndex::build(&graph, config).unwrap();
    OutOfSampleIndex::new(index, features.to_vec(), OutOfSampleConfig::default()).unwrap()
}

fn save_load(oos: &OutOfSampleIndex) -> OutOfSampleIndex {
    let bytes = persist::save_index_to(oos, Vec::new()).unwrap();
    persist::load_index_from_bytes(&bytes).unwrap()
}

/// Exact equality of score vectors, compared on the raw bits.
fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    let a_bits: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
    let b_bits: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a_bits, b_bits, "{what}: scores diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All scalar query paths — every mode, stats included — are
    /// bit-identical after a round trip, for both factorizations.
    #[test]
    fn scalar_queries_round_trip_bit_identically(
        n in 20usize..44,
        dim in 2usize..5,
        spread in 0.3f64..1.2,
        exact in proptest::bool::ANY,
        k in 1usize..8,
    ) {
        let features = blob_features(n, dim, spread, 8.0);
        let original = build_oos(&features, exact);
        let loaded = save_load(&original);

        prop_assert_eq!(loaded.index().num_nodes(), n);
        prop_assert_eq!(loaded.index().factorization(), original.index().factorization());
        prop_assert_eq!(loaded.index().ordering(), original.index().ordering());
        assert_bits_eq(loaded.index().factor_d(), original.index().factor_d(), "factor D");
        prop_assert_eq!(loaded.index().factor_l(), original.index().factor_l());

        for q in [0, n / 3, n - 1] {
            for mode in [SearchMode::Pruned, SearchMode::NoPruning, SearchMode::FullSubstitution] {
                let a = original.index().search_with_stats(q, k, mode).unwrap();
                let b = loaded.index().search_with_stats(q, k, mode).unwrap();
                prop_assert_eq!(a, b, "mode {:?}, query {}", mode, q);
            }
            assert_bits_eq(
                &original.index().all_scores(q).unwrap(),
                &loaded.index().all_scores(q).unwrap(),
                "all_scores",
            );
        }

        // Weighted multi-node queries (the out-of-sample phase-2 shape).
        let weights = vec![(0usize, 0.7), (n / 2, 0.2), (n - 1, 0.1)];
        let a = original.index().search_weighted(&weights, k, SearchMode::Pruned).unwrap();
        let b = loaded.index().search_weighted(&weights, k, SearchMode::Pruned).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Out-of-sample queries (phase 1 + phase 2) and the batched engines
    /// are bit-identical after a round trip.
    #[test]
    fn oos_and_batched_queries_round_trip_bit_identically(
        n in 24usize..40,
        spread in 0.3f64..1.0,
        exact in proptest::bool::ANY,
    ) {
        let dim = 3;
        let features = blob_features(n, dim, spread, 6.0);
        let original = build_oos(&features, exact);
        let loaded = save_load(&original);

        // Out-of-sample probes: perturbed database vectors.
        let probes: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let mut f = features[(i * 7) % n].clone();
                f[0] += 0.21 * (i as f64 + 0.5);
                f
            })
            .collect();
        for probe in &probes {
            let a = original.query(probe, 5).unwrap();
            let b = loaded.query(probe, 5).unwrap();
            prop_assert_eq!(&a.top_k, &b.top_k);
            prop_assert_eq!(&a.neighbors, &b.neighbors);
            prop_assert_eq!(a.stats, b.stats);
        }

        // Batched in-database search: original vs loaded, and loaded
        // batched vs loaded scalar (the panel engine sees identical state).
        let queries: Vec<usize> = (0..n).step_by(3).collect();
        let mut ws_a = BatchWorkspace::new();
        let mut ws_b = BatchWorkspace::new();
        let a = original.index().search_batch_in(&mut ws_a, &queries, 4, SearchMode::Pruned).unwrap();
        let b = loaded.index().search_batch_in(&mut ws_b, &queries, 4, SearchMode::Pruned).unwrap();
        prop_assert_eq!(&a, &b);
        for (i, &q) in queries.iter().enumerate() {
            let scalar = loaded.index().search_with_stats(q, 4, SearchMode::Pruned).unwrap();
            prop_assert_eq!(&b[i], &scalar);
        }

        // Batched out-of-sample.
        let probe_refs: Vec<&[f64]> = probes.iter().map(|f| f.as_slice()).collect();
        let a = original.oos_batch(&mut ws_a, &probe_refs);
        let b = loaded.oos_batch(&mut ws_b, &probe_refs);
        prop_assert_eq!(a, b);
    }

    /// An `UpdatableIndex` survives save → load across a post-update clean
    /// epoch: identical snapshot answers, identical stable ids, and the
    /// *next* (corrected) epoch built on the loaded state matches the one
    /// built on the original state bit for bit.
    #[test]
    fn updatable_round_trip_preserves_ids_and_future_epochs(
        extra in 1usize..4,
        remove_one in proptest::bool::ANY,
        exact in proptest::bool::ANY,
    ) {
        let features = blob_features(26, 3, 0.8, 7.0);
        let mut builder = IndexBuilder::new()
            .knn_k(3)
            .rebuild_policy(RebuildPolicy::never());
        if exact {
            builder = builder.exact_ranking();
        }
        let mut original = builder.build(features.clone()).unwrap();

        // Mutate, then rebuild so the epoch is clean (persistable).
        let mut delta = IndexDelta::new();
        for e in 0..extra {
            delta.insert(vec![0.4 + 0.3 * e as f64, 0.2, 0.1]);
        }
        if remove_one {
            delta.remove(5);
        }
        original.apply(&delta).unwrap();
        original.rebuild().unwrap();

        let bytes = persist::save_updatable_to(&original, Vec::new()).unwrap();
        let mut loaded = persist::load_updatable_from_bytes(&bytes).unwrap();

        prop_assert_eq!(loaded.epoch(), original.epoch());
        prop_assert_eq!(loaded.len(), original.len());
        let snap_a = original.snapshot();
        let snap_b = loaded.snapshot();
        prop_assert!(snap_b.is_clean());
        prop_assert_eq!(snap_a.item_ids(), snap_b.item_ids());
        let mut ws = SnapshotWorkspace::new();
        for id in snap_a.item_ids() {
            prop_assert_eq!(
                snap_a.query_by_id(id, 4).unwrap(),
                snap_b.query_by_id_in(&mut ws, id, 4).unwrap()
            );
        }
        let probe = vec![0.5, 0.25, 0.12];
        let a = snap_a.query_by_feature(&probe, 4).unwrap();
        let b = snap_b.query_by_feature(&probe, 4).unwrap();
        prop_assert_eq!(a.top_k, b.top_k);
        prop_assert_eq!(a.neighbors, b.neighbors);

        // The loaded writer state supports further updates identically:
        // apply the same delta to both and compare the corrected epochs.
        let mut next = IndexDelta::new();
        next.insert(vec![0.33, 0.44, 0.05]);
        next.remove(2);
        let ra = original.apply(&next).unwrap();
        let rb = loaded.apply(&next).unwrap();
        prop_assert_eq!(&ra.inserted, &rb.inserted, "stable id allocation diverged");
        prop_assert_eq!(ra.debt, rb.debt);
        let snap_a = original.snapshot();
        let snap_b = loaded.snapshot();
        prop_assert_eq!(snap_a.correction_rank(), snap_b.correction_rank());
        for id in snap_a.item_ids() {
            prop_assert_eq!(
                snap_a.query_by_id(id, 4).unwrap(),
                snap_b.query_by_id(id, 4).unwrap(),
                "corrected epoch diverged at id {}", id
            );
        }
    }
}

/// Extension trait making the batched out-of-sample comparison above concise.
trait OosBatch {
    fn oos_batch(
        &self,
        ws: &mut BatchWorkspace,
        probes: &[&[f64]],
    ) -> Vec<(mogul_core::TopKResult, Vec<usize>, mogul_core::SearchStats)>;
}

impl OosBatch for OutOfSampleIndex {
    fn oos_batch(
        &self,
        ws: &mut BatchWorkspace,
        probes: &[&[f64]],
    ) -> Vec<(mogul_core::TopKResult, Vec<usize>, mogul_core::SearchStats)> {
        self.query_batch_in(ws, probes, 4)
            .unwrap()
            .into_iter()
            .map(|r| (r.top_k, r.neighbors, r.stats))
            .collect()
    }
}

/// File-based save/load (as opposed to the in-memory byte round trips
/// above): the bytes that land on disk load back identically, and the
/// temp-file rename leaves no debris.
#[test]
fn file_round_trip_and_atomic_write() {
    let features = blob_features(30, 3, 0.7, 7.0);
    let original = build_oos(&features, false);
    let dir = std::env::temp_dir().join(format!("mogul_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.mog1");
    persist::save_index(&original, &path).unwrap();
    // The atomic write leaves exactly the target file behind, no temp files.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .filter(|name| name != "index.mog1")
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );

    let info = persist::inspect(&path).unwrap();
    assert_eq!(info.version, persist::FORMAT_VERSION);
    assert_eq!(info.items, 30);
    assert_eq!(info.dim, 3);

    let loaded = persist::load_index(&path).unwrap();
    for q in [0usize, 11, 29] {
        assert_eq!(
            original.index().search(q, 5).unwrap(),
            loaded.index().search(q, 5).unwrap()
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The EMR baseline's anchor state round-trips: scores for in-database and
/// out-of-sample queries are bit-identical.
#[test]
fn emr_round_trip_is_bit_identical() {
    use mogul_core::ranking::Ranker;
    use mogul_core::{EmrConfig, EmrSolver, MrParams};
    let features = blob_features(40, 4, 0.9, 6.0);
    let solver =
        EmrSolver::new(&features, MrParams::default(), EmrConfig::with_anchors(8)).unwrap();
    let bytes = persist::save_emr_to(&solver, Vec::new()).unwrap();
    let loaded = persist::load_emr_from_bytes(&bytes).unwrap();
    assert_eq!(loaded.num_anchors(), solver.num_anchors());
    for q in [0usize, 13, 39] {
        assert_bits_eq(
            &solver.scores(q).unwrap(),
            &loaded.scores(q).unwrap(),
            "emr in-database scores",
        );
    }
    let probe = &features[21];
    assert_bits_eq(
        &solver.scores_for_feature(probe).unwrap(),
        &loaded.scores_for_feature(probe).unwrap(),
        "emr out-of-sample scores",
    );
}
