//! Sharded-vs-unsharded equivalence battery.
//!
//! Three tiers, each pinning a different face of the scatter-gather design:
//!
//! 1. **S = 1 is the identity** — a single-shard [`ShardedIndex`] must be
//!    bit-identical to a plain [`UpdatableIndex`] built on the same input,
//!    across scalar, batch, out-of-sample and post-update paths.
//! 2. **Sharding is per-group exact** (property test, S ∈ {1, 2, 4, 7},
//!    ragged cluster-aligned groups): against reference indexes built
//!    independently on each group, every sharded answer — scalar and batch,
//!    in-database and out-of-sample, before and after routed insert/remove
//!    deltas — is **bit-identical** (same ids, same score bits), in both
//!    incomplete and MogulE modes. Sharded answers are per-shard answers
//!    plus id translation, nothing else.
//! 3. **Against the monolithic unsharded index** the union graph is only
//!    equal when no k-NN edge would cross a shard boundary, so the
//!    deterministic tier builds well-separated translated clusters (group
//!    size > k-NN degree keeps the monolithic graph disconnected along the
//!    partition): MogulE answers agree to 1e-9 per score, with the answer
//!    *sets* equal up to 1e-9 ties — the monolithic factorization runs the
//!    same arithmetic in a different node order (one global Algorithm-1
//!    permutation vs one per shard), and FP addition is not associative, so
//!    exact ties can resolve differently at the 1e-15 level. The incomplete
//!    factorization matches within the documented 0.05 tolerance (the two
//!    orderings yield two different incomplete approximations — same class
//!    of divergence as the update-equivalence battery).
//!
//! A regression test for the `SearchStats` single-index assumption rides
//! along: multi-probe scatter-gather must *sum* the per-shard counters, not
//! clobber them with whichever shard answered last.

use mogul_core::shard::{ShardedConfig, ShardedIndex, ShardedWorkspace};
use mogul_core::update::{IndexBuilder, IndexDelta, UpdatableIndex};
use mogul_core::SearchStats;
use proptest::collection::vec;
use proptest::prelude::*;

/// Incomplete-mode score slack for tier 3 (two different incomplete
/// approximations of the same block-diagonal `W⁻¹`; compare the 0.05 the
/// update-equivalence battery documents).
const TOLERANCE: f64 = 0.05;

const QUERY_K: usize = 3;
const KNN_K: usize = 3;

fn builder(exact: bool) -> IndexBuilder {
    let b = IndexBuilder::new().knn_k(KNN_K);
    if exact {
        b.exact_ranking()
    } else {
        b
    }
}

fn assert_bit_identical(a: &mogul_core::TopKResult, b: &mogul_core::TopKResult, what: &str) {
    assert_eq!(a.nodes(), b.nodes(), "{what}: ranked ids diverge");
    for (x, y) in a.items().iter().zip(b.items().iter()) {
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{what}: score bits diverge at id {} ({} vs {})",
            x.node,
            x.score,
            y.score
        );
    }
}

// ---------------------------------------------------------------------------
// Tier 1: S = 1 is the identity
// ---------------------------------------------------------------------------

#[test]
fn single_shard_is_bit_identical_to_monolithic() {
    let features: Vec<Vec<f64>> = (0..24)
        .map(|i| {
            vec![
                (i % 7) as f64 / 7.0,
                (i % 5) as f64 / 5.0,
                (i % 3) as f64 / 3.0,
            ]
        })
        .collect();
    for exact in [false, true] {
        let mut mono = builder(exact).build(features.clone()).unwrap();
        let (mut sharded, report) = ShardedIndex::build(
            features.clone(),
            ShardedConfig::with_shards(1).builder(builder(exact)),
        )
        .unwrap();
        assert_eq!(report.groups, vec![(0..24).collect::<Vec<_>>()]);
        assert_eq!(report.id_of_position, (0..24).collect::<Vec<_>>());

        // The same delta drives both sides (one shard ⇒ routing is trivial).
        let mut delta = IndexDelta::new();
        delta
            .insert(vec![0.1, 0.9, 0.4])
            .insert(vec![0.8, 0.2, 0.6])
            .remove(3)
            .remove(17);
        let mono_report = mono.apply(&delta).unwrap();
        let sharded_report = sharded.apply(&delta).unwrap();
        assert_eq!(sharded_report.inserted, mono_report.inserted);
        assert_eq!(sharded_report.removed, 2);
        assert_eq!(sharded_report.touched_shards, vec![0]);

        let mono_snap = mono.snapshot();
        let shard_snap = sharded.snapshot();
        assert_eq!(shard_snap.item_ids(), mono_snap.item_ids());
        assert_eq!(shard_snap.len(), mono_snap.len());

        let live = mono_snap.item_ids();
        let mut ws = ShardedWorkspace::new();
        for &id in &live {
            let a = shard_snap.query_by_id_in(&mut ws, id, QUERY_K).unwrap();
            let b = mono_snap.query_by_id(id, QUERY_K).unwrap();
            assert_bit_identical(&a, &b, &format!("exact={exact} scalar id {id}"));
        }
        let batch_a = shard_snap
            .query_batch_by_id_in(&mut ws, &live, QUERY_K)
            .unwrap();
        let mut mono_ws = mogul_core::update::SnapshotWorkspace::new();
        let batch_b = mono_snap
            .query_batch_by_id_in(&mut mono_ws, &live, QUERY_K)
            .unwrap();
        for ((a, b), &id) in batch_a.iter().zip(&batch_b).zip(&live) {
            assert_bit_identical(a, b, &format!("exact={exact} batch id {id}"));
        }

        let probe = vec![0.45, 0.55, 0.5];
        let a = shard_snap
            .query_by_feature_in(&mut ws, &probe, QUERY_K)
            .unwrap();
        let b = mono_snap.query_by_feature(&probe, QUERY_K).unwrap();
        assert_bit_identical(&a.top_k, &b.top_k, &format!("exact={exact} oos"));
        assert_eq!(a.neighbors, b.neighbors, "exact={exact} oos neighbors");
        assert_eq!(a.stats, b.stats, "exact={exact} oos stats");
    }
}

// ---------------------------------------------------------------------------
// Tier 2: sharded == per-group references, bit-identically
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Scenario {
    features: Vec<Vec<f64>>,
    shards: usize,
    exact: bool,
    /// `(kind, feature_values, removal_selector)` — kind 0 removes.
    ops: Vec<(u8, Vec<f64>, usize)>,
    probes: Vec<Vec<f64>>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (30usize..44, 3usize..5, 0usize..4, proptest::bool::ANY).prop_flat_map(
        |(n, dim, shard_sel, exact)| {
            let shards = [1usize, 2, 4, 7][shard_sel];
            let features = vec(vec(0.0f64..1.0, dim..(dim + 1)), n..(n + 1));
            let ops = vec((0u8..4, vec(0.0f64..1.0, 8..9), 0usize..1_000_000), 3..9);
            let probes = vec(vec(0.0f64..1.0, dim..(dim + 1)), 2..4);
            (features, ops, probes).prop_map(move |(features, ops, probes)| Scenario {
                features,
                shards,
                exact,
                ops,
                probes,
            })
        },
    )
}

/// Reference: one standalone [`UpdatableIndex`] per partition group, driven
/// with exactly the per-shard deltas the sharded index routes.
struct References {
    indexes: Vec<UpdatableIndex>,
}

impl References {
    fn translated_query(
        &self,
        sharded: &ShardedIndex,
        shard: usize,
        local: usize,
        k: usize,
    ) -> mogul_core::TopKResult {
        let raw = self.indexes[shard]
            .snapshot()
            .query_by_id(local, k)
            .unwrap();
        mogul_core::TopKResult::new(
            raw.items()
                .iter()
                .map(|item| mogul_core::RankedNode {
                    node: sharded.router().global_of_local(shard, item.node).unwrap(),
                    score: item.score,
                })
                .collect(),
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_answers_are_bit_identical_to_per_group_references(s in scenario()) {
        let b = builder(s.exact);
        let (mut sharded, report) = ShardedIndex::build(
            s.features.clone(),
            ShardedConfig::with_shards(s.shards).builder(b),
        )
        .unwrap();
        prop_assert_eq!(report.groups.len(), s.shards);

        let mut refs = References {
            indexes: report
                .groups
                .iter()
                .map(|group| {
                    b.build(group.iter().map(|&p| s.features[p].clone()).collect())
                        .unwrap()
                })
                .collect(),
        };

        // Drive both sides with the same global deltas; the reference side
        // re-derives the routing from the sharded index's own router and
        // pre-delta centroids, so any routing drift shows up as divergence.
        let dim = s.features[0].len();
        let mut live: Vec<usize> = report.id_of_position.clone();
        let mut shard_live: Vec<usize> =
            report.groups.iter().map(Vec::len).collect();
        for chunk in s.ops.chunks(3) {
            let mut delta = IndexDelta::new();
            let mut ref_deltas: Vec<IndexDelta> =
                (0..s.shards).map(|_| IndexDelta::new()).collect();
            let mut staged_removals = Vec::new();
            let mut staged_inserts = 0usize;
            for (kind, values, selector) in chunk {
                if *kind == 0 && !live.is_empty() {
                    let mut pos = selector % live.len();
                    let mut ok = false;
                    for _ in 0..live.len() {
                        let id = live[pos];
                        let (shard, _) = sharded.router().locate(id).unwrap();
                        if !staged_removals.contains(&id) && shard_live[shard] > 1 {
                            ok = true;
                            break;
                        }
                        pos = (pos + 1) % live.len();
                    }
                    if ok {
                        let id = live[pos];
                        let (shard, local) = sharded.router().locate(id).unwrap();
                        staged_removals.push(id);
                        shard_live[shard] -= 1;
                        delta.remove(id);
                        ref_deltas[shard].remove(local);
                        continue;
                    }
                }
                let feature = values[..dim].to_vec();
                let shard = sharded.route_insert(&feature).unwrap();
                shard_live[shard] += 1;
                delta.insert(feature.clone());
                ref_deltas[shard].insert(feature);
                staged_inserts += 1;
            }
            let sharded_report = sharded.apply(&delta).unwrap();
            prop_assert_eq!(sharded_report.inserted.len(), staged_inserts);
            for (reference, ref_delta) in refs.indexes.iter_mut().zip(&ref_deltas) {
                reference.apply(ref_delta).unwrap();
            }
            live.retain(|id| !staged_removals.contains(id));
            live.extend(sharded_report.inserted);
        }

        let snap = sharded.snapshot();
        live.sort_unstable();
        prop_assert_eq!(snap.item_ids(), live.clone());

        // Scalar and batch in-database paths, bit-identical.
        let mut ws = ShardedWorkspace::new();
        for &id in &live {
            let (shard, local) = sharded.router().locate(id).unwrap();
            let got = snap.query_by_id_in(&mut ws, id, QUERY_K).unwrap();
            let want = refs.translated_query(&sharded, shard, local, QUERY_K);
            assert_bit_identical(&got, &want, &format!("scalar id {id}"));
        }
        let batch = snap.query_batch_by_id_in(&mut ws, &live, QUERY_K).unwrap();
        for (&id, got) in live.iter().zip(&batch) {
            let (shard, local) = sharded.router().locate(id).unwrap();
            let want = refs.translated_query(&sharded, shard, local, QUERY_K);
            assert_bit_identical(got, &want, &format!("batch id {id}"));
        }

        // Out-of-sample: the sharded answer is the routed reference shard's
        // answer after id translation — scalar and batch paths agree.
        for probe in &s.probes {
            let routed = sharded.route_insert(probe).unwrap();
            let got = snap.query_by_feature_in(&mut ws, probe, QUERY_K).unwrap();
            let want = refs.indexes[routed]
                .snapshot()
                .query_by_feature(probe, QUERY_K)
                .unwrap();
            let want_ids: Vec<usize> = want
                .top_k
                .items()
                .iter()
                .map(|i| sharded.router().global_of_local(routed, i.node).unwrap())
                .collect();
            prop_assert_eq!(got.top_k.nodes(), want_ids);
            for (x, y) in got.top_k.items().iter().zip(want.top_k.items()) {
                prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
            prop_assert_eq!(got.stats, want.stats);
            let batch = snap
                .query_batch_by_feature_in(&mut ws, &[probe.as_slice()], QUERY_K)
                .unwrap();
            assert_bit_identical(&batch[0].top_k, &got.top_k, "oos batch vs scalar");
        }
    }
}

// ---------------------------------------------------------------------------
// Tier 3: against the monolithic unsharded index
// ---------------------------------------------------------------------------

/// `groups` translated copies of one cluster, far enough apart that the
/// monolithic k-NN graph has no cross-group edge (group size > `KNN_K`).
fn translated_clusters(groups: usize, per_group: usize, dim: usize) -> Vec<Vec<f64>> {
    assert!(per_group > KNN_K);
    let mut features = Vec::new();
    for g in 0..groups {
        for i in 0..per_group {
            let mut f: Vec<f64> = (0..dim)
                .map(|d| ((i * 13 + d * 7) % 11) as f64 / 11.0)
                .collect();
            // Translation preserves every pairwise distance, so each shard
            // estimates the same sigma and builds a congruent graph.
            f[0] += 1_000.0 * g as f64;
            features.push(f);
        }
    }
    features
}

#[test]
fn sharded_matches_unsharded_exactly_in_mogule_mode() {
    let (groups, per_group, dim) = (4usize, 6usize, 3usize);
    let features = translated_clusters(groups, per_group, dim);
    let mono = builder(true).build(features.clone()).unwrap();
    let (sharded, report) = ShardedIndex::build(
        features.clone(),
        ShardedConfig::with_shards(groups).builder(builder(true)),
    )
    .unwrap();

    // Premise: the partitioner recovered the translated clusters, so the
    // union graph equals the monolithic graph.
    for group in &report.groups {
        let blob = group[0] / per_group;
        assert!(
            group.iter().all(|&p| p / per_group == blob),
            "partition split a cluster: {group:?}"
        );
        assert_eq!(group.len(), per_group);
    }

    let mono_snap = mono.snapshot();
    let snap = sharded.snapshot();
    let mut ws = ShardedWorkspace::new();
    // Sharded global id of every input position, inverted.
    let mut position_of_id = vec![0usize; features.len()];
    for (pos, &id) in report.id_of_position.iter().enumerate() {
        position_of_id[id] = pos;
    }

    for pos in 0..features.len() {
        let global = report.id_of_position[pos];
        let a = snap.query_by_id_in(&mut ws, global, QUERY_K).unwrap();
        let b = mono_snap.query_by_id(pos, QUERY_K).unwrap();
        assert_eq!(a.items().len(), b.items().len(), "query position {pos}");

        // All live scores on both sides, for the tie-robust set comparison.
        let all_mono = mono_snap.query_by_id(pos, features.len()).unwrap();
        let all_shard = snap
            .query_by_id_in(&mut ws, global, features.len())
            .unwrap();

        let kth_a = a.items().last().unwrap().score;
        let kth_b = b.items().last().unwrap().score;
        assert!(
            (kth_a - kth_b).abs() < 1e-9,
            "query position {pos}: k-th thresholds {kth_a} vs {kth_b}"
        );
        // Every sharded pick scores within 1e-9 of the monolithic answer
        // and clears the monolithic k-th threshold (up to the same slack).
        for item in a.items() {
            let mono_score = all_mono.score_of(position_of_id[item.node]).unwrap_or(0.0);
            assert!(
                (item.score - mono_score).abs() < 1e-9,
                "query position {pos}: {item:?} vs monolithic {mono_score}"
            );
            assert!(
                mono_score >= kth_b - 1e-9,
                "query position {pos}: {item:?} under monolithic threshold {kth_b}"
            );
        }
        // And symmetrically: every monolithic pick clears the sharded
        // threshold (cross-shard scores are exactly 0 and never selected —
        // group size exceeds k, so every pick is in-group and positive).
        for item in b.items() {
            let shard_score = all_shard
                .score_of(report.id_of_position[item.node])
                .unwrap_or(0.0);
            assert!(
                shard_score >= kth_a - 1e-9,
                "query position {pos}: monolithic pick {item:?} under sharded threshold {kth_a}"
            );
        }
    }
}

#[test]
fn sharded_matches_unsharded_within_tolerance_in_incomplete_mode() {
    let (groups, per_group, dim) = (3usize, 7usize, 3usize);
    let features = translated_clusters(groups, per_group, dim);
    let mono = builder(false).build(features.clone()).unwrap();
    let (sharded, report) = ShardedIndex::build(
        features.clone(),
        ShardedConfig::with_shards(groups).builder(builder(false)),
    )
    .unwrap();

    let mono_snap = mono.snapshot();
    let snap = sharded.snapshot();
    let mut ws = ShardedWorkspace::new();
    let mut position_of_id = vec![0usize; features.len()];
    for (pos, &id) in report.id_of_position.iter().enumerate() {
        position_of_id[id] = pos;
    }

    for pos in 0..features.len() {
        let global = report.id_of_position[pos];
        let a = snap.query_by_id_in(&mut ws, global, QUERY_K).unwrap();
        let b = mono_snap.query_by_id(pos, QUERY_K).unwrap();
        let kth_best = b.items().last().unwrap().score;
        let all = mono_snap.query_by_id(pos, features.len()).unwrap();
        for item in a.items() {
            let mono_score = all.score_of(position_of_id[item.node]).unwrap_or(0.0);
            assert!(
                mono_score >= kth_best - TOLERANCE,
                "position {pos}: sharded pick {item:?} under monolithic threshold {kth_best}"
            );
            assert!(
                (item.score - mono_score).abs() < TOLERANCE,
                "position {pos}: score drift {item:?} vs {mono_score}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// SearchStats aggregation regression (the latent single-index assumption)
// ---------------------------------------------------------------------------

#[test]
fn multi_probe_stats_aggregate_per_shard_instead_of_clobbering() {
    let features = translated_clusters(3, 8, 3);
    let (sharded, _) = ShardedIndex::build(
        features,
        ShardedConfig::with_shards(3)
            .shard_probes(3)
            .builder(builder(false)),
    )
    .unwrap();
    let snap = sharded.snapshot();
    let mut ws = ShardedWorkspace::new();

    let probe = vec![500.0, 0.4, 0.4]; // between the translated clusters
    let (result, scatter) = snap
        .query_by_feature_with_stats_in(&mut ws, &probe, QUERY_K)
        .unwrap();
    assert_eq!(scatter.shards_total, 3);
    assert_eq!(scatter.shards_probed, 3);
    assert_eq!(scatter.shards_skipped, 0);

    // The reported counters must be the sum over every probed shard.
    let mut expected = SearchStats::default();
    let mut inner = mogul_core::update::SnapshotWorkspace::new();
    for shard in snap.shards() {
        let res = shard
            .query_by_feature_in(&mut inner, &probe, QUERY_K)
            .unwrap();
        expected.merge(&res.stats);
    }
    assert_eq!(result.stats, expected, "stats were clobbered, not summed");
    assert_eq!(scatter.search, expected);
    assert!(
        expected.nodes_scored > 0,
        "regression premise: at least one shard scored nodes"
    );

    // Single-probe in-database queries record the other shards as skipped.
    let some_id = snap.item_ids()[0];
    let (_, scatter) = snap
        .query_by_id_with_stats_in(&mut ws, some_id, QUERY_K)
        .unwrap();
    assert_eq!(scatter.shards_probed, 1);
    assert_eq!(scatter.shards_skipped, 2);
}
