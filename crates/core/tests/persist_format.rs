//! Format-level hardening of the `MOG1` container: the corruption matrix
//! (truncation, bit flips in every region, wrong magic, future versions,
//! missing sections) must fail **closed** — a typed [`PersistError`], never
//! a panic, never a silently wrong index — and the committed golden fixture
//! pins format version 1 so any incompatible layout change must bump
//! [`persist::FORMAT_VERSION`] rather than silently break old files.

use mogul_core::persist::{self, FileFlavor, PersistError, SectionKind, SectionWriter};
use mogul_core::update::{IndexBuilder, IndexDelta, RebuildPolicy};
use mogul_core::{MogulConfig, MogulIndex, OutOfSampleConfig, OutOfSampleIndex};
use mogul_graph::knn::{knn_graph, KnnConfig};

/// Small deterministic corpus shared by every test here.
fn features() -> Vec<Vec<f64>> {
    (0..24)
        .map(|i| {
            let blob = (i % 2) as f64;
            vec![
                blob * 7.0 + ((i * 31) % 13) as f64 / 13.0,
                blob * 7.0 + ((i * 17) % 11) as f64 / 11.0,
                0.1 * (i % 5) as f64,
            ]
        })
        .collect()
}

fn index_bytes() -> Vec<u8> {
    let features = features();
    let graph = knn_graph(&features, KnnConfig::with_k(4)).unwrap();
    let index = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
    let oos = OutOfSampleIndex::new(index, features, OutOfSampleConfig::default()).unwrap();
    persist::save_index_to(&oos, Vec::new()).unwrap()
}

fn updatable_bytes() -> Vec<u8> {
    let index = IndexBuilder::new()
        .knn_k(3)
        .rebuild_policy(RebuildPolicy::never())
        .build(features())
        .unwrap();
    persist::save_updatable_to(&index, Vec::new()).unwrap()
}

// ---------------------------------------------------------------------------
// Corruption matrix
// ---------------------------------------------------------------------------

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = index_bytes();
    bytes[0..4].copy_from_slice(b"NOPE");
    match persist::load_index_from_bytes(&bytes) {
        Err(PersistError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // A random non-index file fails the same way.
    match persist::load_index_from_bytes(b"this is not an index file at all") {
        Err(PersistError::BadMagic { .. }) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn unsupported_future_version_is_rejected() {
    let mut bytes = index_bytes();
    for future in [2u32, 7, u32::MAX] {
        bytes[4..8].copy_from_slice(&future.to_le_bytes());
        match persist::load_index_from_bytes(&bytes) {
            Err(PersistError::UnsupportedVersion { found }) => assert_eq!(found, future),
            other => panic!("expected UnsupportedVersion({future}), got {other:?}"),
        }
    }
}

#[test]
fn every_truncation_fails_closed() {
    let bytes = index_bytes();
    // Every prefix, including the empty file, must return a typed error —
    // never panic, never produce an index.
    for len in 0..bytes.len() {
        assert!(
            persist::load_index_from_bytes(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes loaded successfully",
            bytes.len()
        );
        assert!(persist::inspect_bytes(&bytes[..len]).is_err());
    }
    // And the untruncated file still loads (the sweep had no side effects).
    assert!(persist::load_index_from_bytes(&bytes).is_ok());
}

#[test]
fn a_bit_flip_in_each_section_is_caught_by_its_checksum() {
    let bytes = updatable_bytes();
    let info = persist::inspect_bytes(&bytes).unwrap();
    assert_eq!(
        info.sections.len(),
        8,
        "expected all eight v1 sections in an updatable file: {info}"
    );
    for section in &info.sections {
        let mut corrupted = bytes.clone();
        let target = section.offset + section.len / 2;
        corrupted[target] ^= 0x10;
        match persist::load_updatable_from_bytes(&corrupted) {
            Err(PersistError::ChecksumMismatch { section: name }) => {
                assert_eq!(name, section.name, "flip at byte {target}");
            }
            other => panic!(
                "bit flip in section '{}' gave {other:?} instead of ChecksumMismatch",
                section.name
            ),
        }
    }
}

#[test]
fn bit_flips_anywhere_in_the_file_fail_closed() {
    // Beyond the per-section flips above: flip a bit at every 7th byte of
    // the whole file (header, payloads, table, footer — everything) and
    // demand a typed error each time. No region of the file is unprotected.
    let bytes = index_bytes();
    for pos in (0..bytes.len()).step_by(7) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0x04;
        assert!(
            persist::load_index_from_bytes(&corrupted).is_err(),
            "bit flip at byte {pos}/{} went undetected",
            bytes.len()
        );
    }
}

#[test]
fn table_and_footer_corruption_is_typed() {
    let bytes = index_bytes();
    // Flip inside the section table (between last payload and footer).
    let info = persist::inspect_bytes(&bytes).unwrap();
    let payload_end = info
        .sections
        .iter()
        .map(|s| s.offset + s.len)
        .max()
        .unwrap();
    let mut corrupted = bytes.clone();
    corrupted[payload_end + 3] ^= 0x01;
    match persist::load_index_from_bytes(&corrupted) {
        Err(PersistError::Corrupt { .. }) => {}
        other => panic!("table corruption gave {other:?}"),
    }
    // Destroy the trailer magic.
    let mut corrupted = bytes.clone();
    let n = corrupted.len();
    corrupted[n - 1] ^= 0xFF;
    match persist::load_index_from_bytes(&corrupted) {
        Err(PersistError::Corrupt { what, .. }) => assert_eq!(what, "file footer"),
        other => panic!("footer corruption gave {other:?}"),
    }
    // A section count pointing past the file.
    let mut corrupted = bytes.clone();
    let n = corrupted.len();
    corrupted[n - 24..n - 16].copy_from_slice(&u64::MAX.to_le_bytes());
    match persist::load_index_from_bytes(&corrupted) {
        Err(PersistError::Corrupt { what, .. }) => assert_eq!(what, "section table"),
        other => panic!("hostile section count gave {other:?}"),
    }
}

#[test]
fn missing_sections_are_reported_by_name() {
    // A container holding only the meta section: structurally valid, but
    // every loader must report the first section it cannot find.
    let bytes = index_bytes();
    let info = persist::inspect_bytes(&bytes).unwrap();
    let meta = info
        .sections
        .iter()
        .find(|s| s.name == "meta")
        .expect("meta section");
    let mut writer = SectionWriter::new(Vec::new()).unwrap();
    writer
        .write_section(
            SectionKind::Meta,
            &bytes[meta.offset..meta.offset + meta.len],
        )
        .unwrap();
    let crafted = writer.finish().unwrap();
    match persist::load_index_from_bytes(&crafted) {
        Err(PersistError::MissingSection { section }) => assert_eq!(section, "ordering"),
        other => panic!("expected MissingSection, got {other:?}"),
    }
}

#[test]
fn unknown_sections_are_tolerated_within_a_version() {
    // Forward compatibility inside v1: a file carrying an extra section
    // with an unknown kind code still loads, and `inspect` lists it.
    let bytes = index_bytes();
    let info = persist::inspect_bytes(&bytes).unwrap();
    let mut writer = SectionWriter::new(Vec::new()).unwrap();
    for section in &info.sections {
        writer
            .write_raw_section(
                section.code,
                &bytes[section.offset..section.offset + section.len],
            )
            .unwrap();
    }
    writer
        .write_raw_section(0xBEEF, b"from the future")
        .unwrap();
    let crafted = writer.finish().unwrap();

    let crafted_info = persist::inspect_bytes(&crafted).unwrap();
    assert_eq!(crafted_info.sections.len(), info.sections.len() + 1);
    assert!(crafted_info.sections.iter().any(|s| s.name == "unknown"));

    let original = persist::load_index_from_bytes(&bytes).unwrap();
    let crafted = persist::load_index_from_bytes(&crafted).unwrap();
    assert_eq!(
        original.index().search(3, 5).unwrap(),
        crafted.index().search(3, 5).unwrap()
    );
}

/// Rebuild a container with one section's payload replaced (checksums are
/// recomputed, so the result is "valid" — only the payload is hostile).
fn rebuild_with_section(bytes: &[u8], target: &str, payload: &[u8]) -> Vec<u8> {
    let info = persist::inspect_bytes(bytes).unwrap();
    let mut writer = SectionWriter::new(Vec::new()).unwrap();
    for s in &info.sections {
        if s.name == target {
            writer.write_raw_section(s.code, payload).unwrap();
        } else {
            writer
                .write_raw_section(s.code, &bytes[s.offset..s.offset + s.len])
                .unwrap();
        }
    }
    writer.finish().unwrap()
}

#[test]
fn hostile_counts_fail_closed_without_allocating() {
    // Checksum-*valid* crafted payloads whose declared counts would demand
    // allocations unrelated to the file size must be rejected by
    // validation, not by the allocator.
    use mogul_sparse::persist::put_usize;
    let bytes = updatable_bytes();
    let info = persist::inspect_bytes(&bytes).unwrap();

    // Graph section declaring 2^60 nodes (isolated nodes carry no payload
    // bytes, so only the cross-check against the meta item count stops it).
    let graph = info.sections.iter().find(|s| s.name == "graph").unwrap();
    let mut payload = bytes[graph.offset..graph.offset + graph.len].to_vec();
    payload[..8].copy_from_slice(&(1u64 << 60).to_le_bytes());
    match persist::load_updatable_from_bytes(&rebuild_with_section(&bytes, "graph", &payload)) {
        Err(PersistError::SectionDecode { section, .. }) => assert_eq!(section, "graph"),
        other => panic!("hostile graph node count gave {other:?}"),
    }

    // Updatable section declaring a next-id counter of 2^60 (the id → node
    // table is sized by it; the format caps it at persist::MAX_STABLE_IDS).
    let updatable = info
        .sections
        .iter()
        .find(|s| s.name == "updatable")
        .unwrap();
    let mut payload = bytes[updatable.offset..updatable.offset + updatable.len].to_vec();
    // Layout: sigma, knn_k, max_support, fraction, 3 clustering fields,
    // epoch (8 x 8 bytes), then next_id.
    payload[64..72].copy_from_slice(&(1u64 << 60).to_le_bytes());
    match persist::load_updatable_from_bytes(&rebuild_with_section(&bytes, "updatable", &payload)) {
        Err(PersistError::SectionDecode { section, .. }) => assert_eq!(section, "updatable"),
        other => panic!("hostile next-id counter gave {other:?}"),
    }

    // Bounds section whose border columns index past the score vector —
    // accepted at load, this would panic inside a serving worker later.
    let index_file = index_bytes();
    let oos = persist::load_index_from_bytes(&index_file).unwrap();
    let num_clusters = oos.index().ordering().num_clusters();
    let n = oos.index().num_nodes();
    let mut payload = Vec::new();
    put_usize(&mut payload, num_clusters);
    for _ in 0..num_clusters {
        payload.extend_from_slice(&0.25f64.to_bits().to_le_bytes());
        put_usize(&mut payload, 1);
        put_usize(&mut payload, n + 3); // out of range
        payload.extend_from_slice(&0.5f64.to_bits().to_le_bytes());
    }
    match persist::load_index_from_bytes(&rebuild_with_section(&index_file, "bounds", &payload)) {
        Err(PersistError::SectionDecode { section, .. }) => assert_eq!(section, "bounds"),
        other => panic!("out-of-range border column gave {other:?}"),
    }
}

#[test]
fn flavor_mismatches_are_typed_not_garbled() {
    let index = index_bytes();
    let updatable = updatable_bytes();
    assert!(matches!(
        persist::load_updatable_from_bytes(&index),
        Err(PersistError::InvalidState(_))
    ));
    assert!(matches!(
        persist::load_index_from_bytes(&updatable),
        Err(PersistError::InvalidState(_))
    ));
    assert!(matches!(
        persist::load_emr_from_bytes(&index),
        Err(PersistError::InvalidState(_))
    ));
    // Both serveable flavors dispatch correctly through load_serving.
    assert!(persist::load_serving_from_bytes(&index).is_ok());
    assert!(persist::load_serving_from_bytes(&updatable).is_ok());
}

#[test]
fn dirty_updatable_state_refuses_to_persist() {
    let mut index = IndexBuilder::new()
        .knn_k(3)
        .rebuild_policy(RebuildPolicy::never())
        .build(features())
        .unwrap();
    let mut delta = IndexDelta::new();
    delta.insert(vec![0.4, 0.5, 0.1]);
    index.apply(&delta).unwrap();
    assert!(!index.snapshot().is_clean());
    match persist::save_updatable_to(&index, Vec::new()) {
        Err(PersistError::InvalidState(msg)) => assert!(msg.contains("rebuild")),
        other => panic!("expected InvalidState, got {other:?}"),
    }
    // After an explicit rebuild the same state persists fine.
    index.rebuild().unwrap();
    assert!(persist::save_updatable_to(&index, Vec::new()).is_ok());
}

// ---------------------------------------------------------------------------
// Golden fixture: format v1 compatibility pin
// ---------------------------------------------------------------------------

/// The committed golden fixture (written by `regenerate_golden_fixture`
/// below). Every future build must keep loading this byte-for-byte file; an
/// incompatible format change must bump `FORMAT_VERSION` and add a new
/// fixture instead of breaking this one.
const GOLDEN: &[u8] = include_bytes!("fixtures/golden_v1.mog1");

/// The exact corpus the fixture was built from (kept for regeneration and
/// for the equivalence assertion below).
fn golden_index() -> mogul_core::update::UpdatableIndex {
    let mut index = IndexBuilder::new()
        .knn_k(3)
        .rebuild_policy(RebuildPolicy::never())
        .build(features())
        .unwrap();
    // One insert + one removal, then a rebuild: the fixture exercises the
    // full updatable flavor (non-identity stable ids, advanced epoch).
    let mut delta = IndexDelta::new();
    delta.insert(vec![0.45, 0.3, 0.2]);
    delta.remove(7);
    index.apply(&delta).unwrap();
    index.rebuild().unwrap();
    index
}

/// Regenerate the golden fixture. Run manually after an *intentional*,
/// version-bumped format change:
/// `cargo test -p mogul-core --test persist_format -- --ignored regenerate`
#[test]
#[ignore = "writes the committed fixture; run only on intentional format changes"]
fn regenerate_golden_fixture() {
    let index = golden_index();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden_v1.mog1");
    persist::save_updatable(&index, path).unwrap();
    eprintln!("wrote {path}");
}

#[test]
fn golden_fixture_pins_format_v1() {
    // Structure: version, flavor, counts.
    let info = persist::inspect_bytes(GOLDEN).expect("golden fixture must stay loadable");
    assert_eq!(info.version, 1, "golden fixture must remain format v1");
    assert_eq!(info.flavor, FileFlavor::Updatable);
    assert_eq!(info.items, 24);
    assert_eq!(info.dim, 3);
    let names: Vec<&str> = info.sections.iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        [
            "meta",
            "ordering",
            "factors",
            "bounds",
            "features",
            "stats",
            "graph",
            "updatable"
        ],
        "v1 section set changed — bump FORMAT_VERSION instead"
    );

    // Semantics: the fixture answers queries exactly like the index it was
    // built from (the build is deterministic), including the stable-id
    // remapping of the removed item 7 / appended item 24.
    let loaded = persist::load_updatable_from_bytes(GOLDEN).unwrap();
    let reference = golden_index();
    assert_eq!(loaded.epoch(), reference.epoch());
    let loaded_snap = loaded.snapshot();
    let reference_snap = reference.snapshot();
    assert_eq!(loaded_snap.item_ids(), reference_snap.item_ids());
    assert!(!loaded_snap.contains(7), "removed id resurfaced");
    assert!(loaded_snap.contains(24), "inserted id lost");
    for id in loaded_snap.item_ids() {
        assert_eq!(
            loaded_snap.query_by_id(id, 5).unwrap(),
            reference_snap.query_by_id(id, 5).unwrap(),
            "golden fixture answers diverged at id {id}"
        );
    }
}
