//! SIMD-vs-scalar bit-identity at the search level.
//!
//! The panel engine dispatches its sweeps through the lane-kernel trait of
//! `mogul_sparse::kernel`; this binary pins the end-to-end contract — every
//! batched result (scores, rankings, `SearchStats` work counters, pruning
//! decisions) is bit-identical under the forced-scalar and forced-SIMD
//! kernels, across panel widths, search modes and the masked shrinking-width
//! transitions of pruned panels. Without `--features simd` the SIMD request
//! falls back to scalar and the comparisons hold trivially; the CI feature
//! matrix runs both configurations.
//!
//! This lives in its own test binary because `set_kernel_override` is
//! process-wide: no other test shares the process, so forcing a kernel here
//! cannot race another test's dispatch.

use mogul_core::{BatchWorkspace, CoreError, MogulConfig, MogulIndex, SearchMode, PANEL_WIDTH};
use mogul_data::coil::{coil_like, CoilLikeConfig};
use mogul_graph::knn::{knn_graph, KnnConfig};
use mogul_sparse::{set_kernel_override, KernelKind};

fn build_indices() -> (MogulIndex, MogulIndex) {
    let data = coil_like(&CoilLikeConfig {
        num_objects: 8,
        poses_per_object: 18,
        dim: 12,
        noise: 0.02,
        ..Default::default()
    })
    .unwrap();
    let graph = knn_graph(data.features(), KnnConfig::with_k(5)).unwrap();
    let approx = MogulIndex::build(&graph, MogulConfig::default()).unwrap();
    let exact = MogulIndex::build(&graph, MogulConfig::exact()).unwrap();
    (approx, exact)
}

/// Run `f` once with each kernel forced, clearing the override afterwards,
/// and return both results.
fn under_both_kernels<T>(mut f: impl FnMut() -> T) -> (T, T) {
    set_kernel_override(Some(KernelKind::Scalar));
    let scalar = f();
    set_kernel_override(Some(KernelKind::Simd));
    let simd = f();
    set_kernel_override(None);
    (scalar, simd)
}

#[test]
fn batched_searches_are_bit_identical_under_both_kernels() {
    let (approx, exact) = build_indices();
    let mut ws = BatchWorkspace::new();
    for (label, index) in [("incomplete", &approx), ("exact", &exact)] {
        let n = index.num_nodes();
        // Widths 1..=PANEL_WIDTH cover every remainder of the 4-wide AVX2
        // chunking; the larger batch exercises several panels plus a ragged
        // tail. Pruned mode drives the masked shrinking-width transitions.
        for size in [1usize, 2, 3, 4, 5, 6, 7, PANEL_WIDTH, 3 * PANEL_WIDTH + 5] {
            let queries: Vec<usize> = (0..size).map(|i| (i * 37 + size) % n).collect();
            for mode in [
                SearchMode::Pruned,
                SearchMode::NoPruning,
                SearchMode::FullSubstitution,
            ] {
                let (scalar, simd) = under_both_kernels(|| {
                    index.search_batch_in(&mut ws, &queries, 10, mode).unwrap()
                });
                assert_eq!(scalar, simd, "{label}: size {size} mode {mode:?}");
            }
        }
        // Pruning must actually fire somewhere for the masked transitions to
        // be covered (not just full-width sweeps).
        let all: Vec<usize> = (0..n).collect();
        set_kernel_override(Some(KernelKind::Simd));
        let results = index
            .search_batch_in(&mut ws, &all, 10, SearchMode::Pruned)
            .unwrap();
        set_kernel_override(None);
        assert!(
            results.iter().any(|(_, s)| s.clusters_pruned > 0),
            "{label}: pruned mode never pruned — masked path not exercised"
        );
    }
}

#[test]
fn score_vectors_and_panel_solves_match_under_both_kernels() {
    let (approx, exact) = build_indices();
    let mut ws = BatchWorkspace::new();
    for index in [&approx, &exact] {
        let n = index.num_nodes();
        let queries: Vec<usize> = (0..(PANEL_WIDTH + 3)).map(|i| (i * 13) % n).collect();
        let (scalar, simd) =
            under_both_kernels(|| index.all_scores_batch_in(&mut ws, &queries).unwrap());
        assert_eq!(scalar, simd);

        let width = 5usize;
        let rhs: Vec<f64> = (0..n * width)
            .map(|i| ((i * 29 + 7) % 23) as f64 / 23.0 - 0.5)
            .collect();
        let (scalar, simd) = under_both_kernels(|| {
            let mut out = Vec::new();
            index
                .solve_ranking_system_batch_in(&mut ws, &rhs, width, &mut out)
                .unwrap();
            out
        });
        assert_eq!(scalar, simd);
    }
}

#[test]
fn batch_solve_mismatch_payload_carries_requested_shape() {
    let (approx, _) = build_indices();
    let n = approx.num_nodes();
    let mut ws = BatchWorkspace::new();
    let mut out = Vec::new();
    // width == 0: requested width reported verbatim, panel as one column —
    // not the `width.max(1)` fabrication the payload used to carry.
    let err = approx
        .solve_ranking_system_batch_in(&mut ws, &[1.0; 4], 0, &mut out)
        .unwrap_err();
    match err {
        CoreError::DimensionMismatch { left, right, .. } => {
            assert_eq!(left, (n, 0));
            assert_eq!(right, (4, 1));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
    // Ragged panel: reported verbatim as a column, never rounded.
    let err = approx
        .solve_ranking_system_batch_in(&mut ws, &vec![1.0; 2 * n + 1], 2, &mut out)
        .unwrap_err();
    match err {
        CoreError::DimensionMismatch { left, right, .. } => {
            assert_eq!(left, (n, 2));
            assert_eq!(right, (2 * n + 1, 1));
        }
        other => panic!("expected DimensionMismatch, got {other:?}"),
    }
}
