//! # mogul-suite
//!
//! Umbrella crate for the Mogul workspace: it re-exports the public crates so
//! the runnable examples under `examples/` and the cross-crate integration
//! tests under `tests/` have a single, convenient entry point.
//!
//! Library users should normally depend on the individual crates
//! (`mogul-core`, `mogul-graph`, `mogul-data`, `mogul-eval`, `mogul-serve`,
//! `mogul-sparse`) directly.

pub use mogul_core as core;
pub use mogul_data as data;
pub use mogul_eval as eval;
pub use mogul_graph as graph;
pub use mogul_serve as serve;
pub use mogul_sparse as sparse;
